"""Metric primitives and the registry that names them.

Every metric name must end in one of the repo's unit suffixes (the same
table :mod:`repro.check.rules.units` enforces statically, re-exported
from :mod:`repro.units`) or in one of the dimensionless suffixes below.
That keeps exported telemetry dimensionally self-describing: a reader —
human or FLC004 — can tell ``pkts_per_tick`` from ``mbps`` without a
side channel.

All primitives are plain picklable containers keyed by simulation tick,
never wall clock, so a registry travels inside engine checkpoints and a
resumed run extends its series seamlessly.  :class:`LabeledCounter` and
:class:`BinnedCounter` subclass :class:`dict` on purpose: the monitor
classes in :mod:`repro.net.engine` expose them where plain dicts used to
live, and equality/iteration/pickling must stay bit-identical.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple, TypeVar, Union

import numpy as np

from ..errors import ConfigError
from ..units import dimension_of

__all__ = [
    "BinnedCounter",
    "Counter",
    "DIMENSIONLESS_SUFFIXES",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "LabeledGauge",
    "MetricsRegistry",
    "RingSeries",
    "TickSeries",
    "validate_metric_name",
]

#: Suffixes accepted on metric names in addition to the dimensional ones
#: from :data:`repro.units.SUFFIX_DIMENSIONS`.  These mark quantities that
#: deliberately carry no unit (counts of events, shares in [0, 1]).
DIMENSIONLESS_SUFFIXES: Tuple[str, ...] = ("count", "ratio", "share", "events")

_DEFAULT_HISTOGRAM_BOUNDS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)


def validate_metric_name(name: str) -> str:
    """Return ``name`` if it carries a recognised suffix, else raise.

    The dimension comes from :func:`repro.units.dimension_of` (the FLC004
    table); names may alternatively end in one of the dimensionless
    suffixes (``_count``, ``_ratio``, ``_share``, ``_events``).
    """
    if not name or not name.replace("_", "").replace("-", "").isalnum():
        raise ConfigError(f"invalid metric name {name!r}")
    if dimension_of(name) is not None:
        return name
    lowered = name.lower()
    for suffix in DIMENSIONLESS_SUFFIXES:
        if lowered == suffix or lowered.endswith("_" + suffix):
            return name
    raise ConfigError(
        f"metric name {name!r} has no recognised unit suffix; use one of "
        "the repro.units suffixes (e.g. _packets, _ticks, _pkts_per_tick) "
        f"or a dimensionless suffix {DIMENSIONLESS_SUFFIXES}"
    )


class Counter:
    """Monotonic scalar count of events."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-write-wins scalar measurement."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


K = TypeVar("K", bound=Hashable)


class LabeledCounter(Dict[K, int]):
    """A ``dict`` of per-label event counts with a convenience ``inc``.

    Subclasses :class:`dict` so call sites that used to hold a plain
    mapping (``LinkMonitor.service_counts``) keep identical semantics:
    iteration order, equality against dict literals, direct item
    assignment, and pickling all behave exactly as before.
    """

    kind = "labeled"

    def inc(self, label: K, amount: int = 1) -> int:
        new = self.get(label, 0) + amount
        self[label] = new
        return new

    def snapshot(self) -> Dict[str, float]:
        return {str(label): float(self[label]) for label in self}


class LabeledGauge(LabeledCounter[K]):
    """A ``dict`` of per-label *absolute* values (last write wins).

    Same container as :class:`LabeledCounter`, different reduction
    semantics: scrapes of running totals (e.g. per-link serviced counts
    at the end of each ``Engine.run`` call) assign the current absolute
    value, so re-scraping the same engine is idempotent and merging two
    telemetry shards keeps the later shard's value instead of summing.
    """

    kind = "labeled_gauge"

    def set(self, label: K, value: int) -> None:
        self[label] = value


class BinnedCounter(Dict[Hashable, Dict[int, int]]):
    """Per-category counts folded into fixed-width tick bins.

    Backs :class:`repro.analysis.timeseries.CategorySeriesMonitor`; the
    nested layout ``{category: {bin_index: count}}`` is the monitor's
    historical public shape, so this too subclasses :class:`dict`.
    """

    kind = "binned"

    def observe(self, category: Hashable, bin_index: int, amount: int = 1) -> None:
        bins = self.setdefault(category, {})
        bins[bin_index] = bins.get(bin_index, 0) + amount

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            str(category): {str(b): float(n) for b, n in sorted(bins.items())}
            for category, bins in self.items()
        }


class TickSeries(List[Tuple[int, int]]):
    """Per-tick event counts with the LinkMonitor pending-point protocol.

    Appends one ``(tick, count)`` point per tick that saw at least one
    observation.  The point for the current tick stays *pending* until a
    later tick arrives or :meth:`flush` is called — byte-for-byte the
    flush semantics the monitors exposed before this layer existed.
    Subclasses :class:`list` so ``monitor.series`` remains list-equal to
    the tuples tests expect.
    """

    kind = "tick_series"

    def __init__(self, points: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        super().__init__(points or ())
        self._pending_tick: int = -1
        self._pending_value: int = 0

    @property
    def pending_tick(self) -> int:
        return self._pending_tick

    @property
    def pending_value(self) -> int:
        return self._pending_value

    def observe(self, tick: int, amount: int = 1) -> None:
        if tick != self._pending_tick:
            if self._pending_tick >= 0:
                self.append((self._pending_tick, self._pending_value))
            self._pending_tick = tick
            self._pending_value = 0
        self._pending_value += amount

    def flush(self) -> None:
        """Finalise the pending point; idempotent."""
        if self._pending_tick >= 0:
            self.append((self._pending_tick, self._pending_value))
            self._pending_tick = -1
            self._pending_value = 0

    def snapshot(self) -> List[List[float]]:
        return [[float(t), float(v)] for t, v in self]

    def __reduce__(
        self,
    ) -> Tuple[type, Tuple[List[Tuple[int, int]]], Tuple[int, int]]:
        return (TickSeries, (list(self),), (self._pending_tick, self._pending_value))

    def __setstate__(self, state: Tuple[int, int]) -> None:
        self._pending_tick, self._pending_value = state


class RingSeries:
    """Bounded time series over ``(tick, value)`` samples.

    Backed by numpy ring buffers: a full buffer overwrites the oldest
    sample, so memory stays constant no matter how long a run is.
    """

    kind = "series"

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ConfigError(f"series capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._ticks = np.zeros(capacity, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.float64)
        self._count: int = 0
        self._next: int = 0

    def __len__(self) -> int:
        return self._count

    def sample(self, tick: int, value: float) -> None:
        self._ticks[self._next] = tick
        self._values[self._next] = value
        self._next = (self._next + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1

    def points(self) -> List[Tuple[int, float]]:
        """Samples in chronological order (oldest survivor first)."""
        if self._count < self.capacity:
            order = np.arange(self._count)
        else:
            order = (np.arange(self.capacity) + self._next) % self.capacity
        return [
            (int(self._ticks[i]), float(self._values[i])) for i in order
        ]

    @property
    def last(self) -> Optional[Tuple[int, float]]:
        if self._count == 0:
            return None
        i = (self._next - 1) % self.capacity
        return (int(self._ticks[i]), float(self._values[i]))

    def snapshot(self) -> List[List[float]]:
        return [[float(t), float(v)] for t, v in self.points()]


class Histogram:
    """Counts of observations across fixed bucket upper bounds.

    ``counts[i]`` tallies observations ``<= bounds[i]``; the final slot
    holds the overflow (``> bounds[-1]``).  Bounds are frozen at
    creation, so cardinality is constant for the whole run.
    """

    kind = "histogram"

    def __init__(self, bounds: Optional[Iterable[float]] = None) -> None:
        chosen = tuple(
            float(b) for b in (_DEFAULT_HISTOGRAM_BOUNDS if bounds is None else bounds)
        )
        if not chosen or any(b2 <= b1 for b1, b2 in zip(chosen, chosen[1:])):
            raise ConfigError(
                f"histogram bounds must be strictly increasing, got {chosen}"
            )
        self.bounds = np.asarray(chosen, dtype=np.float64)
        self.counts = np.zeros(len(chosen) + 1, dtype=np.int64)
        self.total: int = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        slot = int(np.searchsorted(self.bounds, value, side="left"))
        self.counts[slot] += 1
        self.total += 1
        self.sum += value

    def snapshot(self) -> Dict[str, Union[List[float], float]]:
        return {
            "bounds": [float(b) for b in self.bounds],
            "counts": [float(c) for c in self.counts],
            "total": float(self.total),
            "sum": float(self.sum),
        }


Metric = Union[
    Counter,
    Gauge,
    LabeledCounter[Hashable],
    LabeledGauge[Hashable],
    BinnedCounter,
    TickSeries,
    RingSeries,
    Histogram,
]


class MetricsRegistry:
    """Named home for every metric a run produces.

    Get-or-create accessors (:meth:`counter`, :meth:`gauge`, ...) make
    instrumentation sites one-liners; a name is bound to its kind on
    first use and reusing it as a different kind raises.  The registry
    pickles whole — it rides inside engine checkpoints so resumed runs
    keep extending the same series.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def _bind(self, name: str, kind: str, metric: Metric) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ConfigError(
                    f"metric {name!r} already registered as {existing.kind!r}, "
                    f"cannot re-register as {kind!r}"
                )
            return existing
        validate_metric_name(name)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._bind(name, "counter", Counter())
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._bind(name, "gauge", Gauge())
        assert isinstance(metric, Gauge)
        return metric

    def labeled(self, name: str) -> "LabeledCounter[Hashable]":
        metric = self._bind(name, "labeled", LabeledCounter())
        assert isinstance(metric, LabeledCounter)
        return metric

    def labeled_gauge(self, name: str) -> "LabeledGauge[Hashable]":
        metric = self._bind(name, "labeled_gauge", LabeledGauge())
        assert isinstance(metric, LabeledGauge)
        return metric

    def binned(self, name: str) -> BinnedCounter:
        metric = self._bind(name, "binned", BinnedCounter())
        assert isinstance(metric, BinnedCounter)
        return metric

    def tick_series(self, name: str) -> TickSeries:
        metric = self._bind(name, "tick_series", TickSeries())
        assert isinstance(metric, TickSeries)
        return metric

    def series(self, name: str, capacity: int = 4096) -> RingSeries:
        metric = self._bind(name, "series", RingSeries(capacity))
        assert isinstance(metric, RingSeries)
        return metric

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:
        metric = self._bind(name, "histogram", Histogram(bounds))
        assert isinstance(metric, Histogram)
        return metric

    def adopt(self, name: str, metric: Metric) -> Metric:
        """Register an externally owned metric (e.g. a monitor's series)."""
        return self._bind(name, metric.kind, metric)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready view: ``{name: {"kind": ..., "value": ...}}``."""
        return {
            name: {"kind": metric.kind, "value": metric.snapshot()}
            for name, metric in sorted(self._metrics.items())
        }
