"""Structured decision-trace events, keyed by simulation tick.

Every event records *why* the simulation took a branch — a drop's cause,
an MTD reclassification, an aggregation promote/demote — never *when* in
wall-clock terms.  Tick-keyed events are byte-reproducible: the same
(scenario, seed) pair yields the same JSONL trace, which is what lets
``repro chaos --replay`` verify traces alongside digests.

The drop-cause taxonomy mirrors the admission pipeline the packet engine
actually implements for FLoc (paper §V drop policy): capability checks
first (``spoofed``/``blocked``), then preferential drop of identified
attack flows, then the congestion-mode random/token-bucket stages, with
``overflow`` (queue tail drop) as the final resort and ``dead_link`` for
packets in flight on a failed link.  :func:`precedence` exposes the
pipeline order so tests can assert, e.g., that token-bucket denial
outranks queue overflow.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigError

__all__ = [
    "DROP_CAUSES",
    "TraceEvent",
    "TraceLog",
    "precedence",
]

#: Drop causes in pipeline order (earliest stage first).  A packet is
#: dropped by exactly one stage, so every engine drop carries exactly one
#: of these labels.
DROP_CAUSES: Tuple[str, ...] = (
    "spoofed",
    "blocked",
    "preferential",
    "token",
    "random",
    "overflow",
    "dead_link",
)

_PRECEDENCE: Dict[str, int] = {cause: i for i, cause in enumerate(DROP_CAUSES)}


def precedence(cause: str) -> int:
    """Pipeline rank of a drop cause (lower = evaluated earlier)."""
    try:
        return _PRECEDENCE[cause]
    except KeyError:
        raise ConfigError(
            f"unknown drop cause {cause!r}; known causes: {DROP_CAUSES}"
        ) from None


class TraceEvent:
    """One traced decision: ``(tick, kind, subsystem, data)``."""

    __slots__ = ("tick", "kind", "subsystem", "data")

    def __init__(
        self, tick: int, kind: str, subsystem: str, data: Dict[str, Any]
    ) -> None:
        self.tick = tick
        self.kind = kind
        self.subsystem = subsystem
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "tick": self.tick,
            "kind": self.kind,
            "subsystem": self.subsystem,
        }
        for key, value in self.data.items():
            out[key] = _jsonable(value)
        return out

    def __repr__(self) -> str:
        return (
            f"TraceEvent(tick={self.tick}, kind={self.kind!r}, "
            f"subsystem={self.subsystem!r}, data={self.data!r})"
        )

    def __getstate__(self) -> Tuple[int, str, str, Dict[str, Any]]:
        return (self.tick, self.kind, self.subsystem, self.data)

    def __setstate__(self, state: Tuple[int, str, str, Dict[str, Any]]) -> None:
        self.tick, self.kind, self.subsystem, self.data = state


def _jsonable(value: Any) -> Any:
    """Fold tuples (path ids, account keys) into JSON-friendly forms."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_jsonable(v) for v in value), key=repr)
    return value


class TraceLog:
    """Bounded, order-preserving event store.

    A deque with ``maxlen`` keeps memory constant on long runs; per-kind
    counts survive eviction so totals remain exact even after old events
    have been dropped from the window.
    """

    def __init__(self, max_events: int = 100_000) -> None:
        if max_events <= 0:
            raise ConfigError(f"max_events must be > 0, got {max_events}")
        self.max_events = max_events
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.emitted_total: int = 0
        self.counts_by_kind: Dict[str, int] = {}

    def emit(self, tick: int, kind: str, subsystem: str, **data: Any) -> TraceEvent:
        event = TraceEvent(tick, kind, subsystem, data)
        self._events.append(event)
        self.emitted_total += 1
        self.counts_by_kind[kind] = self.counts_by_kind.get(kind, 0) + 1
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    @property
    def evicted_total(self) -> int:
        return self.emitted_total - len(self._events)
