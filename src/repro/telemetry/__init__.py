"""Unified telemetry: metrics registry, decision tracing, tick profiler.

One facade, :class:`Telemetry`, is shared by the packet engine
(:mod:`repro.net.engine`) and the fluid simulator
(:mod:`repro.inet.simulator`).  Both read the module-level *current*
telemetry at construction time, so enabling instrumentation is::

    from repro.telemetry import Telemetry, use

    tel = Telemetry(mode="trace", profile=True)
    with use(tel):
        scenario = build_tree_scenario(...)
        scenario.run_seconds(6.0)
    tel.registry.snapshot()          # metrics
    tel.trace.events("drop")         # decision trace
    tel.profiler.breakdown()         # wall-time per subsystem

Design invariants:

* **Observation only.**  Telemetry never changes a simulated quantity:
  with it on or off, run digests and monitor series are byte-identical.
* **Null fast path.**  The default :data:`NULL_TELEMETRY` has
  ``enabled == False``; instrumentation sites guard on that single
  attribute, so a run without telemetry pays one attribute load and a
  branch per site.
* **Tick-keyed.**  Metrics and events carry simulation ticks, never wall
  clock; only the profiler reads ``perf_counter``, and its data is
  excluded from pickles (checkpoints, digests) by construction.
* **No simulator imports.**  This package duck-types engines and
  simulators; :mod:`repro.net` / :mod:`repro.inet` import *it*, never
  the other way round.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Hashable, Iterator, Optional, Tuple

from ..errors import ConfigError
from .events import DROP_CAUSES, TraceEvent, TraceLog, precedence
from .profiler import TickProfiler
from .registry import (
    BinnedCounter,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    LabeledGauge,
    MetricsRegistry,
    RingSeries,
    TickSeries,
    validate_metric_name,
)

__all__ = [
    "BinnedCounter",
    "Counter",
    "DROP_CAUSES",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "LabeledGauge",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RingSeries",
    "Telemetry",
    "TickProfiler",
    "TickSeries",
    "TraceEvent",
    "TraceLog",
    "current",
    "precedence",
    "use",
    "validate_metric_name",
]

#: Telemetry modes: ``metrics`` keeps only aggregate counters/series
#: (cheap enough for chaos sweeps); ``trace`` additionally records
#: structured per-decision events.
MODES: Tuple[str, ...] = ("metrics", "trace")


class NullTelemetry:
    """Disabled telemetry: the no-op fast path and the common interface.

    Hot loops guard on :attr:`enabled` and skip all work; the methods
    below exist so cold paths (scrapes, exporters) can be called
    unconditionally.  The registry attribute is a real (empty) registry
    so typed call sites need no ``Optional`` dance.
    """

    mode: str = "off"

    def __init__(self) -> None:
        self.enabled: bool = False
        self.trace_enabled: bool = False
        self.profile_enabled: bool = False
        self.registry: MetricsRegistry = MetricsRegistry()
        self.trace: Optional[TraceLog] = None
        self.profiler: Optional[TickProfiler] = None
        self.sample_interval_ticks: int = 16

    # -- event / metric entry points (no-ops when disabled) ------------
    def emit_event(self, tick: int, kind: str, subsystem: str, **data: Any) -> None:
        """Record a decision-trace event (only in ``trace`` mode)."""

    def record_drop(
        self,
        tick: int,
        cause: str,
        flow_id: Optional[int] = None,
        path_id: Optional[Hashable] = None,
    ) -> None:
        """Attribute one packet drop to exactly one pipeline cause."""

    def record_fluid_drop_volumes(self, tick: int, **volumes: float) -> None:
        """Attribute fluid-model drop *volumes* (pkts) to causes."""

    def sample_engine(self, engine: Any, tick: int) -> None:
        """Sample engine-level series every ``sample_interval_ticks``."""

    def scrape_engine(self, engine: Any) -> None:
        """Fold end-of-run engine totals into gauges/labeled counters."""

    def scrape_fluid(self, sim: Any) -> None:
        """Fold end-of-run fluid-simulator totals into gauges."""

    # -- provenance / persistence ---------------------------------------
    def drop_provenance(self) -> Dict[str, float]:
        """Per-cause drop totals recorded so far (empty when disabled)."""
        return {}

    def adopt_state(self, other: "NullTelemetry") -> None:
        """Take over another telemetry's registry and trace (for resume)."""


class Telemetry(NullTelemetry):
    """Enabled telemetry facade shared by both simulators."""

    def __init__(
        self,
        mode: str = "metrics",
        profile: bool = False,
        max_events: int = 100_000,
        sample_interval_ticks: int = 16,
    ) -> None:
        super().__init__()
        if mode not in MODES:
            raise ConfigError(f"telemetry mode must be one of {MODES}, got {mode!r}")
        if sample_interval_ticks <= 0:
            raise ConfigError(
                f"sample_interval_ticks must be > 0, got {sample_interval_ticks}"
            )
        self.mode = mode
        self.enabled = True
        self.trace_enabled = mode == "trace"
        self.profile_enabled = profile
        self.trace = TraceLog(max_events) if self.trace_enabled else None
        self.profiler = TickProfiler() if profile else None
        self.sample_interval_ticks = sample_interval_ticks

    # -- event / metric entry points ------------------------------------
    def emit_event(self, tick: int, kind: str, subsystem: str, **data: Any) -> None:
        if self.trace is not None:
            self.trace.emit(tick, kind, subsystem, **data)

    def record_drop(
        self,
        tick: int,
        cause: str,
        flow_id: Optional[int] = None,
        path_id: Optional[Hashable] = None,
    ) -> None:
        self.registry.labeled("drops_by_cause_packets").inc(cause)
        if self.trace is not None:
            self.trace.emit(
                tick, "drop", "policy",
                cause=cause, flow_id=flow_id, path_id=path_id,
            )

    def record_fluid_drop_volumes(self, tick: int, **volumes: float) -> None:
        counter = self.registry.labeled("fluid_drops_by_cause_pkts")
        for cause, volume in volumes.items():
            if volume > 0.0:
                # labeled counters hold ints for packet tallies but the
                # fluid model drops fractional volumes; keep the raw sum.
                counter[cause] = counter.get(cause, 0) + volume
                if self.trace is not None:
                    self.trace.emit(
                        tick, "fluid_drop", "policy",
                        cause=cause, volume_pkts=volume,
                    )

    def sample_engine(self, engine: Any, tick: int) -> None:
        if tick % self.sample_interval_ticks != 0:
            return
        reg = self.registry
        reg.series("engine_emitted_packets").sample(
            tick, float(engine.packets_emitted)
        )
        reg.series("engine_delivered_packets").sample(
            tick, float(engine.packets_delivered)
        )

    def scrape_engine(self, engine: Any) -> None:
        reg = self.registry
        reg.gauge("engine_run_ticks").set(float(engine.tick))
        reg.gauge("engine_emitted_total_packets").set(float(engine.packets_emitted))
        reg.gauge("engine_delivered_total_packets").set(
            float(engine.packets_delivered)
        )
        serviced = reg.labeled_gauge("link_serviced_packets")
        dropped = reg.labeled_gauge("link_dropped_packets")
        for link in engine.topology.links():
            key = f"{link.src}->{link.dst}"
            serviced[key] = int(link.serviced_total)
            dropped[key] = int(link.dropped_total)

    def scrape_fluid(self, sim: Any) -> None:
        reg = self.registry
        reg.gauge("fluid_run_ticks").set(float(getattr(sim, "_run_tick", 0)))
        # shard-mode simulators hold a partition of the flows; the gauge
        # reports the scenario-wide population so every shard (and the
        # serial run) records the identical value
        reg.gauge("fluid_flows_count").set(
            float(getattr(sim, "n_flows_total", sim.n_flows))
        )
        reg.gauge("fluid_groups_count").set(float(sim.n_groups))

    # -- provenance / persistence ---------------------------------------
    def drop_provenance(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        packet = self.registry.get("drops_by_cause_packets")
        if isinstance(packet, LabeledCounter):
            for label, value in packet.items():
                out[str(label)] = out.get(str(label), 0.0) + float(value)
        fluid = self.registry.get("fluid_drops_by_cause_pkts")
        if isinstance(fluid, LabeledCounter):
            for label, value in fluid.items():
                out[str(label)] = out.get(str(label), 0.0) + float(value)
        return out

    def adopt_state(self, other: NullTelemetry) -> None:
        if not other.enabled:
            return
        self.registry = other.registry
        if self.trace is not None and other.trace is not None:
            self.trace = other.trace

    # Profiler wall-time never reaches checkpoints: TickProfiler's own
    # __getstate__ empties it, so a pickled Telemetry round-trips with a
    # fresh profiler but intact registry/trace.


#: Shared disabled singleton; simulators default to this.
NULL_TELEMETRY = NullTelemetry()

_current: NullTelemetry = NULL_TELEMETRY


def current() -> NullTelemetry:
    """The telemetry new engines/simulators attach to."""
    return _current


@contextmanager
def use(telemetry: NullTelemetry) -> Iterator[NullTelemetry]:
    """Install ``telemetry`` as current for the duration of a block."""
    global _current
    previous = _current
    _current = telemetry  # flocheck: disable=FLC009 -- worker-local install: each spawn worker rebinds its own copy and ships the telemetry back explicitly in its result
    try:
        yield telemetry
    finally:
        _current = previous
