"""Serialise telemetry to files: JSON metrics, Prometheus text, CSV, JSONL.

All exports are deterministic for a deterministic run: metric names are
sorted, events stream in emission order, and no timestamps other than
simulation ticks ever appear.  The one exception is the profiler
breakdown inside ``metrics.json``, which is wall-clock derived and
clearly namespaced under ``"profile"`` so downstream diffing can ignore
it.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Dict, List, Optional

from ..errors import ConfigError
from . import NullTelemetry
from .registry import (
    BinnedCounter,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    LabeledGauge,
    MetricsRegistry,
    RingSeries,
    TickSeries,
)

__all__ = [
    "export_all",
    "export_events_jsonl",
    "export_metrics_json",
    "export_prometheus",
    "export_series_csv",
    "load_metrics_json",
    "render_prometheus",
]

SCHEMA_VERSION = 1


def _metrics_payload(tel: NullTelemetry) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "mode": tel.mode,
        "metrics": tel.registry.snapshot(),
    }
    if tel.trace is not None:
        payload["trace"] = {
            "emitted_total": tel.trace.emitted_total,
            "evicted_total": tel.trace.evicted_total,
            "counts_by_kind": dict(sorted(tel.trace.counts_by_kind.items())),
        }
    if tel.profiler is not None:
        payload["profile"] = tel.profiler.snapshot()
    return payload


def export_metrics_json(tel: NullTelemetry, path: str) -> str:
    """Write the registry (plus trace/profile summaries) as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_metrics_payload(tel), handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_metrics_json(path: str) -> Dict[str, Any]:
    """Read a ``metrics.json`` produced by :func:`export_metrics_json`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ConfigError(f"cannot read metrics file {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path!r} is not valid metrics JSON: {exc}") from exc
    if not isinstance(data, dict) or "metrics" not in data:
        raise ConfigError(f"{path!r} is not a telemetry metrics export")
    return data


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus-style text exposition of the registry."""
    lines: List[str] = []
    for name in registry.names():
        metric = registry.get(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {metric.value:g}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {metric.value:g}")
        elif isinstance(metric, LabeledCounter):
            # LabeledGauge subclasses LabeledCounter: same rows, but an
            # absolute scrape is a gauge, not a counter
            kind = "gauge" if isinstance(metric, LabeledGauge) else "counter"
            lines.append(f"# TYPE {name} {kind}")
            for label in sorted(metric, key=repr):
                value = float(metric[label])
                lines.append(f'{name}{{label="{label}"}} {value:g}')
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0.0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += float(count)
                lines.append(f'{name}_bucket{{le="{float(bound):g}"}} {cumulative:g}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {float(metric.total):g}')
            lines.append(f"{name}_sum {metric.sum:g}")
            lines.append(f"{name}_count {float(metric.total):g}")
        elif isinstance(metric, (RingSeries, TickSeries)):
            # expose only the latest point; full history goes to CSV
            last = metric.last if isinstance(metric, RingSeries) else (
                metric[-1] if len(metric) else None
            )
            if last is not None:
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {float(last[1]):g}")
        elif isinstance(metric, BinnedCounter):
            lines.append(f"# TYPE {name} counter")
            for category in sorted(metric, key=repr):
                total = float(sum(metric[category].values()))
                lines.append(f'{name}{{category="{category}"}} {total:g}')
    return "\n".join(lines) + "\n" if lines else ""


def export_prometheus(tel: NullTelemetry, path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(tel.registry))
    return path


def export_series_csv(tel: NullTelemetry, path: str) -> str:
    """All time-series metrics as ``metric,tick,value`` rows."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["metric", "tick", "value"])
        for name in tel.registry.names():
            metric = tel.registry.get(name)
            if isinstance(metric, RingSeries):
                for tick, value in metric.points():
                    writer.writerow([name, tick, f"{value:g}"])
            elif isinstance(metric, TickSeries):
                for tick, count in metric:
                    writer.writerow([name, tick, f"{float(count):g}"])
    return path


def export_events_jsonl(tel: NullTelemetry, path: str) -> str:
    """Decision-trace events, one JSON object per line, emission order."""
    with open(path, "w", encoding="utf-8") as handle:
        if tel.trace is not None:
            for event in tel.trace:
                handle.write(json.dumps(event.to_dict(), sort_keys=False))
                handle.write("\n")
    return path


def export_all(tel: NullTelemetry, directory: str) -> Dict[str, str]:
    """Write every applicable export into ``directory``; returns paths."""
    os.makedirs(directory, exist_ok=True)
    out = {
        "metrics": export_metrics_json(tel, os.path.join(directory, "metrics.json")),
        "prometheus": export_prometheus(tel, os.path.join(directory, "metrics.prom")),
        "series": export_series_csv(tel, os.path.join(directory, "series.csv")),
    }
    if tel.trace is not None:
        out["events"] = export_events_jsonl(
            tel, os.path.join(directory, "events.jsonl")
        )
    return out
