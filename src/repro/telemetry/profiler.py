"""Wall-time attribution per simulation subsystem.

This is the one module in the package that touches a wall clock
(``time.perf_counter``), and the one FLC001 allowlist exemption for it
lives in :mod:`repro.check.rules.determinism`.  The containment is
deliberate: profiler output is *diagnostic only* — it never feeds run
digests, checkpoints, or any simulated quantity.  :meth:`__getstate__`
drops all timings so a pickled engine (and therefore a chaos digest or a
checkpoint file) can never differ because of how fast the host ran.

Usage inside a tick loop::

    t0 = profiler.start()
    ...arrivals phase...
    t0 = profiler.lap("arrivals", t0)
    ...policy phase...
    t0 = profiler.lap("policy", t0)
    profiler.tick_done()
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

__all__ = ["TickProfiler"]


class TickProfiler:
    """Accumulates wall seconds per named subsystem across ticks."""

    def __init__(self) -> None:
        self.totals_seconds: Dict[str, float] = {}
        self.ticks_profiled: int = 0

    def start(self) -> float:
        """Timestamp the start of a profiled region."""
        return time.perf_counter()

    def lap(self, subsystem: str, since: float) -> float:
        """Charge the time since ``since`` to ``subsystem``; returns *now*.

        Returning the new timestamp lets call sites chain laps without a
        second clock read per boundary.
        """
        now = time.perf_counter()
        self.totals_seconds[subsystem] = (
            self.totals_seconds.get(subsystem, 0.0) + (now - since)
        )
        return now

    def tick_done(self) -> None:
        self.ticks_profiled += 1

    @property
    def total_seconds(self) -> float:
        return sum(self.totals_seconds.values())

    def breakdown(self) -> Dict[str, float]:
        """Fraction of profiled wall time per subsystem (sums to ~1)."""
        total = self.total_seconds
        if total <= 0.0:
            return {name: 0.0 for name in sorted(self.totals_seconds)}
        return {
            name: self.totals_seconds[name] / total
            for name in sorted(self.totals_seconds)
        }

    def snapshot(self) -> Dict[str, object]:
        return {
            "ticks_profiled": self.ticks_profiled,
            "totals_seconds": {
                name: self.totals_seconds[name]
                for name in sorted(self.totals_seconds)
            },
            "breakdown": self.breakdown(),
        }

    # Wall-clock data must never reach a checkpoint or digest: pickling a
    # profiler yields an empty one.
    def __getstate__(self) -> Tuple[()]:
        return ()

    def __setstate__(self, state: Tuple[()]) -> None:
        self.totals_seconds = {}
        self.ticks_profiled = 0
