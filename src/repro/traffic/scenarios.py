"""Scenario builder for the paper's functional evaluation (Section VI).

The reference topology (paper Fig. 5) is a complete tree of routers with
height and degree three (27 leaf domains), a congested *target link* from
the tree root to the destination side, 30 legitimate TCP sources per leaf
domain, and 60 attack bots on each of 6 designated attack leaves (360 bots
total).  The target link is 500 Mbps.

Every leaf (and interior) router is an autonomous system; a flow's
domain-path identifier is the AS sequence from its leaf up to the root,
origin first, which is what the origin's BGP speaker would stamp
(Section III-A).

``scale_factor`` shrinks flow counts and the link capacity *together*, so
per-flow fair shares — and therefore window sizes, MTDs and all the
ratio-level results — are preserved while simulations run much faster.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..net.engine import Engine, FlowInfo, LinkMonitor
from ..net.topology import Topology
from ..tcp.source import TcpSource
from ..units import DEFAULT_SCALE, UnitScale
from .base import TrafficSource
from .cbr import CbrSource
from .covert import CovertSource
from .shrew import ShrewSource

#: Node id of the tree root (the congested router R0).
ROOT = "root"
#: Node id of the destination-side hub; the target link is ROOT -> DST_HUB.
DST_HUB = "dsthub"


@dataclass
class TreeScenario:
    """A fully-built functional scenario, ready to attach a policy and run."""

    engine: Engine
    topology: Topology
    units: UnitScale
    capacity: float  # target-link capacity, packets per tick
    base_rtt_ticks: int  # propagation-only RTT host<->server
    path_ids: List[Tuple[int, ...]]  # all 27 leaf path identifiers
    attack_path_ids: List[Tuple[int, ...]]
    legit_flows: List[FlowInfo] = field(default_factory=list)
    attack_flows: List[FlowInfo] = field(default_factory=list)
    legit_sources: List[TrafficSource] = field(default_factory=list)
    attack_sources: List[TrafficSource] = field(default_factory=list)
    as_of_leaf: Dict[str, int] = field(default_factory=dict)
    servers: List[str] = field(default_factory=list)

    @property
    def target(self) -> Tuple[str, str]:
        """The (src, dst) node pair of the flooded link."""
        return (ROOT, DST_HUB)

    @property
    def legit_path_ids(self) -> List[Tuple[int, ...]]:
        """Path identifiers whose leaf hosts no attack bots."""
        attack = set(self.attack_path_ids)
        return [p for p in self.path_ids if p not in attack]

    def attach_policy(self, policy) -> None:
        """Install an admission policy on the target link."""
        self.topology.set_policy(ROOT, DST_HUB, policy)

    def add_target_monitor(
        self,
        start_seconds: float = 0.0,
        stop_seconds: Optional[float] = None,
        record_series: bool = False,
    ) -> LinkMonitor:
        """Attach a measurement monitor to the target link."""
        start = self.units.seconds_to_ticks(start_seconds) if start_seconds else 0
        stop = (
            self.units.seconds_to_ticks(stop_seconds)
            if stop_seconds is not None
            else None
        )
        monitor = LinkMonitor(
            start_tick=start, stop_tick=stop, record_series=record_series
        )
        return self.engine.add_monitor(ROOT, DST_HUB, monitor)

    def run_seconds(self, seconds: float) -> None:
        """Advance the scenario's engine by sim-time seconds."""
        self.engine.run_seconds(seconds)

    def fair_flow_rate(self) -> float:
        """Ideal fair per-flow rate at the target link, packets per tick."""
        total = len(self.legit_flows) + len(self.attack_flows)
        return self.capacity / total if total else self.capacity


def _scaled(count: int, scale_factor: float) -> int:
    return max(1, round(count * scale_factor))


def build_tree_scenario(
    degree: int = 3,
    height: int = 3,
    legit_per_leaf: int = 30,
    attack_leaves: int = 6,
    bots_per_attack_leaf: int = 60,
    link_mbps: float = 500.0,
    scale_factor: float = 1.0,
    attack_kind: str = "cbr",
    attack_rate_mbps: float = 2.0,
    shrew_on_fraction: float = 0.25,
    covert_fanout: int = 1,
    n_servers: int = 1,
    rolling_period_seconds: float = 2.0,
    units: UnitScale = DEFAULT_SCALE,
    seed: int = 0,
    legit_count_overrides: Optional[Dict[int, int]] = None,
    start_spread_seconds: float = 5.0,
    attack_start_seconds: float = 0.0,
    file_megabytes: Optional[float] = None,
    leaf_uplink_delays: Optional[Dict[int, int]] = None,
) -> TreeScenario:
    """Build the Section VI tree scenario.

    Parameters mirror the paper's setup; see module docstring.  Notable
    knobs:

    attack_kind:
        ``"tcp"`` (high-population TCP attack), ``"cbr"``, ``"shrew"``,
        ``"covert"``, ``"rolling"`` (a timed attack that cycles full-rate
        flooding between the contaminated domains to dodge installed
        filters — the Section II critique of remote-filter schemes), or
        ``"none"`` (no attackers at all).
    attack_rate_mbps:
        Per-bot rate: CBR rate, Shrew *peak* rate, or covert per-flow rate.
    covert_fanout:
        Concurrent destinations per covert bot (paper sweeps 1..20).
    legit_count_overrides:
        Map leaf-index -> legitimate source count, for the Fig. 9
        legitimate-path-aggregation experiment (some domains get 15
        sources instead of 30).
    file_megabytes:
        When set, legitimate transfers are finite files of this size
        (paper: 12 MB); default is persistent flows.
    attack_start_seconds:
        Earliest tick (in seconds) at which attack sources begin; their
        start times spread over ``start_spread_seconds`` from there.
        History-based defenses (CDF-PSP) need an attack-free prefix to
        train on.
    leaf_uplink_delays:
        Map leaf-index -> uplink propagation delay in ticks (default 1),
        for heterogeneous-RTT scenarios; FLoc's per-path token-bucket
        parameters depend quadratically on the estimated RTT, so this is
        the knob that exercises the Section V-A estimation machinery.
    """
    if attack_kind not in {"tcp", "cbr", "shrew", "covert", "rolling", "none"}:
        raise ConfigError(f"unknown attack_kind {attack_kind!r}")
    if covert_fanout > max(1, n_servers) and attack_kind == "covert":
        n_servers = covert_fanout

    capacity = units.mbps_to_pkts_per_tick(link_mbps * scale_factor)
    topology = Topology()

    # --- router tree ---------------------------------------------------
    as_counter = itertools.count(1)
    as_of_node: Dict[str, int] = {ROOT: next(as_counter)}
    levels: List[List[str]] = [[ROOT]]
    for _ in range(height):
        level: List[str] = []
        for parent in levels[-1]:
            for child_index in range(degree):
                node = f"{parent}.{child_index}"
                as_of_node[node] = next(as_counter)
                topology.add_duplex_link(node, parent, capacity=None)
                level.append(node)
        levels.append(level)
    leaves = levels[-1]

    # --- target link and servers ----------------------------------------
    rtt_hops = 2 * (height + 2)  # host->leaf->..->root->hub->server, both ways
    buffer = max(64, int(capacity * rtt_hops))
    topology.add_duplex_link(ROOT, DST_HUB, capacity=capacity, buffer=buffer)
    servers = [f"srv{i}" for i in range(max(1, n_servers))]
    for server in servers:
        topology.add_duplex_link(DST_HUB, server, capacity=None)

    engine = Engine(topology, scale=units, seed=seed)
    rng = engine.spawn_rng("scenario")

    def path_id_of(leaf: str) -> Tuple[int, ...]:
        chain = [leaf]
        while chain[-1] != ROOT:
            chain.append(chain[-1].rsplit(".", 1)[0])
        return tuple(as_of_node[node] for node in chain)

    if leaf_uplink_delays:
        for leaf_index, delay in leaf_uplink_delays.items():
            leaf = leaves[leaf_index]
            parent = leaf.rsplit(".", 1)[0]
            topology.add_duplex_link(leaf, parent, capacity=None, delay=delay)

    path_ids = [path_id_of(leaf) for leaf in leaves]
    attack_leaf_step = max(1, len(leaves) // attack_leaves) if attack_leaves else 1
    attack_leaf_names = leaves[:: attack_leaf_step][:attack_leaves]
    attack_path_ids = [path_id_of(leaf) for leaf in attack_leaf_names]

    scenario = TreeScenario(
        engine=engine,
        topology=topology,
        units=units,
        capacity=capacity,
        base_rtt_ticks=rtt_hops,
        path_ids=path_ids,
        attack_path_ids=attack_path_ids,
        as_of_leaf={leaf: as_of_node[leaf] for leaf in leaves},
        servers=servers,
    )

    spread_ticks = max(1, units.seconds_to_ticks(start_spread_seconds))
    total_packets = (
        units.megabytes_to_packets(file_megabytes) if file_megabytes else None
    )

    # --- legitimate sources ---------------------------------------------
    for leaf_index, leaf in enumerate(leaves):
        count = legit_per_leaf
        if legit_count_overrides and leaf_index in legit_count_overrides:
            count = legit_count_overrides[leaf_index]
        count = _scaled(count, scale_factor)
        pid = path_ids[leaf_index]
        for i in range(count):
            host = f"h_{leaf_index}_{i}"
            topology.add_duplex_link(host, leaf, capacity=None)
            server = servers[i % len(servers)]
            flow = engine.open_flow(host, server, pid, is_attack=False)
            source = TcpSource(
                flow,
                total_packets=total_packets,
                start_tick=rng.randrange(spread_ticks),
            )
            engine.add_source(source)
            scenario.legit_flows.append(flow)
            scenario.legit_sources.append(source)

    # --- attack sources ---------------------------------------------------
    if attack_kind != "none":
        bots = _scaled(bots_per_attack_leaf, scale_factor)
        attack_rate = units.mbps_to_pkts_per_tick(attack_rate_mbps)
        attack_base_tick = (
            units.seconds_to_ticks(attack_start_seconds)
            if attack_start_seconds
            else 0
        )
        rtt = rtt_hops
        for leaf_index, leaf in enumerate(leaves):
            if leaf not in attack_leaf_names:
                continue
            pid = path_ids[leaf_index]
            for i in range(bots):
                host = f"b_{leaf_index}_{i}"
                topology.add_duplex_link(host, leaf, capacity=None)
                start = attack_base_tick + rng.randrange(spread_ticks)
                if attack_kind == "covert":
                    flows = [
                        engine.open_flow(host, servers[k % len(servers)], pid,
                                         is_attack=True)
                        for k in range(covert_fanout)
                    ]
                    source: TrafficSource = CovertSource(
                        flows, per_flow_rate=attack_rate, start_tick=start
                    )
                    scenario.attack_flows.extend(flows)
                else:
                    server = servers[i % len(servers)]
                    flow = engine.open_flow(host, server, pid, is_attack=True)
                    scenario.attack_flows.append(flow)
                    if attack_kind == "tcp":
                        source = TcpSource(flow, start_tick=start)
                    elif attack_kind == "cbr":
                        source = CbrSource(flow, rate=attack_rate, start_tick=start)
                    elif attack_kind == "rolling":
                        # the contaminated domains take turns flooding:
                        # domain k is active during slot k of every cycle
                        period = max(
                            len(attack_leaf_names),
                            units.seconds_to_ticks(rolling_period_seconds),
                        )
                        slot = max(1, period // len(attack_leaf_names))
                        turn = attack_leaf_names.index(leaf)
                        source = ShrewSource(
                            flow,
                            burst_rate=attack_rate,
                            period_ticks=period,
                            on_ticks=slot,
                            phase=turn * slot,
                            start_tick=start,
                        )
                    else:  # shrew
                        on_ticks = max(1, int(round(shrew_on_fraction * rtt)))
                        source = ShrewSource(
                            flow,
                            burst_rate=attack_rate,
                            period_ticks=rtt,
                            on_ticks=on_ticks,
                            phase=0,  # coordinated bots share phase
                            start_tick=start,
                        )
                engine.add_source(source)
                scenario.attack_sources.append(source)

    return scenario
