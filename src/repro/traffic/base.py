"""Compatibility shim: :class:`TrafficSource` lives in :mod:`repro.net.source`."""

from ..net.source import TrafficSource

__all__ = ["TrafficSource"]
