"""Shrew (low-rate, on/off) attack source.

The Shrew attack (Kuzmanovic & Knightly) sends short, intense bursts timed
to keep TCP flows in repeated timeout/backoff while the *average* rate
stays low enough to evade rate-based detection.  The paper's instance
(Section VI-A): "each attack source sends 2.0 Mbps traffic only during
0.25 RTT seconds within an interval of RTT seconds", with all attack
sources coordinated (synchronised phase) to maximise strength.
"""

from __future__ import annotations

from ..net.engine import FlowInfo
from .cbr import CbrSource


class ShrewSource(CbrSource):
    """On/off CBR: bursts at ``burst_rate`` for ``on_ticks`` every ``period_ticks``.

    Parameters
    ----------
    burst_rate:
        Packets per tick during the on-phase.  (The long-run average rate
        is ``burst_rate * on_ticks / period_ticks``.)
    period_ticks:
        Length of one on/off cycle.
    on_ticks:
        Burst length; the paper's scenario uses ``0.25 * RTT`` of a
        ``RTT``-long period.
    phase:
        Offset of the burst within the cycle; coordinated bots share the
        same phase.
    """

    def __init__(
        self,
        flow: FlowInfo,
        burst_rate: float,
        period_ticks: int,
        on_ticks: int,
        phase: int = 0,
        start_tick: int = 0,
        stop_tick=None,
        handshake: bool = True,
    ) -> None:
        super().__init__(
            flow,
            rate=burst_rate,
            start_tick=start_tick,
            stop_tick=stop_tick,
            handshake=handshake,
        )
        if period_ticks <= 0:
            raise ValueError(f"period_ticks must be positive, got {period_ticks}")
        if not 0 < on_ticks <= period_ticks:
            raise ValueError(
                f"on_ticks must be in (0, period_ticks], got {on_ticks}"
            )
        self.burst_rate = burst_rate
        self.period_ticks = period_ticks
        self.on_ticks = on_ticks
        self.phase = phase % period_ticks

    def current_rate(self, tick: int) -> float:
        """Burst rate inside the on-phase, zero outside."""
        offset = (tick - self.phase) % self.period_ticks
        return self.burst_rate if offset < self.on_ticks else 0.0

    @property
    def average_rate(self) -> float:
        """Long-run average send rate in packets per tick."""
        return self.burst_rate * self.on_ticks / self.period_ticks
