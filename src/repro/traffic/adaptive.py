"""Adaptive attack sources: bots that react to being throttled.

The paper's Section IV-B argues MTD-based identification is
*strategy-independent*: an attack flow's drop rate is proportional to its
send rate no matter how the rate is shaped in time, so no re-timing or
re-randomization strategy moves its MTD back above the reference.  The
sources here are the adversaries that claim is tested against by the
chaos-campaign engine (:mod:`repro.chaos`):

* :class:`AdaptiveShrewSource` — a Shrew burster that *re-phases* its
  bursts (and optionally re-randomizes its burst rate) once its goodput
  collapses, dodging any detector synchronised to its previous phase;
* :class:`AdaptiveCbrSource` — a flooding bot that re-randomizes its send
  rate or churns its path identifier once the defense marks it;
* :class:`FluidRateRandomizer` — the fluid-simulator analogue: a tick
  hook that periodically re-draws every bot's send rate around the same
  mean, so the aggregate flood is unchanged while every per-flow rate
  signature keeps shifting.

A bot cannot read the router's flag table; it infers "marked" from the
only signal it has — its own acknowledgement ratio.  When fewer than
``loss_threshold`` of the packets sent in the last adaptation window were
acknowledged, the bot assumes the defense found it and mutates.

Every mutation is gated by a *mutation name* carried in the source's
``mutations`` tuple, so a chaos campaign (and its shrinker) can switch
individual behaviours off without replacing the source.  All randomness
flows through an RNG derived from the host simulator's master seed
(``engine.spawn_rng``), and the sources are plain picklable objects — no
lambdas, no closures — so a mid-run checkpoint of an engine with adaptive
attackers resumes bit-identically.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..net.engine import Engine, FlowInfo
from ..net.packet import Packet
from .cbr import CbrSource
from .shrew import ShrewSource

#: Mutation names understood by :class:`AdaptiveCbrSource`.
CBR_MUTATIONS = ("rerandomize", "churn")
#: Mutation names understood by :class:`AdaptiveShrewSource`.
SHREW_MUTATIONS = ("rephase", "rerandomize")


def _check_mutations(mutations: Sequence[str], allowed: Tuple[str, ...]) -> Tuple[str, ...]:
    out = tuple(mutations)
    for name in out:
        if name not in allowed:
            raise ConfigError(
                f"unknown mutation {name!r}; expected a subset of {allowed}"
            )
    return out


class _AdaptationMixin:
    """Shared marked-detection state: ack-ratio over adaptation windows."""

    adapt_interval: int
    loss_threshold: float
    adaptations: int
    _rng: Optional[random.Random]
    _window_sent: int
    _window_acked: int
    _next_adapt: int

    def _init_adaptation(
        self, adapt_interval: int, loss_threshold: float
    ) -> None:
        if adapt_interval < 1:
            raise ConfigError(
                f"adapt_interval must be >= 1, got {adapt_interval}"
            )
        if not 0.0 < loss_threshold <= 1.0:
            raise ConfigError(
                f"loss_threshold must be in (0, 1], got {loss_threshold}"
            )
        self.adapt_interval = adapt_interval
        self.loss_threshold = loss_threshold
        self.adaptations = 0
        self._rng = None
        self._window_sent = 0
        self._window_acked = 0
        self._next_adapt = adapt_interval

    def _adaptation_rng(self, engine: Engine, flow_id: int) -> random.Random:
        if self._rng is None:
            self._rng = engine.spawn_rng(f"adaptive-{flow_id}")
        return self._rng

    def _marked(self) -> bool:
        """The bot's own view of being throttled: ack ratio collapsed."""
        if self._window_sent < 5:
            return False
        return self._window_acked < self.loss_threshold * self._window_sent


class AdaptiveCbrSource(CbrSource, _AdaptationMixin):
    """A flooding bot that mutates once its goodput collapses.

    Mutations (any subset of :data:`CBR_MUTATIONS`):

    * ``"rerandomize"`` — re-draw the send rate uniformly from
      ``rate_bounds``; the MTD-evasion strategy of Section IV-B's
      strategy-independence claim.
    * ``"churn"`` — stamp subsequent packets with the next identifier
      from ``path_id_pool``, shedding the per-path drop history FLoc
      accumulated against the old identifier.

    With an empty ``mutations`` tuple this is exactly a
    :class:`~repro.traffic.cbr.CbrSource`.
    """

    def __init__(
        self,
        flow: FlowInfo,
        rate: float,
        mutations: Sequence[str] = (),
        rate_bounds: Optional[Tuple[float, float]] = None,
        path_id_pool: Sequence[Tuple[int, ...]] = (),
        adapt_interval: int = 50,
        loss_threshold: float = 0.5,
        start_tick: int = 0,
        stop_tick: Optional[int] = None,
        handshake: bool = True,
    ) -> None:
        super().__init__(
            flow,
            rate=rate,
            start_tick=start_tick,
            stop_tick=stop_tick,
            handshake=handshake,
        )
        self.mutations = _check_mutations(mutations, CBR_MUTATIONS)
        if rate_bounds is None:
            rate_bounds = (0.5 * rate, 2.0 * rate)
        lo, hi = rate_bounds
        if not 0.0 < lo <= hi:
            raise ConfigError(
                f"rate_bounds must satisfy 0 < lo <= hi, got {rate_bounds}"
            )
        self.rate_bounds = (float(lo), float(hi))
        self.path_id_pool = tuple(tuple(pid) for pid in path_id_pool)
        if "churn" in self.mutations and not self.path_id_pool:
            raise ConfigError(
                "the 'churn' mutation needs a non-empty path_id_pool"
            )
        self._pool_index = 0
        self._init_adaptation(adapt_interval, loss_threshold)

    def on_tick(self, engine: Engine, tick: int) -> None:
        if self.mutations and tick >= self._next_adapt:
            self._maybe_adapt(engine, tick)
        before = self.packets_sent
        super().on_tick(engine, tick)
        self._window_sent += self.packets_sent - before

    def on_ack(
        self, engine: Engine, flow: FlowInfo, pkt: Packet, tick: int
    ) -> None:
        self._window_acked += 1

    def _maybe_adapt(self, engine: Engine, tick: int) -> None:
        rng = self._adaptation_rng(engine, self.flow.flow_id)
        if self._marked():
            if "rerandomize" in self.mutations:
                lo, hi = self.rate_bounds
                self.rate = rng.uniform(lo, hi)
            if "churn" in self.mutations:
                self._pool_index = (self._pool_index + 1) % len(
                    self.path_id_pool
                )
                self.flow.path_id = self.path_id_pool[self._pool_index]
            self.adaptations += 1
        self._window_sent = 0
        self._window_acked = 0
        self._next_adapt = tick + self.adapt_interval


class AdaptiveShrewSource(ShrewSource, _AdaptationMixin):
    """A Shrew burster that re-times itself once throttled.

    Mutations (any subset of :data:`SHREW_MUTATIONS`):

    * ``"rephase"`` — move the burst to a random offset within the cycle,
      breaking any detector synchronised to the old phase;
    * ``"rerandomize"`` — re-draw the burst rate from ``rate_bounds``.

    Adaptation is evaluated once per cycle (``period_ticks``), on the
    bot's own ack-ratio signal, like :class:`AdaptiveCbrSource`.
    """

    def __init__(
        self,
        flow: FlowInfo,
        burst_rate: float,
        period_ticks: int,
        on_ticks: int,
        mutations: Sequence[str] = (),
        rate_bounds: Optional[Tuple[float, float]] = None,
        loss_threshold: float = 0.5,
        phase: int = 0,
        start_tick: int = 0,
        stop_tick: Optional[int] = None,
        handshake: bool = True,
    ) -> None:
        super().__init__(
            flow,
            burst_rate=burst_rate,
            period_ticks=period_ticks,
            on_ticks=on_ticks,
            phase=phase,
            start_tick=start_tick,
            stop_tick=stop_tick,
            handshake=handshake,
        )
        self.mutations = _check_mutations(mutations, SHREW_MUTATIONS)
        if rate_bounds is None:
            rate_bounds = (0.5 * burst_rate, 2.0 * burst_rate)
        lo, hi = rate_bounds
        if not 0.0 < lo <= hi:
            raise ConfigError(
                f"rate_bounds must satisfy 0 < lo <= hi, got {rate_bounds}"
            )
        self.rate_bounds = (float(lo), float(hi))
        self._init_adaptation(period_ticks, loss_threshold)

    def on_tick(self, engine: Engine, tick: int) -> None:
        if self.mutations and tick >= self._next_adapt:
            self._maybe_adapt(engine, tick)
        before = self.packets_sent
        super().on_tick(engine, tick)
        self._window_sent += self.packets_sent - before

    def on_ack(
        self, engine: Engine, flow: FlowInfo, pkt: Packet, tick: int
    ) -> None:
        self._window_acked += 1

    def _maybe_adapt(self, engine: Engine, tick: int) -> None:
        rng = self._adaptation_rng(engine, self.flow.flow_id)
        if self._marked():
            if "rephase" in self.mutations:
                self.phase = rng.randrange(self.period_ticks)
            if "rerandomize" in self.mutations:
                lo, hi = self.rate_bounds
                self.burst_rate = rng.uniform(lo, hi)
            self.adaptations += 1
        self._window_sent = 0
        self._window_acked = 0
        self._next_adapt = tick + self.adapt_interval


class FluidRateRandomizer:
    """Fluid-level MTD evasion: periodic per-bot rate re-randomization.

    Installed as a tick hook on a
    :class:`~repro.inet.simulator.FluidSimulator`, every ``interval``
    ticks it re-draws each bot's send rate as ``base * factor`` with
    ``factor`` uniform in ``[1 - spread, 1 + spread]``, then rescales so
    the *aggregate* attack rate equals the scenario's original flood —
    the adversary sheds its per-flow rate signature without giving up
    attack volume.  Legitimate flows are untouched (the per-flow rate
    array only reads attack entries for flagged-as-attack flows).

    Plain picklable object; the RNG is derived lazily from the host
    simulator's master seed.
    """

    def __init__(self, interval: int = 50, spread: float = 0.5) -> None:
        if interval < 1:
            raise ConfigError(f"interval must be >= 1, got {interval}")
        if not 0.0 < spread < 1.0:
            raise ConfigError(f"spread must be in (0, 1), got {spread}")
        self.interval = interval
        self.spread = spread
        self.rerolls = 0
        self._rng: Optional[np.random.Generator] = None
        self._base_rate: Optional[float] = None

    def __call__(self, sim, tick: int) -> None:
        if tick % self.interval != 0:
            return
        if self._rng is None:
            seed_rng = sim.spawn_rng("adaptive-fluid")
            self._rng = np.random.default_rng(seed_rng.randrange(2**63))
        if self._base_rate is None:
            # scn.attack_rate starts as a scalar; remember the mean flood
            self._base_rate = float(np.mean(sim.scn.attack_rate))
        n_bots = int(sim.is_attack.sum())
        if n_bots == 0:
            return
        factors = self._rng.uniform(
            1.0 - self.spread, 1.0 + self.spread, size=n_bots
        )
        factors *= n_bots / factors.sum()  # aggregate flood unchanged
        rates = np.full(sim.n_flows, self._base_rate, dtype=np.float64)
        rates[sim.is_attack] = self._base_rate * factors
        sim.scn.attack_rate = rates
        self.rerolls += 1
