"""Covert attack source (paper Sections IV-B.3 and VI-D).

In a covert attack every individual flow looks legitimate: a bot opens many
concurrent connections to *different destinations* across the target link
and sends low-rate, TCP-conformant-looking traffic on each.  With ``N``
bots on each side of a link this creates up to ``O(N^2)`` flows that
collectively soak the bandwidth of genuinely legitimate flows while no
single flow is aggressive.

FLoc counters this with the two-part capability (see
:mod:`repro.core.capability`): the ``C^1`` component hashes the destination
into one of ``n_max`` buckets, so all of a source's flows collapse into at
most ``n_max`` accounting units whose *combined* rate is what MTD-based
identification sees.
"""

from __future__ import annotations

from typing import Iterable, List

from ..net.engine import Engine, FlowInfo
from ..net.source import TrafficSource
from .cbr import CbrSource


class CovertSource(TrafficSource):
    """One bot host driving many low-rate CBR flows to distinct destinations.

    Parameters
    ----------
    flows:
        One flow per destination (all sharing the same source host; the
        scenario builder creates them).
    per_flow_rate:
        Packets per tick on each flow — chosen to be *at or below* the fair
        per-flow bandwidth, so each flow is individually unremarkable.
    """

    def __init__(
        self,
        flows: List[FlowInfo],
        per_flow_rate: float,
        start_tick: int = 0,
        stop_tick=None,
    ) -> None:
        if not flows:
            raise ValueError("CovertSource needs at least one flow")
        hosts = {flow.src_host for flow in flows}
        if len(hosts) != 1:
            raise ValueError(f"covert flows must share one source host, got {hosts}")
        self._subsources = [
            CbrSource(flow, per_flow_rate, start_tick=start_tick, stop_tick=stop_tick)
            for flow in flows
        ]
        self._by_flow = {
            sub.flow.flow_id: sub for sub in self._subsources
        }
        self.per_flow_rate = per_flow_rate

    @property
    def fanout(self) -> int:
        """Number of concurrent destinations (flows) of this bot."""
        return len(self._subsources)

    @property
    def total_rate(self) -> float:
        """Aggregate send rate of the bot, packets per tick."""
        return self.per_flow_rate * self.fanout

    def flows(self) -> Iterable[FlowInfo]:
        return [sub.flow for sub in self._subsources]

    def on_tick(self, engine: Engine, tick: int) -> None:
        for sub in self._subsources:
            sub.on_tick(engine, tick)

    def on_ack(self, engine: Engine, flow: FlowInfo, pkt, tick: int) -> None:
        self._by_flow[flow.flow_id].on_ack(engine, flow, pkt, tick)

    def on_synack(self, engine: Engine, flow: FlowInfo, pkt, tick: int) -> None:
        self._by_flow[flow.flow_id].on_synack(engine, flow, pkt, tick)
