"""Path-churn flooding: the state-exhaustion adversary.

FLoc keeps per-path state, so an attacker who *re-identifies* itself —
rotating through fresh path identifiers the way a botnet rotates through
spoofed prefixes or newly announced more-specifics — attacks the
router's memory rather than the link: every unseen identifier allocates
a ``_PathState``, and with ``max_tracked_paths`` set, forces an eviction
that may destroy a long-lived legitimate path's earned history.  This is
the pressure NetFence-style bounded core-router state is designed to
survive; :class:`PathChurnFloodSource` generates it deterministically so
the chaos campaigns and the ``bounded_state`` SLO can measure whether
FLoc's differential guarantee floor holds at a fixed memory budget.

Unlike :class:`~repro.traffic.adaptive.AdaptiveCbrSource`, whose
``"churn"`` mutation reacts to drops and draws from a small fixed pool,
this source churns **unconditionally** on a fixed cadence and draws
identifiers from a configurable space (up to 10^6+ distinct IDs), with
two modes:

* ``rehandshake=True`` — the bot re-SYNs after every churn, acquiring a
  valid capability for each fresh identifier ("in a legitimate manner",
  paper Section I); every identifier becomes real tracked state.
* ``rehandshake=False`` — the bot keeps its stale capability, so its
  data is dropped as spoofed — but the router has already allocated
  path state by the time verification runs, which is precisely the
  cheap-packet exhaustion vector.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import ConfigError
from ..net.engine import Engine, FlowInfo
from .cbr import CbrSource

#: Origin-AS offset for churned identifiers, far above any scenario's
#: real AS numbers so churned paths never collide with legitimate ones.
CHURN_ORIGIN_BASE = 10_000_000


class PathChurnFloodSource(CbrSource):
    """CBR flood that rotates to a fresh path identifier on a cadence.

    Parameters
    ----------
    flow:
        The flow to drive; its ``path_id`` suffix (everything after the
        origin AS) is preserved so churned paths stay inside the same
        routing tree as the bot's true attachment point.
    rate:
        Send rate in packets per tick.
    churn_interval:
        Ticks between identifier rotations.
    id_space:
        Size of the identifier space churned over (distinct origin IDs).
    rehandshake:
        Re-SYN after each churn (valid capabilities) or keep the stale
        capability (spoofed-exhaustion mode); see the module docstring.
    """

    def __init__(
        self,
        flow: FlowInfo,
        rate: float,
        churn_interval: int = 50,
        id_space: int = 1_000_000,
        rehandshake: bool = True,
        start_tick: int = 0,
        stop_tick: Optional[int] = None,
        handshake: bool = True,
    ) -> None:
        if churn_interval < 1:
            raise ConfigError(
                f"churn_interval must be >= 1, got {churn_interval}"
            )
        if id_space < 1:
            raise ConfigError(f"id_space must be >= 1, got {id_space}")
        super().__init__(flow, rate, start_tick, stop_tick, handshake)
        self.churn_interval = churn_interval
        self.id_space = id_space
        self.rehandshake = rehandshake
        self.churns = 0
        self._base_pid = tuple(flow.path_id)
        self._next_churn: Optional[int] = None
        self._rng: Optional[random.Random] = None

    def on_tick(self, engine: Engine, tick: int) -> None:
        active = tick >= self.start_tick and (
            self.stop_tick is None or tick < self.stop_tick
        )
        if active:
            if self._rng is None:
                self._rng = engine.spawn_rng(
                    f"churn-{self.flow.flow_id}"
                )
                self._next_churn = tick + self.churn_interval
            elif self._next_churn is not None and tick >= self._next_churn:
                self._churn(tick)
        super().on_tick(engine, tick)

    def _churn(self, tick: int) -> None:
        assert self._rng is not None and self._next_churn is not None
        origin = CHURN_ORIGIN_BASE + self._rng.randrange(self.id_space)
        self.flow.path_id = (origin,) + self._base_pid[1:]
        self.churns += 1
        if self.rehandshake and self.handshake:
            # shed the old identity completely: re-SYN for a capability
            # bound to the fresh identifier
            self.established = False
            self.capability = None
            self._syn_sent_tick = None
        self._next_churn = tick + self.churn_interval
