"""Constant-bit-rate (CBR) attack source.

Models a flooding bot: it completes the SYN handshake (acquiring a valid
capability "in a legitimate manner", paper Section I), then sends at a
fixed rate regardless of drops — it is *unresponsive* to congestion, which
is exactly the behaviour FLoc's MTD mechanism detects.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..net.engine import Engine, FlowInfo
from ..net.packet import DATA, SYN, Packet
from ..net.source import TrafficSource


class CbrSource(TrafficSource):
    """Sends ``rate`` data packets per tick (fractional rates accumulate).

    Parameters
    ----------
    flow:
        The flow to drive.
    rate:
        Send rate in packets per tick.
    start_tick / stop_tick:
        Active interval; the SYN goes out at ``start_tick``.
    handshake:
        When ``True`` (default) the bot performs the SYN exchange before
        sending data, so it holds a router-issued capability.
    """

    def __init__(
        self,
        flow: FlowInfo,
        rate: float,
        start_tick: int = 0,
        stop_tick: Optional[int] = None,
        handshake: bool = True,
    ) -> None:
        self.flow = flow
        self.rate = rate
        self.start_tick = start_tick
        self.stop_tick = stop_tick
        self.handshake = handshake
        self.established = not handshake
        self.capability: Optional[bytes] = None
        self.packets_sent = 0
        self._next_seq = 0
        self._credit = 0.0
        self._syn_sent_tick: Optional[int] = None

    def flows(self) -> Iterable[FlowInfo]:
        return (self.flow,)

    def current_rate(self, tick: int) -> float:
        """Send rate at ``tick`` (subclass hook; constant here)."""
        return self.rate

    def on_tick(self, engine: Engine, tick: int) -> None:
        if tick < self.start_tick:
            return
        if self.stop_tick is not None and tick >= self.stop_tick:
            return
        if not self.established:
            self._handshake(engine, tick)
            return
        self._credit += self.current_rate(tick)
        count = int(self._credit)
        self._credit -= count
        for _ in range(count):
            engine.emit(self._packet(DATA, self._next_seq, tick))
            self._next_seq += 1
            self.packets_sent += 1

    def on_synack(
        self, engine: Engine, flow: FlowInfo, pkt: Packet, tick: int
    ) -> None:
        self.established = True
        self.capability = pkt.capability

    def _handshake(self, engine: Engine, tick: int) -> None:
        if self._syn_sent_tick is not None and tick - self._syn_sent_tick <= 40:
            return
        self._syn_sent_tick = tick
        engine.emit(self._packet(SYN, 0, tick))

    def _packet(self, kind: int, seq: int, tick: int) -> Packet:
        flow = self.flow
        return Packet(
            flow_id=flow.flow_id,
            kind=kind,
            seq=seq,
            path_id=flow.path_id,
            route=flow.route,
            src_addr=flow.src_host,
            dst_addr=flow.dst_host,
            sent_tick=tick,
            capability=self.capability,
        )
