"""Traffic generation: attack sources, trace synthesis, and scenarios.

Attack models used in the paper's evaluation (Section VI):

* :class:`~repro.traffic.cbr.CbrSource` — constant-bit-rate flooding bots.
* :class:`~repro.traffic.shrew.ShrewSource` — low-duty-cycle on/off (Shrew)
  attackers, optionally synchronised across bots.
* :class:`~repro.traffic.covert.CovertSource` — one bot holding many
  concurrent low-rate, legitimate-looking flows to distinct destinations.
* :class:`~repro.traffic.adaptive.AdaptiveCbrSource` /
  :class:`~repro.traffic.adaptive.AdaptiveShrewSource` /
  :class:`~repro.traffic.adaptive.FluidRateRandomizer` — adversaries that
  re-phase, re-randomize rates, or churn path identifiers once throttled
  (the Section IV-B strategy-independence stress, used by
  :mod:`repro.chaos`).

The "high-population TCP attack" is simply many
:class:`~repro.tcp.source.TcpSource` instances and needs no special class.

:mod:`repro.traffic.scenarios` builds the Section VI tree topology with all
of the above attached.
"""

from .base import TrafficSource
from .cbr import CbrSource
from .shrew import ShrewSource
from .covert import CovertSource
from .adaptive import (
    AdaptiveCbrSource,
    AdaptiveShrewSource,
    FluidRateRandomizer,
)
from .churn import PathChurnFloodSource
from .trace import PacketSizeDistribution
from .scenarios import TreeScenario, build_tree_scenario

__all__ = [
    "TrafficSource",
    "CbrSource",
    "ShrewSource",
    "CovertSource",
    "AdaptiveCbrSource",
    "AdaptiveShrewSource",
    "FluidRateRandomizer",
    "PathChurnFloodSource",
    "PacketSizeDistribution",
    "TreeScenario",
    "build_tree_scenario",
]
