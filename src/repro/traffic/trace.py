"""Synthetic packet-trace generation (substitute for real traces).

The paper's design-motivation figures use measured Internet traces:

* Fig. 2 shows that, during normal operation, a link's packet *service*
  rate is much higher than its *drop* rate (which justifies acting on
  drops: drop-side state is small and cheap).
* Fig. 3 shows the packet-size distribution: control packets cluster at
  40 B, full-sized data packets at 1500 B, with a secondary mode around
  1300 B attributed to VPN tunnelling overhead.

Real traces are not redistributable, so this module synthesizes traces
with the same shape (documented substitution; see DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class SizeMode:
    """One mode of the packet-size mixture."""

    size: int  # bytes
    weight: float  # mixture weight
    jitter: int = 0  # +/- uniform jitter in bytes


#: Default mixture reproducing the Fig. 3 shape: 40 B control packets,
#: 1500 B full-sized data, a 1300 B VPN-tunnelled mode, and a thin spread
#: of intermediate sizes.
DEFAULT_MODES: Tuple[SizeMode, ...] = (
    SizeMode(size=40, weight=0.38),
    SizeMode(size=1500, weight=0.46),
    SizeMode(size=1300, weight=0.10, jitter=20),
    SizeMode(size=576, weight=0.03, jitter=100),
    SizeMode(size=900, weight=0.03, jitter=250),
)


@dataclass
class PacketSizeDistribution:
    """Samples packet sizes from a mixture of modes.

    >>> dist = PacketSizeDistribution()
    >>> sizes = dist.sample(1000, random.Random(7))
    >>> 40 in sizes and 1500 in sizes
    True
    """

    modes: Sequence[SizeMode] = field(default_factory=lambda: DEFAULT_MODES)

    def __post_init__(self) -> None:
        total = sum(mode.weight for mode in self.modes)
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self._cumulative: List[Tuple[float, SizeMode]] = []
        acc = 0.0
        for mode in self.modes:
            acc += mode.weight / total
            self._cumulative.append((acc, mode))

    def sample_one(self, rng: random.Random) -> int:
        """Draw one packet size in bytes."""
        u = rng.random()
        for threshold, mode in self._cumulative:
            if u <= threshold:
                if mode.jitter:
                    return max(40, mode.size + rng.randint(-mode.jitter, mode.jitter))
                return mode.size
        return self._cumulative[-1][1].size

    def sample(self, n: int, rng: random.Random) -> List[int]:
        """Draw ``n`` packet sizes."""
        return [self.sample_one(rng) for _ in range(n)]

    def cdf(self, sizes: Sequence[int]) -> List[Tuple[int, float]]:
        """Empirical CDF points ``(size, fraction <= size)`` of a sample."""
        ordered = sorted(sizes)
        n = len(ordered)
        points: List[Tuple[int, float]] = []
        for index, size in enumerate(ordered, start=1):
            if points and points[-1][0] == size:
                points[-1] = (size, index / n)
            else:
                points.append((size, index / n))
        return points

    def mode_fractions(self, sizes: Sequence[int], tolerance: int = 50):
        """Fraction of a sample within ``tolerance`` bytes of each mode."""
        fractions = {}
        n = len(sizes)
        for mode in self.modes:
            hits = sum(1 for s in sizes if abs(s - mode.size) <= tolerance)
            fractions[mode.size] = hits / n if n else 0.0
        return fractions
