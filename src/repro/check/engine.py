"""flocheck engine: source loading, suppression, rule driving, reporting.

The engine parses every ``.py`` file under the ``repro`` package root into
a :class:`SourceModule` (text + AST + suppression comments), hands them to
the registered rules, filters findings through same-line
``# flocheck: disable=...`` suppressions, and splits the survivors against
the baseline into *new* vs *grandfathered*.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..errors import ConfigError
from .baseline import Baseline, BaselineEntry
from .diagnostics import Diagnostic, Severity
from .rules import RELAXED_RULE_IDS, ProjectRule, Rule, all_rules

#: Pseudo rule id for files the engine cannot parse at all.
PARSE_ERROR_RULE = "FLC000"

#: Pseudo rule id for malformed suppression comments (engine-emitted,
#: like FLC000 — not in the registry, never itself suppressible).
SUPPRESSION_RULE = "FLC099"

_SUPPRESS = re.compile(
    r"#\s*flocheck:\s*disable=([A-Za-z0-9_,\s]*?)\s*(?:--\s*(\S.*?))?\s*$"
)

#: Default baseline location: shipped next to this package.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


@dataclass(frozen=True)
class SuppressionRecord:
    """One ``# flocheck: disable=`` comment, parsed.

    A suppression must carry a trailing reason (``-- <why>``): the whole
    point of an inline waiver is that the *next* reader learns why the
    rule does not apply here.  A reasonless comment is inert — it
    suppresses nothing and the engine reports it as ``FLC099``.
    """

    line: int
    ids: frozenset  # upper-cased rule ids, or {"ALL"}
    reason: str  # "" when missing (malformed)
    line_content: str = ""

    @property
    def well_formed(self) -> bool:
        return bool(self.reason)


class SourceModule:
    """One parsed source file: path, dotted module name, AST, suppressions."""

    def __init__(self, path: Path, relpath: str, module: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.module = module
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.AST = ast.parse(text, filename=str(path))
        self.suppressions: List[SuppressionRecord] = self._parse_suppressions()
        self._active: Dict[int, Set[str]] = {
            record.line: set(record.ids)
            for record in self.suppressions
            if record.well_formed
        }

    @classmethod
    def load(cls, path: Path, relpath: str, module: str) -> "SourceModule":
        """Read and parse a file; propagates ``SyntaxError``/``OSError``."""
        return cls(path, relpath, module, path.read_text(encoding="utf-8"))

    def line_text(self, line: int) -> str:
        """Stripped source text of a 1-based line ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def _parse_suppressions(self) -> List[SuppressionRecord]:
        records: List[SuppressionRecord] = []
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS.search(text)
            if not match:
                continue
            ids = frozenset(
                token.strip().upper()
                for token in match.group(1).split(",")
                if token.strip()
            )
            if ids:
                records.append(
                    SuppressionRecord(
                        line=lineno,
                        ids=ids,
                        reason=(match.group(2) or "").strip(),
                        line_content=text.strip(),
                    )
                )
        return records

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is disabled on ``line`` by a well-formed
        (reason-carrying) suppression comment."""
        ids = self._active.get(line)
        if ids is None:
            return False
        return "ALL" in ids or rule_id.upper() in ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceModule({self.module!r})"


class Project:
    """Lazy view over the whole package for cross-file rules.

    ``get_module`` serves the already-parsed modules of the current run
    and lazily loads any other module of the package by dotted name, so
    project rules see the full tree even when the user checked a subset
    of paths.  ``read_text`` reaches *outside* the package (docs, config
    files) relative to the repository root; it returns ``None`` when the
    file does not exist — e.g. an installed package without a docs tree.
    """

    def __init__(
        self, package_root: Path, modules: Iterable[SourceModule] = ()
    ) -> None:
        self.package_root = package_root
        self._cache: Dict[str, Optional[SourceModule]] = {
            m.module: m for m in modules
        }

    @property
    def package_name(self) -> str:
        return self.package_root.name

    @property
    def repo_root(self) -> Path:
        """Best-effort repository root (``src/repro`` -> repo)."""
        return self.package_root.parent.parent

    def get_module(self, name: str) -> Optional[SourceModule]:
        """The parsed module for a dotted name, or None if absent/broken."""
        if name in self._cache:
            return self._cache[name]
        module = self._load_module(name)
        self._cache[name] = module
        return module

    def module_for_path(self, relpath: str) -> Optional[SourceModule]:
        """Reverse lookup used when applying suppressions to findings."""
        for module in self._cache.values():
            if module is not None and module.relpath == relpath:
                return module
        return None

    def read_text(self, relpath: str) -> Optional[str]:
        """Text of a repo-root-relative file, or None if it is absent."""
        path = self.repo_root / relpath
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return None

    def iter_modules(self) -> List[SourceModule]:
        """The loaded *package* modules of this run, name-sorted.

        Cross-file rules (call graph, interprocedural taint) analyze the
        package tree only — external roots pulled in by
        ``--include-tests`` are excluded so test helpers never become
        phantom call-graph nodes.
        """
        return sorted(
            (
                m
                for m in self._cache.values()
                if m is not None
                and (
                    m.module == self.package_name
                    or m.module.startswith(self.package_name + ".")
                )
            ),
            key=lambda m: m.module,
        )

    def _load_module(self, name: str) -> Optional[SourceModule]:
        parts = name.split(".")
        if parts[0] != self.package_name:
            return None
        below = parts[1:]
        stem = self.package_root.joinpath(*below) if below else self.package_root
        candidates = [
            stem.with_suffix(".py") if below else None,
            stem / "__init__.py",
        ]
        for path in candidates:
            if path is not None and path.is_file():
                try:
                    return SourceModule.load(
                        path, module_relpath(self.package_root, path), name
                    )
                except (SyntaxError, OSError):
                    return None
        return None


def module_relpath(package_root: Path, path: Path) -> str:
    """Path of a module file relative to the package *parent* directory.

    ``src/repro/core/router.py`` -> ``repro/core/router.py`` — stable
    across checkouts and install locations, which keeps baseline entries
    portable.
    """
    return path.relative_to(package_root.parent).as_posix()


def module_name(package_root: Path, path: Path) -> str:
    """Dotted module name of a file under the package root."""
    return _dotted(package_root.parent, path)


def _dotted(base: Path, path: Path) -> str:
    """Dotted module name of ``path`` relative to ``base``."""
    rel = path.relative_to(base).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class CheckReport:
    """Outcome of one checker run."""

    new_findings: List[Diagnostic] = field(default_factory=list)
    baselined: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    #: every parsed suppression comment, as ``(relpath, record)`` pairs —
    #: the audit surface behind ``repro check --show-suppressed``
    suppression_records: List[tuple] = field(default_factory=list)
    modules_checked: int = 0
    partial: bool = False  # True when a paths subset was checked

    @property
    def findings(self) -> List[Diagnostic]:
        """All non-suppressed findings (new + grandfathered)."""
        return sorted(
            self.new_findings + self.baselined,
            key=lambda d: (d.path, d.line, d.col, d.rule_id),
        )

    @property
    def ok(self) -> bool:
        """No new findings (baselined and suppressed ones are tolerated)."""
        return not self.new_findings

    def strict_ok(self) -> bool:
        """``ok`` plus a non-drifting baseline."""
        return self.ok and not self.stale_baseline

    def summary(self) -> str:
        parts = [
            f"{self.modules_checked} modules checked",
            f"{len(self.new_findings)} new finding(s)",
            f"{len(self.baselined)} baselined",
            f"{len(self.suppressed)} suppressed",
        ]
        if self.stale_baseline:
            parts.append(f"{len(self.stale_baseline)} stale baseline entr(ies)")
        return ", ".join(parts)


class Checker:
    """Drives the rule registry over a package tree."""

    def __init__(
        self,
        package_root: Path,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Baseline] = None,
        extra_roots: Sequence[Path] = (),
    ) -> None:
        self.package_root = Path(package_root)
        if not self.package_root.is_dir():
            raise ConfigError(f"package root {self.package_root} is not a directory")
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()
        self.baseline = baseline if baseline is not None else Baseline()
        #: Directories outside the package (tests/, benchmarks/) also
        #: swept by this run; their modules get the relaxed rule subset.
        self.extra_roots: List[Path] = [Path(r).resolve() for r in extra_roots]
        for root in self.extra_roots:
            if not root.is_dir():
                raise ConfigError(f"extra root {root} is not a directory")

    @classmethod
    def for_package(
        cls,
        package_root: Optional[Path] = None,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Baseline] = None,
        use_default_baseline: bool = True,
        extra_roots: Sequence[Path] = (),
    ) -> "Checker":
        """Checker for the installed ``repro`` package with its shipped
        baseline (unless ``use_default_baseline`` is off)."""
        root = (
            Path(package_root)
            if package_root is not None
            else Path(__file__).resolve().parent.parent
        )
        if baseline is None and use_default_baseline:
            baseline = Baseline.load(str(DEFAULT_BASELINE))
        return cls(root, rules=rules, baseline=baseline, extra_roots=extra_roots)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def collect(
        self, paths: Optional[Sequence[str]] = None
    ) -> List[SourceModule]:
        """Parse the selected source files (whole package by default).

        Unparseable files are skipped here; :meth:`run` surfaces them as
        ``FLC000`` diagnostics so they still fail the build.
        """
        modules, _failures = self._load_selected(paths)
        return modules

    def _load_selected(
        self, paths: Optional[Sequence[str]]
    ) -> tuple:
        """Parse the selected files once, splitting successes from
        ``FLC000`` parse-failure diagnostics."""
        modules: List[SourceModule] = []
        failures: List[Diagnostic] = []
        for path in self._select_files(paths):
            base = self._base_for(path)
            relpath = path.relative_to(base).as_posix()
            try:
                modules.append(
                    SourceModule.load(path, relpath, _dotted(base, path))
                )
            except SyntaxError as exc:
                failures.append(
                    Diagnostic(
                        rule_id=PARSE_ERROR_RULE,
                        severity=Severity.ERROR,
                        path=relpath,
                        line=exc.lineno or 1,
                        col=exc.offset or 0,
                        message=f"file does not parse: {exc.msg}",
                        hint="flocheck analyses the AST; fix the syntax error",
                    )
                )
            except OSError as exc:
                failures.append(
                    Diagnostic(
                        rule_id=PARSE_ERROR_RULE,
                        severity=Severity.ERROR,
                        path=relpath,
                        line=1,
                        col=0,
                        message=f"file is unreadable: {exc}",
                    )
                )
        return modules, failures

    def _select_files(self, paths: Optional[Sequence[str]]) -> List[Path]:
        if not paths:
            selected = sorted(self.package_root.rglob("*.py"))
            for root in self.extra_roots:
                # the seeded-defect corpus is test *data*, not code under
                # check: sweeping it would report its mutants as findings
                selected.extend(
                    p
                    for p in sorted(root.rglob("*.py"))
                    if "corpus" not in p.relative_to(root).parts
                )
            return selected
        selected = []
        for raw in paths:
            path = Path(raw).resolve()
            if path.is_dir():
                selected.extend(sorted(path.rglob("*.py")))
            elif path.is_file():
                selected.append(path)
            else:
                raise ConfigError(f"no such file or directory: {raw}")
        for path in selected:
            if self._base_for(path) is None:
                roots = [self.package_root, *self.extra_roots]
                raise ConfigError(
                    f"{path} is outside the checked roots {roots}"
                )
        return selected

    def _base_for(self, path: Path) -> Optional[Path]:
        """The directory relpaths/module names are computed against.

        Package files anchor at the package *parent* (``repro/...`` —
        stable across checkouts, keeps baseline entries portable); files
        under an extra root anchor at that root's parent (``tests/...``).
        """
        candidates = [self.package_root.parent] + [
            r.parent for r in self.extra_roots
        ]
        roots = [self.package_root, *self.extra_roots]
        for root, base in zip(roots, candidates):
            try:
                path.relative_to(root)
            except ValueError:
                continue
            return base
        return None

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, paths: Optional[Sequence[str]] = None) -> CheckReport:
        partial = bool(paths)
        modules, raw = self._load_selected(paths)
        project = Project(self.package_root, modules)
        package_name = self.package_root.name
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                raw.extend(rule.check_project(project))
                continue
            for module in modules:
                external = not (
                    module.module == package_name
                    or module.module.startswith(package_name + ".")
                )
                if external:
                    # tests/benchmarks get the relaxed subset, ignoring
                    # the rule's package-prefixed scope
                    if rule.rule_id in RELAXED_RULE_IDS:
                        raw.extend(rule.check(module))
                elif rule.applies_to(module):
                    raw.extend(rule.check(module))
        for module in modules:
            raw.extend(_suppression_hygiene(module))
        raw.sort(key=lambda d: (d.path, d.line, d.col, d.rule_id))

        report = CheckReport(modules_checked=len(modules), partial=partial)
        for module in modules:
            for record in module.suppressions:
                report.suppression_records.append((module.relpath, record))
        report.suppression_records.sort(key=lambda item: (item[0], item[1].line))
        unsuppressed: List[Diagnostic] = []
        for diag in raw:
            module = project.module_for_path(diag.path)
            if (
                diag.rule_id not in (PARSE_ERROR_RULE, SUPPRESSION_RULE)
                and module is not None
                and module.suppressed(diag.line, diag.rule_id)
            ):
                report.suppressed.append(diag)
            else:
                unsuppressed.append(diag)

        match = self.baseline.match(unsuppressed)
        report.new_findings = match.new
        report.baselined = match.baselined
        # A subset run sees only a slice of the tree; baseline entries for
        # unchecked files are not stale, so skip the drift check entirely.
        report.stale_baseline = [] if partial else match.stale
        return report


def _suppression_hygiene(module: SourceModule) -> List[Diagnostic]:
    """``FLC099`` findings for malformed suppression comments.

    A suppression without a trailing ``-- <reason>`` is inert (it does
    not suppress anything) *and* reported, so a stray waiver can neither
    silently mask findings nor linger unexplained.
    """
    out: List[Diagnostic] = []
    for record in module.suppressions:
        if record.well_formed:
            continue
        ids = ",".join(sorted(record.ids))
        out.append(
            Diagnostic(
                rule_id=SUPPRESSION_RULE,
                severity=Severity.ERROR,
                path=module.relpath,
                line=record.line,
                col=0,
                message=(
                    f"suppression of {ids} has no reason; it is ignored"
                ),
                hint="append ' -- <why this rule does not apply here>'",
                line_content=record.line_content,
            )
        )
    return out
