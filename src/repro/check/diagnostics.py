"""Structured diagnostics emitted by flocheck rules."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break determinism, resumability, or correctness
    outright; ``WARNING`` findings are hazards that need a human look.
    Both fail a ``--strict`` run unless baselined or suppressed.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id, location, message, and a fix hint.

    ``line_content`` is the stripped source line the finding sits on; the
    baseline matches findings by ``(rule_id, path, line_content)`` so
    entries survive unrelated edits that shift line numbers.
    """

    rule_id: str
    severity: Severity
    path: str  # repo-relative, forward slashes
    line: int
    col: int
    message: str
    hint: str = ""
    line_content: str = field(default="", compare=False)

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching (line-number independent)."""
        return (self.rule_id, self.path, self.line_content)

    def format(self, show_hint: bool = True) -> str:
        """Render ``path:line:col: RULE severity: message``."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity}: {self.message}"
        )
        if show_hint and self.hint:
            text += f"\n    hint: {self.hint}"
        return text
