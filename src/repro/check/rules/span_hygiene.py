"""FLC012 — span hygiene: every span closes, trace state never pickles.

The tracing layer (:mod:`repro.trace`) hands out
:class:`~repro.trace.spans.SpanHandle` objects whose ``end()`` writes
the closing record.  A span that is opened and never closed shows up in
the merged timeline as *truncated* — tolerable for a SIGKILLed worker,
a bug everywhere else.  This rule enforces the closure discipline
lexically at every ``*.span(...)`` call site; accepted shapes:

* ``with tracer.span(...)``, or ``with`` over a name the span was
  assigned to — the context manager closes it on any exit;
* assignment to a name that is later ``end()``-ed inside a
  ``try``/``finally`` ``finally`` block (the supervisor's pattern for
  spans whose result arguments are only known at the end);
* assignment (directly or via a local name) into an attribute or a
  subscript — a *stored* span owned by long-lived state, closed in a
  different method (the fleet pool's ``task_spans`` pattern, where open
  and close happen in different supervision sweeps);
* ``return``-ing the handle — ownership moves to the caller.

A bare ``tracer.span(...)`` expression statement, or a local assignment
with none of the above, leaks an open span and is flagged.

The second half guards the digest boundary *inside* ``repro.trace``:
span timestamps are wall-clock readings (the FLC001 carve-out for
``repro.trace.clock``) and must only ever reach per-process JSONL text
files.  Any ``pickle.*`` call in the package, and any ``__getstate__``
that returns a non-empty payload, would let wall-clock state ride into
checkpoints or digests — both are flagged.  Fixed-at-zero on the tree,
like FLC008–FLC011.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..astutil import import_aliases, resolve_call_name
from ..diagnostics import Diagnostic
from . import Rule, register

#: call-site spellings (last dotted segment) that produce a tracer
TRACER_FACTORIES = frozenset({"current_tracer", "Tracer", "NullTracer"})


def _is_span_open(node: ast.Call, aliases: Dict[str, str]) -> bool:
    """Is this call ``<tracer-ish>.span(...)``?

    The receiver must *look like* a tracer — a name or attribute whose
    final segment mentions ``tracer``, or a direct call to one of the
    :data:`TRACER_FACTORIES` — so unrelated ``.span`` attributes in
    other domains never match.
    """
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "span":
        return False
    recv = func.value
    if isinstance(recv, ast.Name):
        return "tracer" in recv.id.lower()
    if isinstance(recv, ast.Attribute):
        return "tracer" in recv.attr.lower()
    if isinstance(recv, ast.Call):
        name = resolve_call_name(recv.func, aliases)
        if name is None:
            return False
        return name.rsplit(".", 1)[-1] in TRACER_FACTORIES
    return False


def _finally_ended_names(tree: ast.AST) -> Set[str]:
    """Names ``n`` with an ``n.end(...)`` call inside a ``finally`` block."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "end"
                    and isinstance(sub.func.value, ast.Name)
                ):
                    names.add(sub.func.value.id)
    return names


def _with_names(tree: ast.AST) -> Set[str]:
    """Names used directly as a ``with`` context expression."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Name):
                    names.add(item.context_expr.id)
    return names


def _stored_names(tree: ast.AST) -> Set[str]:
    """Names later stored into an attribute or subscript (span escapes
    into long-lived owner state, closed elsewhere)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Name)
            and any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            )
        ):
            names.add(node.value.id)
    return names


def _owned_call_ids(tree: ast.AST) -> Tuple[Set[int], Dict[int, str]]:
    """(ids of calls in owning positions, call id -> assigned local name).

    Owning positions close the span by construction: a ``with`` item,
    a ``return`` value, or an assignment straight into attribute or
    subscript state.  A plain-name assignment is recorded for the
    second-chance checks (``finally``-end, later ``with``, later store).
    """
    owned: Set[int] = set()
    assigned: Dict[int, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                owned.add(id(item.context_expr))
        elif isinstance(node, ast.Return) and node.value is not None:
            owned.add(id(node.value))
        elif isinstance(node, ast.Assign):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            ):
                owned.add(id(node.value))
            elif len(node.targets) == 1 and isinstance(
                node.targets[0], ast.Name
            ):
                assigned[id(node.value)] = node.targets[0].id
    return owned, assigned


def _getstate_is_empty(fn: ast.FunctionDef) -> bool:
    """Does every ``return`` in ``__getstate__`` yield an empty payload?"""
    empty = True
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if isinstance(value, ast.Dict) and not value.keys:
            continue
        if isinstance(value, ast.Tuple) and not value.elts:
            continue
        if isinstance(value, ast.Constant) and value.value is None:
            continue
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("dict", "tuple")
            and not value.args
            and not value.keywords
        ):
            continue
        empty = False
    return empty


@register
class SpanHygieneRule(Rule):
    rule_id = "FLC012"
    description = (
        "spans must close (with / try-finally end / stored handle), and "
        "repro.trace must keep wall-clock state out of pickles"
    )

    def check(self, module) -> Iterator[Diagnostic]:
        aliases = import_aliases(module.tree)
        yield from self._check_span_closure(module, aliases)
        if module.module == "repro.trace" or module.module.startswith(
            "repro.trace."
        ):
            yield from self._check_trace_persistence(module, aliases)

    def _check_span_closure(
        self, module, aliases: Dict[str, str]
    ) -> Iterator[Diagnostic]:
        owned, assigned = _owned_call_ids(module.tree)
        ended = _finally_ended_names(module.tree)
        withed = _with_names(module.tree)
        stored = _stored_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_span_open(node, aliases):
                continue
            if id(node) in owned:
                continue
            name = assigned.get(id(node))
            if name is not None and (
                name in ended or name in withed or name in stored
            ):
                continue
            detail = (
                f"span assigned to {name!r} is never closed"
                if name is not None
                else "span opened and immediately dropped"
            )
            yield self.diagnostic(
                module,
                node.lineno,
                node.col_offset,
                f"{detail}; it will show up truncated in every merged "
                "timeline",
                hint="close it: `with tracer.span(...)`, end() in a "
                "try/finally, or store the handle on owner state that "
                "ends it later",
            )

    def _check_trace_persistence(
        self, module, aliases: Dict[str, str]
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = resolve_call_name(node.func, aliases)
                if name is not None and name.startswith("pickle."):
                    yield self.diagnostic(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"{name}() inside repro.trace: span state holds "
                        "wall-clock readings and must never be pickled",
                        hint="spans belong in the per-process JSONL "
                        "files; anything picklable must pickle empty "
                        "(see Tracer.__getstate__)",
                    )
            elif (
                isinstance(node, ast.FunctionDef)
                and node.name == "__getstate__"
                and not _getstate_is_empty(node)
            ):
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    "__getstate__ in repro.trace returns a non-empty "
                    "payload; wall-clock span state would ride into "
                    "checkpoints and digests",
                    hint="return {} (and have __setstate__ reinitialise "
                    "as a disabled tracer), the TickProfiler idiom",
                )


# re-exported so tests and docs can reference the accepted shapes
ACCEPTED_CLOSURE_SHAPES: List[str] = [
    "with tracer.span(...)",
    "name = tracer.span(...) + try/finally name.end()",
    "owner.attr = tracer.span(...) / owner[key] = handle (stored)",
    "return tracer.span(...) (ownership moves to the caller)",
]
