"""FLC001 — determinism: no wall clocks or unseeded RNG in simulation code.

FLoc's guarantees are only reproducible if a (scenario, seed) pair fully
determines a run (see ``docs/architecture.md``).  Inside the simulation
packages that means:

* no wall-clock reads (``time.time``, ``datetime.now``, ...) — simulated
  time is the engine tick, and checkpoint resume replays ticks, not hours;
* no module-level ``random.*`` calls — the process-global RNG is shared
  mutable state seeded from the OS; every component must draw from a
  seed-derived ``random.Random`` (``Engine.spawn_rng``);
* no legacy ``numpy.random.*`` API — the legacy functions mutate numpy's
  hidden global state; use ``numpy.random.default_rng(seed)``.

Injected clocks (``repro.runner``'s ``clock=time.monotonic`` parameters)
live outside the simulation scope and are exempt by construction.

The telemetry package is in scope — its registry, event log, and
exporters must be tick-driven so traces replay byte-identically — with
exactly one carve-out: :data:`WALL_CLOCK_ALLOWED_MODULES` exempts
``repro.telemetry.profiler`` from the *wall-clock* findings (and only
those).  The tick profiler's entire job is attributing real elapsed time
to subsystems; its measurements never feed back into simulation state,
and its pickle support erases them so checkpoints and digests stay
wall-clock-free.

The span-tracing package ``repro.trace`` is in scope on the same terms:
its one allowed clock is ``repro.trace.clock`` (the second and last
entry in :data:`WALL_CLOCK_ALLOWED_MODULES`), every other trace module
must go through it, and span timestamps only ever reach per-process
JSONL text files — never pickles or digests, which FLC012 enforces
structurally (``__getstate__`` must pickle empty) and a digest-identity
test locks end to end.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import import_aliases, resolve_call_name
from ..diagnostics import Diagnostic
from . import Rule, register

#: Wall-clock reads (resolved through import aliases).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Modules exempt from the wall-clock findings only (random/numpy rules
#: still apply).  Two entries, both observation-only by construction:
#: the tick profiler and the span tracer's clock module — their state
#: never reaches digests or checkpoints (pickle support erases it; see
#: FLC012 for the structural enforcement).
WALL_CLOCK_ALLOWED_MODULES = frozenset(
    {"repro.telemetry.profiler", "repro.trace.clock"}
)

#: ``random`` module attributes that are safe: seeded RNG constructors.
SEEDED_RANDOM_OK = frozenset({"random.Random", "random.SystemRandom"})

#: Modern (explicitly seeded) numpy.random entry points.
NUMPY_RANDOM_OK = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.MT19937",
        "numpy.random.BitGenerator",
    }
)


@register
class DeterminismRule(Rule):
    rule_id = "FLC001"
    description = (
        "wall-clock reads, global random.* calls, or legacy numpy.random "
        "API in simulation code break (scenario, seed) determinism"
    )
    scope = (
        "repro.net",
        "repro.inet",
        "repro.core",
        "repro.traffic",
        "repro.telemetry",
        "repro.trace",
    )

    def check(self, module) -> Iterator[Diagnostic]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, aliases)
            if name is None:
                continue
            if name in WALL_CLOCK_CALLS:
                if module.module in WALL_CLOCK_ALLOWED_MODULES:
                    continue
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read {name}() in simulation code",
                    hint="simulated time is the engine tick; if real time "
                    "is needed (runner deadlines), inject a clock callable "
                    "from outside the simulation packages",
                )
            elif name.startswith("random.") and name not in SEEDED_RANDOM_OK:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"call to the process-global RNG: {name}()",
                    hint="draw from a seed-derived instance instead: "
                    "rng = engine.spawn_rng(name); rng.random()",
                )
            elif (
                name.startswith("numpy.random.")
                and name not in NUMPY_RANDOM_OK
            ):
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"legacy numpy.random API: {name}() mutates hidden "
                    f"global state",
                    hint="use numpy.random.default_rng(seed) and call "
                    "methods on the returned Generator",
                )
