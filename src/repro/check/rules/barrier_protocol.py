"""FLC008 — barrier-protocol misuse in the file-based exchange.

The shard gang (:mod:`repro.inet.shard`) synchronises through files: a
worker *publishes* its epoch payload atomically, then *collects* its
peers' payloads by polling, raising :class:`ShardBarrierTimeout` when a
peer stalls so the supervisor can salvage the run.  Four properties make
that protocol safe, and each has a syntactic shadow this rule checks:

* **Publish before collect.**  Collecting the current epoch before
  publishing your own piece deadlocks the gang: everyone polls for a
  file nobody has written.  Calls that collect must come after the
  publish in the same function.
* **Monotonic epoch arithmetic.**  Ticks and epochs only advance;
  decrementing one re-enters a barrier round whose files the GC may
  already have removed, so a worker can wait forever on a deleted
  directory.
* **Atomic barrier writes.**  Barrier files are read by other processes
  the instant they exist; they must be written to a temp name and
  ``os.replace``-d into place (``mkstemp`` + ``os.fdopen``), never with
  a plain ``open(path, "w")`` a reader can observe half-written.
* **Timeouts must propagate.**  ``ShardBarrierTimeout`` is the
  supervisor's salvage signal; an except-handler that swallows it turns
  a recoverable stall into a silent hang.  Likewise a poll loop with no
  timeout raise can never report the stall at all.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from ..astutil import dotted_name, terminal_identifier
from ..diagnostics import Diagnostic
from . import Rule, register

_BARRIER_CLASS = re.compile(r"Barrier|Exchange")
_COUNTER = re.compile(r"tick|epoch")

#: write-ish modes for builtin open()
_WRITE_MODES = ("w", "a", "x")


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Nodes of ``fn`` excluding nested function/lambda bodies."""
    todo: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        todo.extend(ast.iter_child_nodes(node))


def _functions_with_class(
    tree: ast.Module,
) -> Iterator[Tuple[Optional[str], ast.AST]]:
    """Top-level functions and class methods with their class context."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, sub


def _is_collect_call(call: ast.Call) -> Optional[str]:
    name = terminal_identifier(call.func)
    if name is None:
        return None
    bare = name.lstrip("_")
    if bare.startswith("collect") and "garbage" not in name:
        return name
    return None


def _is_publish_call(call: ast.Call) -> Optional[str]:
    name = terminal_identifier(call.func)
    if name is None:
        return None
    if name.lstrip("_").startswith("publish"):
        return name
    return None


def _open_write_mode(call: ast.Call) -> Optional[str]:
    """The mode string when ``call`` is a builtin open-for-write."""
    if dotted_name(call.func) != "open":
        return None
    mode: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if any(ch in mode.value for ch in _WRITE_MODES):
            return mode.value
    return None


def _handles_timeout(handler: ast.ExceptHandler) -> bool:
    """Whether the handler's type mentions ShardBarrierTimeout."""
    if handler.type is None:
        return False
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        terminal_identifier(t) == "ShardBarrierTimeout" for t in types
    )


@register
class BarrierProtocolRule(Rule):
    rule_id = "FLC008"
    description = (
        "file-barrier protocol: publish before collect, monotonic "
        "epochs, atomic barrier writes, propagated timeouts"
    )
    scope = ("repro.inet", "repro.fleet", "repro.runner")

    def check(self, module) -> Iterator[Diagnostic]:
        for cls_name, fn in _functions_with_class(module.tree):
            yield from self._check_ordering(module, fn)
            yield from self._check_epoch_arithmetic(module, fn)
            yield from self._check_timeout_handling(module, fn)
            yield from self._check_poll_loop(module, fn)
            if cls_name is not None and _BARRIER_CLASS.search(cls_name):
                yield from self._check_raw_write(module, cls_name, fn)

    # -- collect before publish ----------------------------------------
    def _check_ordering(self, module, fn: ast.AST) -> Iterator[Diagnostic]:
        first_publish: Optional[ast.Call] = None
        first_collect: Optional[ast.Call] = None
        for node in _own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            if _is_publish_call(node) is not None:
                if first_publish is None or node.lineno < first_publish.lineno:
                    first_publish = node
            elif _is_collect_call(node) is not None:
                if first_collect is None or node.lineno < first_collect.lineno:
                    first_collect = node
        if (
            first_publish is not None
            and first_collect is not None
            and first_collect.lineno < first_publish.lineno
        ):
            yield self.diagnostic(
                module,
                first_collect.lineno,
                first_collect.col_offset,
                f"{terminal_identifier(first_collect.func)}() before "
                f"{terminal_identifier(first_publish.func)}() in the same "
                "barrier round; every peer waits for a file nobody has "
                "written yet and the gang deadlocks",
                hint="publish this rank's piece first, then collect peers",
            )

    # -- epoch arithmetic ----------------------------------------------
    def _check_epoch_arithmetic(self, module, fn) -> Iterator[Diagnostic]:
        for node in _own_nodes(fn):
            name = self._decremented_counter(node)
            if name is not None:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{name!r} is decremented; barrier ticks/epochs only "
                    "advance — re-entering an earlier round races the "
                    "epoch GC, which may already have removed its files",
                    hint="derive earlier rounds by arithmetic on a copy; "
                    "never move the live counter backwards",
                )

    @staticmethod
    def _decremented_counter(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Sub):
            key = dotted_name(node.target)
            if key is not None:
                terminal = key.rsplit(".", 1)[-1]
                if _COUNTER.search(terminal):
                    return terminal
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.BinOp):
            if isinstance(node.value.op, ast.Sub):
                left = dotted_name(node.value.left)
                for target in node.targets:
                    key = dotted_name(target)
                    if key is not None and key == left:
                        terminal = key.rsplit(".", 1)[-1]
                        if _COUNTER.search(terminal):
                            return terminal
        return None

    # -- raw writes in barrier classes ---------------------------------
    def _check_raw_write(self, module, cls_name, fn) -> Iterator[Diagnostic]:
        for node in _own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            mode = _open_write_mode(node)
            if mode is not None:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"open(..., {mode!r}) inside {cls_name}: peers read "
                    "barrier files the instant they exist, so a plain "
                    "write is observable half-written",
                    hint="write to a tempfile.mkstemp name in the same "
                    "directory and os.replace() it into place",
                )

    # -- swallowed timeouts --------------------------------------------
    def _check_timeout_handling(self, module, fn) -> Iterator[Diagnostic]:
        for node in _own_nodes(fn):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _handles_timeout(node):
                continue
            reraises = any(
                isinstance(sub, ast.Raise)
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if not reraises:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    "ShardBarrierTimeout caught without re-raising; the "
                    "timeout is the supervisor's salvage signal and "
                    "swallowing it turns a recoverable stall into a hang",
                    hint="let it propagate (or `raise` after cleanup) so "
                    "the pool can salvage completed units",
                )

    # -- unbounded poll loops ------------------------------------------
    def _check_poll_loop(self, module, fn) -> Iterator[Diagnostic]:
        raises_timeout = any(
            isinstance(node, ast.Raise)
            and node.exc is not None
            and self._mentions_timeout(node.exc)
            for node in _own_nodes(fn)
        )
        if raises_timeout:
            return
        for node in _own_nodes(fn):
            if isinstance(node, ast.While) and self._is_barrier_poll(node):
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    "barrier poll loop with no timeout raise anywhere in "
                    "the function; a crashed peer leaves this loop "
                    "spinning forever",
                    hint="track a deadline and raise ShardBarrierTimeout "
                    "when it passes (see BarrierExchange._collect)",
                )

    @staticmethod
    def _mentions_timeout(exc: ast.AST) -> bool:
        for node in ast.walk(exc):
            if isinstance(node, ast.Name) and "Timeout" in node.id:
                return True
            if isinstance(node, ast.Attribute) and "Timeout" in node.attr:
                return True
        return False

    @staticmethod
    def _is_barrier_poll(loop: ast.While) -> bool:
        sleeps = False
        watches_files = False
        for node in ast.walk(loop):
            if isinstance(node, ast.Call):
                if terminal_identifier(node.func) == "sleep":
                    sleeps = True
                elif terminal_identifier(node.func) == "exists":
                    watches_files = True
            elif isinstance(node, ast.ExceptHandler) and node.type is not None:
                types = (
                    node.type.elts
                    if isinstance(node.type, ast.Tuple)
                    else [node.type]
                )
                if any(
                    terminal_identifier(t) == "FileNotFoundError"
                    for t in types
                ):
                    watches_files = True
        return sleeps and watches_files
