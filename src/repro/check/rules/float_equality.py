"""FLC003 — float equality on rates, tokens, shares, and kin.

Rates, token balances, bandwidth shares, utilizations, and EWMA estimates
are accumulated floats; ``==``/``!=`` on them is at best fragile and at
worst a silent figure-row corruption (two mathematically equal rates
differing in the last ulp).  The rule flags ``==``/``!=`` where

* either operand's terminal identifier names a continuous quantity
  (``rate``, ``tokens``, ``share``, ``bandwidth``, ``util``, ``credit``,
  ``rtt``, ``mtd``, ``conformance``, ``lambda``...), or
* either operand is a non-integral float literal (``x == 0.5``).

Exemptions:

* comparison against an ALL_CAPS sentinel constant (``mtd ==
  INFINITE_MTD``) — exact comparison against an assigned sentinel such as
  ``float("inf")`` is well-defined;
* ``x == 0.0`` / ``x != 0.0`` style exact-zero guards are *not* exempt:
  write ``<= 0.0`` (or ``math.isclose``) so the intent survives
  refactoring onto accumulated values.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..astutil import is_constant_name, terminal_identifier
from ..diagnostics import Diagnostic
from . import Rule, register

#: Identifier stems naming continuous (float) quantities.
FLOAT_QUANTITY = re.compile(
    r"(^|_)(rate|rates|tokens|share|shares|bandwidth|capacity|mbps|util|"
    r"utilization|credit|rtt|mtd|conformance|lambda|ewma|fraction|headroom|"
    r"goodput|throughput)(_|$|s$)"
)


def _names_float_quantity(node: ast.AST) -> bool:
    name = terminal_identifier(node)
    if name is None:
        return False
    return FLOAT_QUANTITY.search(name.lower()) is not None


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEqualityRule(Rule):
    rule_id = "FLC003"
    description = (
        "== / != on rates, tokens, shares or float literals; accumulated "
        "floats are never exactly equal"
    )
    scope = ("repro",)

    def check(self, module) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if is_constant_name(left) or is_constant_name(right):
                    continue  # sentinel comparison (e.g. INFINITE_MTD)
                suspect = (
                    _names_float_quantity(left)
                    or _names_float_quantity(right)
                    or _is_float_literal(left)
                    or _is_float_literal(right)
                )
                if not suspect:
                    continue
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    "float equality on a continuous quantity",
                    hint="use an inequality guard (<= 0.0), a tolerance "
                    "(math.isclose), or compare against an ALL_CAPS "
                    "sentinel constant",
                )
