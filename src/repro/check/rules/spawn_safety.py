"""FLC007 — spawn safety: what may cross the fleet's process boundary.

The fleet (:mod:`repro.fleet`) starts workers with the ``spawn`` method:
a child shares *nothing* with the supervisor — tasks travel by pickle
and module globals are re-imported fresh on the other side.  Two bug
classes follow, both invisible until a worker actually runs:

* **Non-picklable payloads.**  A lambda or nested function passed into a
  fleet submission sink (``run_fleet``, a worker ``Process`` target, a
  task queue ``put``) dies in ``ForkingPickler`` at dispatch time — or
  worse, only when that code path is first exercised mid-run.
* **Module-global mutable state.**  A worker-side function mutating a
  module-level list/dict/set silently updates the *child's* copy; the
  supervisor never sees it, and serial-vs-fleet runs diverge.  All fleet
  state must live on instances that are explicitly shipped or reduced.

The rule also rejects ``fork``/``forkserver`` start methods inside the
supervised layers: the repo's determinism story (and macOS/Windows
support) is built on ``spawn``, and a forked child inheriting live
threads (heartbeat pulses, watchdogs) deadlocks unpredictably.

Fix patterns: module-level functions for anything submitted; frozen
dataclass recipes for task payloads; per-run state objects (see
``_FleetRun``) instead of globals; ``get_context("spawn")``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..astutil import dotted_name
from ..diagnostics import Diagnostic
from . import Rule, register

#: Callee terminal names whose arguments are shipped to spawn workers.
SUBMISSION_SINKS = frozenset({"run_fleet", "Process", "put", "put_nowait"})

#: Method names that mutate a list/dict/set in place.
MUTATORS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert",
        "add", "update", "setdefault", "pop", "popitem", "remove",
        "discard", "clear",
    }
)

#: AST nodes that build a mutable container literal.
MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                    ast.SetComp)

#: Constructor names that build a mutable container.
MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)


def _is_mutable_value(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.rsplit(".", 1)[-1] in MUTABLE_CALLS:
            return True
    return False


def _mutable_globals(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable container values."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and _is_mutable_value(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and _is_mutable_value(node.value):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _bound_names(target: ast.AST) -> Iterator[str]:
    """Plain names a target expression binds.

    ``x = ...`` binds ``x``; ``x[k] = ...`` and ``x.a = ...`` mutate an
    existing object and bind nothing — walking into them would hide
    exactly the global-mutation pattern this rule exists to catch.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _local_bindings(fn: ast.AST) -> Set[str]:
    """Names the function binds itself (params, assignments, loops)."""
    bound: Set[str] = set()
    args = fn.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        bound.add(arg.arg)
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_bound_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
            bound.update(_bound_names(node.target))
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            bound.update(_bound_names(node.optional_vars))
    return bound


def _globals_declared(fn: ast.AST) -> Set[str]:
    return {
        name
        for node in ast.walk(fn)
        if isinstance(node, ast.Global)
        for name in node.names
    }


def _contains_unpicklable(node: ast.AST) -> Optional[ast.AST]:
    """A lambda or nested ``def`` reference anywhere inside ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Lambda):
            return sub
    return None


@register
class SpawnSafetyRule(Rule):
    rule_id = "FLC007"
    description = (
        "payloads crossing the fleet's spawn boundary must pickle, and "
        "worker-reachable code must not mutate module-global state"
    )
    scope = ("repro.fleet", "repro.runner")

    def check(self, module) -> Iterator[Diagnostic]:
        mutable = _mutable_globals(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_submission(module, node)
                yield from self._check_start_method(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_global_mutation(module, node, mutable)

    # -- non-picklable payloads ----------------------------------------
    def _check_submission(self, module, call: ast.Call) -> Iterator[Diagnostic]:
        name = dotted_name(call.func)
        if name is None or name.rsplit(".", 1)[-1] not in SUBMISSION_SINKS:
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            bad = _contains_unpicklable(arg)
            if bad is not None:
                yield self.diagnostic(
                    module,
                    bad.lineno,
                    bad.col_offset,
                    "lambda in a payload handed to a spawn submission "
                    f"sink ({name.rsplit('.', 1)[-1]}); spawn workers "
                    "receive arguments by pickle, which rejects it",
                    hint="ship a frozen-dataclass recipe or a module-level "
                    "function instead (picklable by qualified name)",
                )

    # -- start method --------------------------------------------------
    def _check_start_method(self, module, call: ast.Call) -> Iterator[Diagnostic]:
        name = dotted_name(call.func)
        if name is None:
            return
        terminal = name.rsplit(".", 1)[-1]
        if terminal not in ("get_context", "set_start_method"):
            return
        if not call.args:
            return
        arg = call.args[0]
        if isinstance(arg, ast.Constant) and arg.value != "spawn":
            yield self.diagnostic(
                module,
                call.lineno,
                call.col_offset,
                f"{terminal}({arg.value!r}) in the supervised layer; "
                "forked children inherit live threads (heartbeats, "
                "watchdogs) and break the shared-nothing contract",
                hint='use get_context("spawn")',
            )

    # -- module-global mutation ----------------------------------------
    def _check_global_mutation(
        self, module, fn: ast.AST, mutable: Set[str]
    ) -> Iterator[Diagnostic]:
        declared = _globals_declared(fn)
        candidates = (mutable | declared) if mutable or declared else set()
        if not candidates:
            return
        local = _local_bindings(fn) - declared
        reaches = {name for name in candidates if name not in local}
        if not reaches:
            return
        for node in ast.walk(fn):
            hit = self._mutation_of(node, reaches, declared)
            if hit is not None:
                name, why = hit
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"module-global {name!r} {why} inside a fleet-layer "
                    "function; spawn workers mutate their own copy and "
                    "the supervisor never sees it",
                    hint="keep per-run state on an instance that is "
                    "explicitly shipped or reduced (see _FleetRun)",
                )

    @staticmethod
    def _mutation_of(node: ast.AST, names: Set[str], declared: Set[str]):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            target = node.func.value
            if (
                isinstance(target, ast.Name)
                and target.id in names
                and node.func.attr in MUTATORS
            ):
                return target.id, f"mutated via .{node.func.attr}()"
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    return target.value.id, "item-assigned"
                if isinstance(target, ast.Name) and target.id in declared:
                    return target.id, "rebound via `global`"
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    return target.value.id, "item-deleted"
        return None
