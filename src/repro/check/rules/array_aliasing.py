"""FLC010 — numpy views aliasing into persisted or shipped state.

The serial-vs-sharded byte-identity guarantee assumes that what a
worker persists (checkpoint payloads, barrier pieces, shard results) is
a *snapshot*.  A numpy view — a slice, ``reshape``, ``ravel``,
``transpose`` — is not: it shares memory with the live simulation
arrays, so a sink that holds the reference past the call (a telemetry
registry, a ``ShardResult`` kept until the epoch's pickle) records
whatever the simulation mutated it into, not what it was when handed
over.  That failure is silent and order-dependent — the exact bug class
that breaks byte-identity only at scale.

The rule runs the forward dataflow pass (:mod:`repro.check.dataflow`)
per function with *view* taint:

* sources: slice subscripts (``vec[a:b]``), view-producing calls
  (``.reshape``, ``.ravel``, ``.view``, ``.transpose``, ``np.asarray``
  — which returns its argument un-copied when it is already an array);
* sanitizers: ``.copy()``, ``np.array`` (copies by default),
  ``.astype``, ``.tolist``, ``.item``, ``np.ascontiguousarray``;
* everything else launders: unlike purity taint, almost every library
  call (``np.sum``, ``np.where``) returns fresh memory, so unknown
  calls do **not** propagate view taint (``calls_propagate=False``);
* sinks: ``CheckpointStore.save`` payloads, ``pickle.dumps``, barrier
  ``_publish`` payloads, and ``ShardResult(...)`` fields.

A second, order-aware pass flags in-place mutation (``buf[i] = ...``,
``buf += ...``) of a variable *after* it was handed to one of those
sinks in the same function — legal only when the sink got a copy.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..astutil import dotted_name, import_aliases, resolve_call_name
from ..dataflow import SinkSpec, TaintPolicy, analyze_function
from ..diagnostics import Diagnostic
from . import Rule, register

#: method terminals that return a view of their receiver
VIEW_METHODS = {
    "reshape": "reshape() returns a view when strides allow",
    "ravel": "ravel() returns a view when contiguous",
    "view": "view() always aliases",
    "transpose": "transpose() always aliases",
    "swapaxes": "swapaxes() always aliases",
    "squeeze": "squeeze() returns a view",
    "diagonal": "diagonal() returns a read-only view",
    "asarray": "np.asarray() returns its argument un-copied",
    "atleast_1d": "np.atleast_1d() aliases array inputs",
    "frombuffer": "np.frombuffer() aliases the buffer",
}

#: call results that are fresh memory (erase view taint)
SANITIZERS = {
    "copy",
    "array",  # np.array copies by default
    "ascontiguousarray",
    "astype",
    "tolist",
    "item",
    "deepcopy",
}


def _sink_label(
    call: ast.Call, resolved: Optional[str], terminal: Optional[str]
) -> Optional[str]:
    total_args = len(call.args) + len(call.keywords)
    if terminal == "save" and total_args >= 3:
        return "a checkpoint payload"
    if terminal == "dumps" and resolved is not None and (
        resolved.startswith("pickle.") or resolved.endswith(".pickle.dumps")
    ):
        return "a pickled payload"
    if terminal == "_publish" and total_args >= 3:
        return "a barrier piece"
    if terminal == "ShardResult":
        return "a shard result"
    return None


def _policy() -> TaintPolicy:
    return TaintPolicy(
        source_terminals={
            name: ("view", why) for name, why in VIEW_METHODS.items()
        },
        sanitizers=set(SANITIZERS),
        sinks=[
            SinkSpec(match=_sink_label, args=[2], kwargs=("obj", "payload")),
            SinkSpec(match=_pickle_or_result, args="all"),
        ],
        view_subscripts=True,
        calls_propagate=False,
    )


def _pickle_or_result(
    call: ast.Call, resolved: Optional[str], terminal: Optional[str]
) -> Optional[str]:
    label = _sink_label(call, resolved, terminal)
    if label in ("a pickled payload", "a shard result"):
        return label
    return None


def _functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub


@register
class ArrayAliasingRule(Rule):
    rule_id = "FLC010"
    description = (
        "numpy views and in-place mutations must not reach persisted "
        "state (checkpoints, barrier pieces, shard results)"
    )
    scope = ("repro.inet", "repro.fleet", "repro.runner")

    def check(self, module) -> Iterator[Diagnostic]:
        aliases = import_aliases(module.tree)
        policy = _policy()
        for fn in _functions(module.tree):
            summary = analyze_function(fn, aliases, policy)
            for hit in summary.hits:
                if hit.taint.kind != "view":
                    continue
                yield self.diagnostic(
                    module,
                    hit.line,
                    hit.col,
                    f"array view ({hit.taint.detail}, line "
                    f"{hit.taint.line}) flows into {hit.sink}; it shares "
                    "memory with live simulation state, so later "
                    "mutation silently changes what was persisted",
                    hint="hand the sink an explicit .copy()",
                )
            yield from self._check_mutation_after_sink(module, fn, policy)

    # -- in-place mutation after the sink took a reference -------------
    def _check_mutation_after_sink(
        self, module, fn: ast.AST, policy: TaintPolicy
    ) -> Iterator[Diagnostic]:
        sunk: Dict[str, tuple] = {}  # var key -> (label, lineno)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            resolved, terminal = _call_names(node, module)
            for spec in policy.sinks:
                label = spec.match(node, resolved, terminal)
                if label is None:
                    continue
                for expr in spec.argument_exprs(node):
                    key = _plain_key(expr)
                    if key is not None and key not in sunk:
                        sunk[key] = (label, node.lineno)
        if not sunk:
            return
        for node in ast.walk(fn):
            key, how = _in_place_target(node)
            if key is None or key not in sunk:
                continue
            label, sink_line = sunk[key]
            if node.lineno <= sink_line:
                continue
            yield self.diagnostic(
                module,
                node.lineno,
                node.col_offset,
                f"{key!r} is {how} after being handed to {label} on line "
                f"{sink_line}; if the sink kept a reference, the "
                "persisted value just changed under it",
                hint=f"pass {key}.copy() to the sink, or finish mutating "
                "before persisting",
            )


def _call_names(call: ast.Call, module):
    aliases = import_aliases(module.tree)
    resolved = resolve_call_name(call.func, aliases)
    terminal = resolved.rsplit(".", 1)[-1] if resolved else None
    if terminal is None and isinstance(call.func, ast.Attribute):
        terminal = call.func.attr
    return resolved, terminal


def _plain_key(expr: ast.AST) -> Optional[str]:
    """A bare variable (not a call/copy) handed to a sink."""
    if isinstance(expr, (ast.Name, ast.Attribute)):
        return dotted_name(expr)
    return None


def _in_place_target(node: ast.AST):
    if isinstance(node, ast.AugAssign):
        key = _subscript_base(node.target) or dotted_name(node.target)
        if key is not None:
            return key, "mutated in place (augmented assignment)"
    if isinstance(node, ast.Assign):
        for target in node.targets:
            key = _subscript_base(target)
            if key is not None:
                return key, "mutated in place (item assignment)"
    return None, ""


def _subscript_base(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Subscript):
        return dotted_name(node.value)
    return None
