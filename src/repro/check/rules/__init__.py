"""Rule registry for flocheck.

A rule is a class with a unique ``rule_id`` (``FLCnnn``), a one-line
``description``, and a ``check(module)`` generator yielding
:class:`~repro.check.diagnostics.Diagnostic` objects.  Project-wide rules
(cross-file consistency) override ``check_project(project)`` instead.

Register new rules with the :func:`register` decorator; the engine
instantiates every registered rule unless a subset is requested.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Type

from ...errors import ConfigError
from ..diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..engine import Project, SourceModule


class Rule:
    """Base class for per-module rules."""

    rule_id: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    #: Module-name prefixes this rule applies to; empty = everywhere.
    scope: tuple = ()

    def applies_to(self, module: "SourceModule") -> bool:
        if not self.scope:
            return True
        return any(
            module.module == prefix or module.module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, module: "SourceModule") -> Iterator[Diagnostic]:
        raise NotImplementedError  # pragma: no cover - abstract

    def diagnostic(
        self,
        module: "SourceModule",
        line: int,
        col: int,
        message: str,
        hint: str = "",
    ) -> Diagnostic:
        """Build a diagnostic anchored to ``module``'s source."""
        return Diagnostic(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            hint=hint,
            line_content=module.line_text(line),
        )


class ProjectRule(Rule):
    """Base class for rules that need the whole project at once."""

    def check(self, module: "SourceModule") -> Iterator[Diagnostic]:
        return iter(())  # project rules run once, not per module

    def check_project(self, project: "Project") -> Iterator[Diagnostic]:
        raise NotImplementedError  # pragma: no cover - abstract


_REGISTRY: Dict[str, Type[Rule]] = {}

#: Rules safe to run on test/benchmark code (``--include-tests``).  Test
#: modules legitimately read wall clocks, compare floats, and mutate
#: fixtures, so only the universally-wrong defect classes apply there:
#: mutable default arguments and unpicklable spawn payloads.
RELAXED_RULE_IDS = frozenset({"FLC005", "FLC007"})


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ConfigError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ConfigError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, id-sorted."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one registered rule by id."""
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise ConfigError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def rule_catalog() -> List[tuple]:
    """``(rule_id, severity, description)`` rows for ``--list-rules``."""
    return [
        (rule.rule_id, str(rule.severity), rule.description)
        for rule in all_rules()
    ]


def known_rule_ids() -> Iterable[str]:
    _load_builtin_rules()
    return sorted(_REGISTRY)


def _load_builtin_rules() -> None:
    """Import the builtin rule modules so their ``@register`` calls run."""
    from . import (  # noqa: F401  (imported for registration side effects)
        array_aliasing,
        barrier_protocol,
        config_drift,
        determinism,
        digest_purity,
        float_equality,
        mutable_defaults,
        pickle_safety,
        process_safety,
        span_hygiene,
        spawn_safety,
        units,
    )
