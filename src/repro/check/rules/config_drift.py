"""FLC006 — config drift between dataclasses, the CLI, and the docs.

Three places describe the same knobs and historically drift apart:

* ``FunctionalSettings`` (``repro.experiments.common``) — the run-size
  dataclass every functional figure consumes;
* the ``repro run`` CLI flags (``repro.cli``) that populate it;
* the ``FLoc configuration reference`` table in
  ``docs/architecture.md`` that documents every ``FLocConfig`` field.

The rule cross-checks all three:

1. every ``FunctionalSettings`` field must be wired to a CLI flag (via
   the ``CLI_FIELD_FLAGS`` map below) or explicitly listed as
   programmatic-only in ``NON_CLI_FIELDS``;
2. every mapped CLI flag must actually exist in ``repro.cli``;
3. every ``FLocConfig`` field must have a row in the docs table, and
   every row must name a live field (no stale docs).

Adding a settings field therefore fails the build until the flag and the
mapping are added — which is the point.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional

from ..diagnostics import Diagnostic
from . import ProjectRule, register

#: FunctionalSettings field -> CLI flag that populates it.
CLI_FIELD_FLAGS: Dict[str, str] = {
    "scale": "--scale",
    "warmup_seconds": "--warmup",
    "measure_seconds": "--seconds",
    "seed": "--seed",
    "sanitize": "--sanitize",
}

#: FunctionalSettings fields set programmatically (per figure), not by flag.
NON_CLI_FIELDS = frozenset({"s_max"})

#: Docs section heading whose table must cover every FLocConfig field.
DOCS_SECTION = "FLoc configuration reference"
DOCS_PATH = "docs/architecture.md"

_TABLE_ROW = re.compile(r"^\|\s*`([A-Za-z_][A-Za-z0-9_]*)`\s*\|")
_ADD_ARGUMENT_FLAG = re.compile(r"--[A-Za-z][A-Za-z0-9-]*")


def dataclass_fields(tree: ast.AST, class_name: str) -> List[ast.AnnAssign]:
    """Annotated field statements of a (data)class, in source order."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return [
                stmt
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ]
    return []


def cli_flags(tree: ast.AST) -> List[str]:
    """Every ``--flag`` string passed to an ``add_argument`` call."""
    flags: List[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "add_argument"):
            continue
        for arg in node.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if _ADD_ARGUMENT_FLAG.fullmatch(arg.value):
                    flags.append(arg.value)
    return flags


def docs_table_fields(markdown: str, section: str) -> Optional[List[str]]:
    """Backticked first-column entries of the table under ``section``.

    Returns ``None`` when the section heading is absent (the docs check
    then reports the missing section rather than per-field noise).
    """
    in_section = False
    fields: List[str] = []
    for line in markdown.splitlines():
        if line.lstrip().startswith("#"):
            in_section = section.lower() in line.lower()
            continue
        if not in_section:
            continue
        match = _TABLE_ROW.match(line.strip())
        if match:
            fields.append(match.group(1))
    return fields if (in_section or fields) else None


@register
class ConfigDriftRule(ProjectRule):
    rule_id = "FLC006"
    description = (
        "FLocConfig/FunctionalSettings fields drifted from the CLI flags "
        "or the docs configuration table"
    )

    def check_project(self, project) -> Iterator[Diagnostic]:
        yield from self._check_settings_vs_cli(project)
        yield from self._check_config_vs_docs(project)

    # ------------------------------------------------------------------
    # FunctionalSettings <-> repro.cli
    # ------------------------------------------------------------------
    def _check_settings_vs_cli(self, project) -> Iterator[Diagnostic]:
        settings_mod = project.get_module("repro.experiments.common")
        cli_mod = project.get_module("repro.cli")
        if settings_mod is None or cli_mod is None:
            return
        fields = dataclass_fields(settings_mod.tree, "FunctionalSettings")
        flags = set(cli_flags(cli_mod.tree))
        field_names = {f.target.id for f in fields}  # type: ignore[union-attr]
        for field in fields:
            name = field.target.id  # type: ignore[union-attr]
            if name in NON_CLI_FIELDS:
                continue
            flag = CLI_FIELD_FLAGS.get(name)
            if flag is None:
                yield self.diagnostic(
                    settings_mod,
                    field.lineno,
                    field.col_offset,
                    f"FunctionalSettings.{name} has no CLI flag mapping",
                    hint="add the --flag in repro/cli.py and register it "
                    "in CLI_FIELD_FLAGS (repro/check/rules/config_drift.py), "
                    "or list the field in NON_CLI_FIELDS",
                )
            elif flag not in flags:
                yield self.diagnostic(
                    settings_mod,
                    field.lineno,
                    field.col_offset,
                    f"FunctionalSettings.{name} maps to {flag}, which "
                    f"repro.cli no longer defines",
                    hint=f"restore the {flag} argument in repro/cli.py or "
                    "update CLI_FIELD_FLAGS",
                )
        for name in sorted(set(CLI_FIELD_FLAGS) - field_names):
            yield self.diagnostic(
                cli_mod,
                1,
                0,
                f"CLI_FIELD_FLAGS maps vanished field "
                f"FunctionalSettings.{name}",
                hint="remove the stale entry from CLI_FIELD_FLAGS",
            )

    # ------------------------------------------------------------------
    # FLocConfig <-> docs/architecture.md
    # ------------------------------------------------------------------
    def _check_config_vs_docs(self, project) -> Iterator[Diagnostic]:
        config_mod = project.get_module("repro.core.config")
        if config_mod is None:
            return
        markdown = project.read_text(DOCS_PATH)
        if markdown is None:
            return  # installed package without a docs tree: nothing to check
        fields = dataclass_fields(config_mod.tree, "FLocConfig")
        documented = docs_table_fields(markdown, DOCS_SECTION)
        if documented is None:
            yield self.diagnostic(
                config_mod,
                1,
                0,
                f"docs/architecture.md has no '{DOCS_SECTION}' section "
                f"documenting FLocConfig",
                hint=f"add a '## {DOCS_SECTION}' table with one "
                "`field` row per FLocConfig field",
            )
            return
        documented_set = set(documented)
        field_names = {f.target.id for f in fields}  # type: ignore[union-attr]
        for field in fields:
            name = field.target.id  # type: ignore[union-attr]
            if name not in documented_set:
                yield self.diagnostic(
                    config_mod,
                    field.lineno,
                    field.col_offset,
                    f"FLocConfig.{name} is missing from the "
                    f"'{DOCS_SECTION}' table in {DOCS_PATH}",
                    hint="document the field (one table row) so operators "
                    "can discover it",
                )
        for name in sorted(documented_set - field_names):
            yield self.diagnostic(
                config_mod,
                1,
                0,
                f"docs table documents `{name}`, which FLocConfig no "
                f"longer defines",
                hint=f"delete the stale row from {DOCS_PATH}",
            )
