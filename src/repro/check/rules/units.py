"""FLC004 — units consistency via identifier suffix dimensions.

The simulation has two unit systems (see :mod:`repro.units`): the
tick/packet world the engine runs in, and the seconds/Mbps world scenario
definitions are written in.  The codebase's naming convention carries the
dimension in the identifier suffix (``attack_rate_mbps``,
``warmup_seconds``, ``window_ticks``, ``packet_bytes``, ``pkts_per_tick``),
and conversions go through ``UnitScale``.

This rule is a lightweight dimensional check over that convention: adding,
subtracting, or ordering two identifiers whose suffixes resolve to
*different* dimensions is flagged (``warmup_seconds + measure_ticks``
is a bug no test will catch until a figure row is silently wrong).
Multiplication and division are exempt — they legitimately combine
dimensions (``mbps * seconds``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ...units import SUFFIX_DIMENSIONS, dimension_of
from ..astutil import terminal_identifier
from ..diagnostics import Diagnostic
from . import Rule, register

__all__ = ["SUFFIX_DIMENSIONS", "UnitsConsistencyRule", "dimension_of"]


def _operand_dimension(node: ast.AST) -> Optional[str]:
    return dimension_of(terminal_identifier(node))


@register
class UnitsConsistencyRule(Rule):
    rule_id = "FLC004"
    description = (
        "additive arithmetic or comparison between identifiers with "
        "mismatched unit suffixes (Mbps vs pkts/tick, seconds vs ticks)"
    )
    scope = ("repro",)

    def check(self, module) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(
                    module, node, node.left, node.right, "arithmetic"
                )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_pair(
                        module, node, left, right, "comparison"
                    )

    def _check_pair(
        self, module, node: ast.AST, left: ast.AST, right: ast.AST, kind: str
    ) -> Iterator[Diagnostic]:
        dim_l = _operand_dimension(left)
        dim_r = _operand_dimension(right)
        if dim_l is None or dim_r is None or dim_l == dim_r:
            return
        name_l = terminal_identifier(left)
        name_r = terminal_identifier(right)
        yield self.diagnostic(
            module,
            node.lineno,
            node.col_offset,
            f"units mismatch in {kind}: {name_l} is {dim_l} but "
            f"{name_r} is {dim_r}",
            hint="convert through repro.units.UnitScale "
            "(seconds_to_ticks, mbps_to_pkts_per_tick, ...) before "
            "combining",
        )
