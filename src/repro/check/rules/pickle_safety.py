"""FLC002 — checkpoint/pickle safety: no closures in checkpointed state.

The crash-safe runner (:mod:`repro.runner`) pickles ``EngineRun`` /
``FluidRun`` wrappers and supervisor state into the checkpoint store.
``pickle`` cannot serialise lambdas, closures over local state, or local
classes — and the failure surfaces *at checkpoint time*, hours into a
run, not at construction.  This rule flags the two ways such objects get
installed into checkpoint-reachable state:

* a ``lambda`` (or a nested ``def``) passed as any argument to a
  checkpoint sink — ``*.checkpointed(...)``, ``run_checkpointed(...)``,
  or the ``SupervisedRunner`` constructor;
* a ``lambda`` assigned onto an instance attribute (``self.x = lambda``,
  including defaulting forms like ``self._log = log or (lambda: None)``)
  inside the runner/CLI layer, where instances end up in pickled state.

Fix pattern: a small module-level function (picklable by qualified name)
instead of the inline closure.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import dotted_name
from ..diagnostics import Diagnostic
from . import Rule, register

#: Callee names (terminal segment) whose arguments become pickled state.
CHECKPOINT_SINKS = frozenset(
    {"checkpointed", "run_checkpointed", "SupervisedRunner"}
)

#: Modules where instance attributes are reachable from pickled state.
#: repro.chaos instances (CampaignJob, injectors inside specs) ride
#: through SupervisedRunner checkpoints; repro.traffic sources are
#: engine state pickled by EngineRun snapshots.
ATTRIBUTE_SCOPE = ("repro.runner", "repro.cli", "repro.chaos", "repro.traffic")


def _callee_terminal(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def _contains_lambda(node: ast.AST) -> Optional[ast.Lambda]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Lambda):
            return sub
    return None


@register
class PickleSafetyRule(Rule):
    rule_id = "FLC002"
    description = (
        "lambdas or closures installed into checkpoint-reachable state "
        "make EngineRun/FluidRun/supervisor snapshots unpicklable"
    )
    scope = ("repro",)

    def check(self, module) -> Iterator[Diagnostic]:
        in_attr_scope = any(
            module.module == p or module.module.startswith(p + ".")
            for p in ATTRIBUTE_SCOPE
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif in_attr_scope and isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_attribute_assign(module, node)

    def _check_call(self, module, call: ast.Call) -> Iterator[Diagnostic]:
        callee = _callee_terminal(call)
        if callee not in CHECKPOINT_SINKS:
            return
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            lam = _contains_lambda(arg)
            if lam is not None:
                yield self.diagnostic(
                    module,
                    lam.lineno,
                    lam.col_offset,
                    f"lambda passed into checkpoint sink {callee}(); the "
                    f"resulting state cannot be pickled",
                    hint="replace the lambda with a module-level function "
                    "(picklable by qualified name)",
                )

    def _check_attribute_assign(self, module, node) -> Iterator[Diagnostic]:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        has_self_attr = any(
            isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
            for t in targets
        )
        if not has_self_attr:
            return
        lam = _contains_lambda(node.value)
        if lam is not None:
            yield self.diagnostic(
                module,
                lam.lineno,
                lam.col_offset,
                "lambda stored on an instance attribute in the runner "
                "layer; pickling the instance (checkpoint, salvage) fails",
                hint="assign a module-level function instead, e.g. "
                "def _null_log(message): ...; self._log = log or _null_log",
            )
