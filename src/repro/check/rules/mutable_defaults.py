"""FLC005 — mutable default arguments and aliased shared buffers.

A mutable default (``def f(history=[])``, ``buf=np.zeros(n)``) is
evaluated once at definition time and shared by every call — in policy
and simulator constructors this aliases state *across simulator
instances*, so two runs in one process contaminate each other and a
"fresh" resumed simulator silently shares arrays with the original.
The hazard class includes numpy buffers (``np.zeros``/``ones``/
``empty``/``array``/``full``) where the aliasing additionally defeats
checkpoint isolation: the pickled copy diverges from the live shared one.

Fix pattern: default to ``None`` and materialise inside the function, or
use ``dataclasses.field(default_factory=...)`` with a factory returning a
*fresh* object.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_name
from ..diagnostics import Diagnostic
from . import Rule, register

#: Callee terminal names whose results are shared mutable objects.
MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "deque",
        "defaultdict",
        "Counter",
        "OrderedDict",
        "bytearray",
        "zeros",
        "ones",
        "empty",
        "full",
        "array",
        "arange",
        "zeros_like",
        "ones_like",
    }
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return False
        return name.rsplit(".", 1)[-1] in MUTABLE_FACTORIES
    return False


@register
class MutableDefaultRule(Rule):
    rule_id = "FLC005"
    description = (
        "mutable default argument (list/dict/set/numpy buffer) shared "
        "across calls and simulator instances"
    )
    scope = ("repro",)

    def check(self, module) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    label = (
                        "<lambda>"
                        if isinstance(node, ast.Lambda)
                        else node.name
                    )
                    yield self.diagnostic(
                        module,
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in {label}(); the "
                        f"object is created once and shared by every call",
                        hint="default to None and create the object inside "
                        "the function (or use field(default_factory=...))",
                    )
