"""FLC009 — cross-process write atomicity and worker-reachable state.

Two hazard classes that only exist because PR 6/7 put multiple
processes behind the same files:

* **Torn writes.**  Heartbeats, quarantine reproducers, and checkpoint
  manifests are read by *another* process (the supervisor's monitor, a
  human re-running a reproducer, a resuming run).  A plain
  ``open(path, "w")`` exposes a half-written file to those readers; the
  blessed idiom is write-to-temp + ``os.replace`` (crash-safe and atomic
  on POSIX).  The first finding this rule caught was the quarantine
  reproducer write in ``repro/fleet/pool.py`` (fixed in the same change
  that introduced the rule): a supervisor crash mid-``json.dump`` left a
  truncated reproducer that silently re-ran with the wrong payload.
* **Worker-reachable global mutation.**  FLC007 flags module-global
  mutation *inside* the fleet layers by lexical position.  That misses
  the interprocedural case: a helper in ``repro.telemetry`` or
  ``repro.net`` that mutates module state is just as wrong the moment a
  spawn worker can call it — the child mutates its own copy and the
  supervisor never sees it.  This rule walks the call graph from the
  spawn entrypoints (:func:`~repro.check.callgraph.spawn_entrypoints`)
  and applies FLC007's mutation detectors to every reachable function
  *outside* FLC007's lexical scope, reporting the call chain that makes
  the function worker-reachable.

The call graph is over-approximate (dynamic attribute calls edge to
every same-named function), so "reachable" may include functions no
worker actually runs — a conservative trade: extra edges can only widen
the checked set, never hide a mutation.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Set, Tuple

from ..astutil import dotted_name, resolve_call_name
from ..callgraph import CallGraph, SymbolTable, module_aliases, spawn_entrypoints
from ..diagnostics import Diagnostic
from . import ProjectRule, register
from .spawn_safety import (
    SpawnSafetyRule,
    _globals_declared,
    _local_bindings,
    _mutable_globals,
)

_BARRIER_CLASS = re.compile(r"Barrier|Exchange")

#: package-relative subtrees whose files another process reads
_CROSS_PROCESS_TAILS = ("fleet", "runner", "inet")

#: FLC007 already polices these lexically; don't double-report
_LEXICAL_SCOPE_TAILS = ("fleet", "runner")


def _module_tail(module_name: str) -> str:
    parts = module_name.split(".")
    return parts[1] if len(parts) > 1 else ""


def _open_write_mode(call: ast.Call) -> Optional[str]:
    if dotted_name(call.func) != "open":
        return None
    mode: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if any(ch in mode.value for ch in "wax"):
            return mode.value
    return None


def _uses_os_replace(fn: ast.AST, aliases) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            if resolve_call_name(node.func, aliases) == "os.replace":
                return True
    return False


@register
class ProcessSafetyRule(ProjectRule):
    rule_id = "FLC009"
    description = (
        "cross-process files need atomic tmp+os.replace writes, and "
        "worker-reachable code anywhere must not mutate module globals"
    )

    def check_project(self, project) -> Iterator[Diagnostic]:
        modules = project.iter_modules()
        if not modules:
            return
        table = SymbolTable.build(modules)
        yield from self._check_torn_writes(project, modules)
        yield from self._check_reachable_mutation(project, table)

    # -- (a) torn cross-process writes ---------------------------------
    def _check_torn_writes(self, project, modules) -> Iterator[Diagnostic]:
        for module in modules:
            if _module_tail(module.module) not in _CROSS_PROCESS_TAILS:
                continue
            aliases = module_aliases(module)
            for cls_name, fn in _functions(module.tree):
                if cls_name is not None and _BARRIER_CLASS.search(cls_name):
                    continue  # FLC008 owns barrier classes
                replaces = _uses_os_replace(fn, aliases)
                for node in ast.walk(fn):
                    if not isinstance(node, ast.Call):
                        continue
                    mode = _open_write_mode(node)
                    if mode is None or replaces:
                        continue
                    yield self.diagnostic(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"open(..., {mode!r}) on a file another process "
                        "may read, with no os.replace in sight; a crash "
                        "mid-write leaves a torn file for the reader",
                        hint="write to a temp name in the same directory "
                        "and os.replace() it into place (see "
                        "fleet.heartbeat._atomic_write_text)",
                    )

    # -- (b) worker-reachable global mutation --------------------------
    def _check_reachable_mutation(
        self, project, table: SymbolTable
    ) -> Iterator[Diagnostic]:
        graph = CallGraph(table)
        roots = spawn_entrypoints(table)
        if not roots:
            return
        reachable = graph.reachable(roots)
        reported: Set[Tuple[str, str]] = set()
        for qualname in sorted(reachable):
            info = table.functions[qualname]
            if _module_tail(info.module) in _LEXICAL_SCOPE_TAILS:
                continue  # FLC007 reports these lexically
            module = project.get_module(info.module)
            if module is None:
                continue
            mutable = _mutable_globals(module.tree)
            declared = _globals_declared(info.node)
            candidates = mutable | declared
            if not candidates:
                continue
            local = _local_bindings(info.node) - declared
            reaches = {name for name in candidates if name not in local}
            if not reaches:
                continue
            for node in ast.walk(info.node):
                hit = SpawnSafetyRule._mutation_of(node, reaches, declared)
                if hit is None:
                    continue
                name, why = hit
                if (qualname, name) in reported:
                    continue
                reported.add((qualname, name))
                chain = graph.chain(roots, qualname)
                via = " -> ".join(part.rsplit(".", 1)[-1] for part in chain)
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"module-global {name!r} {why} in a function a spawn "
                    f"worker reaches ({via}); the child mutates its own "
                    "copy and serial-vs-fleet runs diverge",
                    hint="thread the state through the task payload or "
                    "result instead of module globals",
                )


def _functions(tree: ast.Module):
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, sub
