"""FLC011 — digest purity: impure values must not reach run digests.

The repo's reproducibility claims rest on content digests: checkpoint
payloads are pickled and sha256-hashed, and runs are compared byte for
byte.  Any *environment-dependent* value that reaches a digest input —
a wall-clock read, a pid, an env var, an ``os.listdir`` ordering, a
process-global RNG draw — makes two identical runs hash differently,
which does not fail loudly: the runs just stop being comparable.

FLC001 already flags wall-clock/RNG reads *lexically* inside the
simulation packages.  This rule is the interprocedural complement: it
follows the value.  A helper that returns ``os.getpid()`` taints its
callers' digests two calls away; a function that hashes its *parameter*
turns every call site into a sink for that argument.  Both directions
run to a fixpoint over per-function summaries
(:func:`repro.check.dataflow.fixpoint_summaries`):

* **sources** — wall clocks (shared with FLC001), pids, env vars,
  filesystem enumeration order, process-global RNG draws;
* **sanitizers** — ``sorted()`` (the blessed fix for listdir order);
* **sinks** — ``hashlib.*`` constructor arguments, ``.update()`` on a
  variable assigned from a ``hashlib`` constructor, checkpoint
  ``save(kind, name, obj)`` payloads, barrier ``_publish`` payloads —
  plus *derived* sinks: any project function whose parameter provably
  reaches one of the above.

Blind spots (documented in docs/architecture.md): taint stored on
``self`` in one method and read in another, taint through containers at
element granularity, call chains deeper than the fixpoint bound, and
methods invoked through instances the resolver cannot name.

Documented exemption: the span tracer (:mod:`repro.trace`) reads wall
clocks by design — through ``repro.trace.clock``, the FLC001 carve-out
— and its timestamps reach per-process JSONL text files only.  No
exemption entry is needed *here* because those values provably never
flow into a hashlib call, checkpoint ``save`` payload, or barrier piece:
tracers pickle empty (``__getstate__`` erases all state, enforced by
FLC012) and the span-file writer is a plain text sink.  If a future
change routes a span timestamp into a digest input, this rule is
expected to fire — do not baseline such a finding away.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..astutil import resolve_call_name
from ..callgraph import FunctionInfo, SymbolTable
from ..dataflow import (
    FunctionSummary,
    SinkSpec,
    TaintPolicy,
    fixpoint_summaries,
)
from ..diagnostics import Diagnostic
from .determinism import NUMPY_RANDOM_OK, WALL_CLOCK_CALLS
from . import ProjectRule, register

#: resolved call name -> (taint kind, human detail)
IMPURE_CALLS: Dict[str, Tuple[str, str]] = {
    **{name: ("wall-clock", f"{name}()") for name in WALL_CLOCK_CALLS},
    "os.getpid": ("pid", "os.getpid()"),
    "os.getppid": ("pid", "os.getppid()"),
    "os.getenv": ("env", "os.getenv()"),
    "os.urandom": ("entropy", "os.urandom()"),
    "uuid.uuid1": ("entropy", "uuid.uuid1()"),
    "uuid.uuid4": ("entropy", "uuid.uuid4()"),
    "socket.gethostname": ("host", "socket.gethostname()"),
    "platform.node": ("host", "platform.node()"),
    "os.listdir": ("fs-order", "os.listdir() (unordered)"),
    "os.scandir": ("fs-order", "os.scandir() (unordered)"),
    "os.walk": ("fs-order", "os.walk() (unordered)"),
    "glob.glob": ("fs-order", "glob.glob() (unordered)"),
    "glob.iglob": ("fs-order", "glob.iglob() (unordered)"),
    **{
        f"random.{fn}": ("rng", f"random.{fn}() (process-global RNG)")
        for fn in (
            "random", "randint", "randrange", "choice", "choices",
            "shuffle", "sample", "uniform", "gauss", "getrandbits",
        )
    },
    **{
        f"numpy.random.{fn}": ("rng", f"numpy.random.{fn}() (legacy RNG)")
        for fn in (
            "random", "rand", "randn", "randint", "choice",
            "shuffle", "permutation", "normal", "uniform",
        )
        if f"numpy.random.{fn}" not in NUMPY_RANDOM_OK
    },
}

IMPURE_PREFIXES: Dict[str, Tuple[str, str]] = {
    "os.environ": ("env", "os.environ"),
}

#: ``sorted()`` is the blessed laundering step for filesystem order;
#: sorting a wall-clock value would slip through, a documented blind spot.
SANITIZERS = {"sorted"}


def _digest_update_calls(fn: ast.AST, aliases: Dict[str, str]) -> Set[int]:
    """ids of ``h.update(...)`` calls where ``h`` came from ``hashlib.*``."""
    digest_vars: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            resolved = resolve_call_name(node.value.func, aliases)
            if resolved is not None and resolved.startswith("hashlib."):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        digest_vars.add(target.id)
    if not digest_vars:
        return set()
    hits: Set[int] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "update"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in digest_vars
        ):
            hits.add(id(node))
    return hits


def _spellings(info: FunctionInfo, table: SymbolTable) -> Set[str]:
    """Call-site names that resolve to this function.

    The dataflow pass resolves callees through import aliases only, so
    a project function is recognisable by its full qualname (covered by
    from-imports and relative imports via
    :func:`~repro.check.callgraph.module_aliases`), its ``mod.func`` /
    ``Class.meth`` tail, and — when the simple name is unique in the
    project — the bare name and ``self.name``.
    """
    out = {info.qualname}
    parts = info.qualname.split(".")
    if len(parts) >= 2:
        out.add(".".join(parts[-2:]))
    if len(table.by_name.get(info.name, [])) == 1:
        out.add(info.name)
        if info.is_method:
            out.add(f"self.{info.name}")
            out.add(f"cls.{info.name}")
    return out


def _call_params(info: FunctionInfo) -> List[str]:
    """Parameter names in call-site positional order (self/cls dropped)."""
    args = info.node.args
    params = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    return params


@register
class DigestPurityRule(ProjectRule):
    rule_id = "FLC011"
    description = (
        "wall-clock, RNG, pid, env, and listdir-order values must not "
        "flow into run digests or checkpoint payloads (interprocedural)"
    )

    def check_project(self, project) -> Iterator[Diagnostic]:
        modules = project.iter_modules()
        if not modules:
            return
        table = SymbolTable.build(modules)
        update_sinks: Set[int] = set()
        functions: Dict[str, Tuple[ast.AST, Dict[str, str]]] = {}
        for info in table.functions.values():
            aliases = table.aliases.get(info.module, {})
            functions[info.qualname] = (info.node, aliases)
            update_sinks |= _digest_update_calls(info.node, aliases)

        def base_sinks() -> List[SinkSpec]:
            def direct(call, resolved, terminal):
                if resolved is not None and resolved.startswith("hashlib."):
                    return "a run digest"
                if id(call) in update_sinks:
                    return "a run digest"
                return None

            def payload(call, resolved, terminal):
                total = len(call.args) + len(call.keywords)
                if terminal == "save" and total >= 3:
                    return "a checkpoint payload"
                if terminal == "_publish" and total >= 3:
                    return "a barrier piece"
                return None

            return [
                SinkSpec(match=direct, args="all"),
                SinkSpec(match=payload, args=[2], kwargs=("obj", "payload")),
            ]

        def policy_factory(
            tainted_returns: Dict[str, Tuple[str, str]],
            summaries: Dict[str, FunctionSummary],
        ) -> TaintPolicy:
            tainted_calls: Dict[str, Tuple[str, str]] = {}
            for qualname, taint in tainted_returns.items():
                info = table.functions.get(qualname)
                if info is None:
                    continue
                for spelling in _spellings(info, table):
                    tainted_calls.setdefault(spelling, taint)
            sinks = base_sinks()
            for qualname, summary in summaries.items():
                if not summary.param_sinks:
                    continue
                info = table.functions.get(qualname)
                if info is None:
                    continue
                params = _call_params(info)
                spellings = _spellings(info, table)
                for param, labels in sorted(summary.param_sinks.items()):
                    if param not in params:
                        continue
                    index = params.index(param)
                    label = sorted(labels)[0]
                    sinks.append(
                        _derived_sink(spellings, index, param, label, info)
                    )
            return TaintPolicy(
                sources=dict(IMPURE_CALLS),
                source_prefixes=dict(IMPURE_PREFIXES),
                sanitizers=set(SANITIZERS),
                sinks=sinks,
                tainted_calls=tainted_calls,
            )

        summaries = fixpoint_summaries(functions, policy_factory)

        seen: Set[Tuple[str, int, str, str, str]] = set()
        for qualname in sorted(summaries):
            info = table.functions[qualname]
            module = project.get_module(info.module)
            if module is None:
                continue
            for hit in summaries[qualname].hits:
                key = (
                    module.relpath,
                    hit.line,
                    hit.sink,
                    hit.taint.kind,
                    hit.taint.detail,
                )
                if key in seen:
                    continue
                seen.add(key)
                yield self.diagnostic(
                    module,
                    hit.line,
                    hit.col,
                    f"{hit.taint.detail} [{hit.taint.kind}] flows into "
                    f"{hit.sink}; two identical runs will hash "
                    "differently and stop being comparable",
                    hint="derive the value from run config or tick "
                    "arithmetic; sorted() launders listdir order",
                )


def _derived_sink(
    spellings: Set[str],
    index: int,
    param: str,
    label: str,
    info: FunctionInfo,
) -> SinkSpec:
    qual_label = (
        f"{label} (via {info.name}({param}=...))"
        if label.startswith("a ")
        else label
    )

    def match(call, resolved, terminal):
        if resolved is not None and resolved in spellings:
            return qual_label
        return None

    return SinkSpec(match=match, args=[index], kwargs=(param,))
