"""Baseline file support: grandfathered findings that must not drift.

A baseline entry records one pre-existing finding by its
line-number-independent identity ``(rule, path, line_content)`` plus a
required human justification.  Matching is exact-count: the tree must
contain *exactly* ``count`` findings with that identity — fewer means the
baseline is stale (the finding was fixed; shrink the baseline), more
means new findings (fail).  Silent drift in either direction is
impossible.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..errors import ConfigError
from .diagnostics import Diagnostic

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding identity."""

    rule: str
    path: str
    line_content: str
    count: int = 1
    justification: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.line_content)

    def describe(self) -> str:
        return f"{self.path}: {self.rule} x{self.count} on {self.line_content!r}"


@dataclass
class MatchResult:
    """Outcome of matching current findings against a baseline."""

    new: List[Diagnostic] = field(default_factory=list)
    baselined: List[Diagnostic] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)


class Baseline:
    """An ordered collection of :class:`BaselineEntry` with JSON I/O."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        seen: Dict[Tuple[str, str, str], BaselineEntry] = {}
        for entry in self.entries:
            if entry.count < 1:
                raise ConfigError(
                    f"baseline entry count must be >= 1: {entry.describe()}"
                )
            if entry.key in seen:
                raise ConfigError(
                    f"duplicate baseline entry: {entry.describe()}; merge "
                    f"the counts into one entry"
                )
            seen[entry.key] = entry

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"unreadable baseline file {path}: {exc}") from exc
        if payload.get("version") != _FORMAT_VERSION:
            raise ConfigError(
                f"baseline {path} has unsupported version "
                f"{payload.get('version')!r}; expected {_FORMAT_VERSION}"
            )
        entries = []
        for raw in payload.get("findings", []):
            try:
                entries.append(
                    BaselineEntry(
                        rule=raw["rule"],
                        path=raw["path"],
                        line_content=raw["line_content"],
                        count=int(raw.get("count", 1)),
                        justification=raw.get("justification", ""),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigError(
                    f"malformed baseline entry in {path}: {raw!r}"
                ) from exc
        return cls(entries)

    def save(self, path: str) -> None:
        """Write the baseline as stable, reviewable JSON."""
        payload = {
            "version": _FORMAT_VERSION,
            "findings": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "line_content": e.line_content,
                    "count": e.count,
                    "justification": e.justification,
                }
                for e in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.line_content)
                )
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Diagnostic],
        justification: str = "grandfathered by --update-baseline",
    ) -> "Baseline":
        """Build a baseline accepting exactly the given findings."""
        counts: Dict[Tuple[str, str, str], int] = {}
        for diag in findings:
            counts[diag.baseline_key] = counts.get(diag.baseline_key, 0) + 1
        return cls(
            BaselineEntry(
                rule=rule,
                path=path,
                line_content=content,
                count=count,
                justification=justification,
            )
            for (rule, path, content), count in counts.items()
        )

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def match(self, findings: Iterable[Diagnostic]) -> MatchResult:
        """Split findings into new vs baselined; surface stale entries."""
        budget: Dict[Tuple[str, str, str], int] = {
            entry.key: entry.count for entry in self.entries
        }
        result = MatchResult()
        for diag in findings:
            remaining = budget.get(diag.baseline_key, 0)
            if remaining > 0:
                budget[diag.baseline_key] = remaining - 1
                result.baselined.append(diag)
            else:
                result.new.append(diag)
        for entry in self.entries:
            if budget.get(entry.key, 0) > 0:
                result.stale.append(entry)
        return result
