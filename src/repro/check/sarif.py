"""SARIF 2.1.0 export for flocheck reports.

SARIF (Static Analysis Results Interchange Format) is what GitHub's
code-scanning upload action consumes: uploading the file from CI makes
every finding annotate the PR diff at its exact line.  The exporter maps
a :class:`~repro.check.engine.CheckReport` onto one SARIF ``run``:

* every registered rule (plus the engine pseudo-rules ``FLC000`` and
  ``FLC099``) becomes a ``reportingDescriptor`` so GitHub can show rule
  help inline;
* new findings become plain ``result`` objects at ``level``
  error/warning;
* baselined findings are emitted with an ``external`` suppression and
  inline-suppressed findings with an ``inSource`` suppression, so they
  appear greyed-out instead of vanishing — reviewers see what is being
  tolerated and why;
* flocheck paths are package-relative (``repro/...``); SARIF locations
  must resolve from the repository root, so package paths gain the
  ``src/`` prefix while test/benchmark paths are already root-relative.

Columns are 1-based in SARIF but 0-based in the AST, hence the ``+1``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .diagnostics import Diagnostic, Severity
from .engine import PARSE_ERROR_RULE, SUPPRESSION_RULE, CheckReport
from .rules import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: engine pseudo-rules that never live in the registry
_PSEUDO_RULES = [
    (PARSE_ERROR_RULE, "file does not parse; flocheck analyses the AST"),
    (
        SUPPRESSION_RULE,
        "suppression comment without a trailing '-- <reason>'; it is "
        "inert and must be completed or removed",
    ),
]


def _rule_rows() -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for rule in all_rules():
        rows.append(
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {
                    "level": _level(rule.severity),
                },
            }
        )
    for rule_id, description in _PSEUDO_RULES:
        rows.append(
            {
                "id": rule_id,
                "shortDescription": {"text": description},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return rows


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _uri(path: str, package_name: str) -> str:
    if path == package_name or path.startswith(package_name + "/"):
        return f"src/{path}"
    return path


def _result(
    diag: Diagnostic,
    rule_index: Dict[str, int],
    package_name: str,
    suppression: Optional[Dict[str, str]] = None,
) -> Dict[str, object]:
    message = diag.message
    if diag.hint:
        message = f"{message}. Fix: {diag.hint}"
    result: Dict[str, object] = {
        "ruleId": diag.rule_id,
        "level": _level(diag.severity),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _uri(diag.path, package_name),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": diag.line,
                        "startColumn": diag.col + 1,
                    },
                }
            }
        ],
    }
    if diag.rule_id in rule_index:
        result["ruleIndex"] = rule_index[diag.rule_id]
    if suppression is not None:
        result["suppressions"] = [suppression]
    return result


def report_to_sarif(
    report: CheckReport, package_name: str = "repro"
) -> Dict[str, object]:
    """One SARIF ``log`` document for a check run."""
    rules = _rule_rows()
    rule_index = {row["id"]: i for i, row in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for diag in report.new_findings:
        results.append(_result(diag, rule_index, package_name))
    for diag in report.baselined:
        results.append(
            _result(
                diag,
                rule_index,
                package_name,
                suppression={
                    "kind": "external",
                    "justification": "grandfathered in baseline.json",
                },
            )
        )
    for diag in report.suppressed:
        results.append(
            _result(
                diag,
                rule_index,
                package_name,
                suppression={
                    "kind": "inSource",
                    "justification": "suppressed by a reasoned "
                    "'# flocheck: disable=' comment",
                },
            )
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "flocheck",
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def write_sarif(
    report: CheckReport, path: str, package_name: str = "repro"
) -> None:
    """Serialise the report to ``path`` as SARIF 2.1.0 JSON."""
    document = report_to_sarif(report, package_name=package_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
