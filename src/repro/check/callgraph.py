"""Symbol table, call graph, and spawn-entrypoint reachability.

The per-module rules (FLC001–FLC007) see one AST at a time, which is
exactly as far as they can reason: a wall-clock read is wrong wherever
it sits.  The PR-6/7 fabric broke that locality — whether a function may
mutate module-global state now depends on whether a *spawn worker* can
ever reach it, and whether a value may feed a run digest depends on who
called the function that produced it.  This module supplies the shared
whole-project layer those rules need:

* :class:`SymbolTable` — every function and method of the project,
  keyed by dotted qualname (``repro.fleet.worker.worker_main``,
  ``repro.fleet.jobs.ShardUnitTask.run``), with each module's import
  aliases alongside.
* :class:`CallGraph` — best-effort static call edges between those
  functions.  Resolution is deliberately *over-approximate* where
  Python is dynamic: a call through a bare attribute (``task.run(ctx)``)
  edges to **every** known function of that simple name, because the
  fleet's task dispatch is exactly such a call and missing it would
  blind the reachability analysis.  Over-approximation is conservative
  for the consumers here — they prove the *absence* of hazards on
  reachable code, so extra edges can only widen coverage, never hide a
  defect.
* :func:`spawn_entrypoints` — the roots a spawn worker executes:
  ``*main`` functions of the ``fleet.worker`` module and every ``run``
  method of the task descriptors in ``fleet.jobs``.

Known blind spots (documented in ``docs/architecture.md``): calls
through variables holding callables, ``getattr`` dispatch, decorators
that swap the function body, and inheritance (a method call resolves by
name, not by MRO).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set

from .astutil import dotted_name, import_aliases

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import SourceModule

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "SymbolTable",
    "module_aliases",
    "spawn_entrypoints",
]


def module_aliases(module: "SourceModule") -> Dict[str, str]:
    """Import aliases of a module, *including* relative imports.

    :func:`~repro.check.astutil.import_aliases` deliberately ignores
    relative imports (the per-module rules only care about stdlib
    shadowing), but the call graph lives or dies on them — nearly every
    cross-module edge in this package is a ``from .foo import bar``.
    Resolve them against the module's own dotted name:
    ``from ..runner.checkpoint import CheckpointStore`` inside
    ``repro.fleet.worker`` binds ``CheckpointStore`` to
    ``repro.runner.checkpoint.CheckpointStore``.
    """
    aliases = import_aliases(module.tree)
    parts = module.module.split(".")
    # for a package __init__, `.` refers to the package itself
    anchor = parts if module.relpath.endswith("__init__.py") else parts[:-1]
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ImportFrom) or not node.level:
            continue
        up = node.level - 1
        if up > len(anchor):
            continue
        base = anchor[: len(anchor) - up] if up else list(anchor)
        if node.module:
            base = base + node.module.split(".")
        if not base:
            continue
        prefix = ".".join(base)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            aliases[local] = f"{prefix}.{alias.name}"
    return aliases


@dataclass
class FunctionInfo:
    """One function or method of the project."""

    qualname: str  # module-dotted: repro.fleet.jobs.ShardUnitTask.run
    module: str
    cls: Optional[str]  # enclosing class name, None for top-level
    name: str
    node: ast.AST  # the FunctionDef / AsyncFunctionDef
    lineno: int

    @property
    def is_method(self) -> bool:
        return self.cls is not None


class SymbolTable:
    """Functions, methods, and import aliases of a set of modules."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        #: simple name -> qualnames (for attribute-call over-approximation)
        self.by_name: Dict[str, List[str]] = {}
        #: module -> {local binding: imported dotted name}
        self.aliases: Dict[str, Dict[str, str]] = {}
        #: module -> class names defined in it
        self.classes: Dict[str, Set[str]] = {}

    @classmethod
    def build(cls, modules: Iterable["SourceModule"]) -> "SymbolTable":
        table = cls()
        for module in modules:
            table._index_module(module)
        return table

    def _index_module(self, module: "SourceModule") -> None:
        self.aliases[module.module] = module_aliases(module)
        self.classes.setdefault(module.module, set())
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add(module.module, None, node)
            elif isinstance(node, ast.ClassDef):
                self.classes[module.module].add(node.name)
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add(module.module, node.name, sub)

    def _add(self, module: str, cls: Optional[str], node: ast.AST) -> None:
        parts = [module] + ([cls] if cls else []) + [node.name]
        qualname = ".".join(parts)
        info = FunctionInfo(
            qualname=qualname,
            module=module,
            cls=cls,
            name=node.name,
            node=node,
            lineno=node.lineno,
        )
        self.functions[qualname] = info
        self.by_name.setdefault(node.name, []).append(qualname)

    def get(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def in_module(self, module: str) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if f.module == module]


class CallGraph:
    """Static call edges between the symbol table's functions."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: Dict[str, Set[str]] = {q: set() for q in table.functions}
        for info in table.functions.values():
            self.edges[info.qualname] = self._edges_of(info)

    # -- resolution ----------------------------------------------------
    def _edges_of(self, info: FunctionInfo) -> Set[str]:
        aliases = self.table.aliases.get(info.module, {})
        targets: Set[str] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            targets.update(self._resolve_call(info, node, aliases))
        targets.discard(info.qualname)
        return targets

    def _resolve_call(
        self, info: FunctionInfo, call: ast.Call, aliases: Dict[str, str]
    ) -> Set[str]:
        name = dotted_name(call.func)
        if name is None:
            # dynamic callee (subscription, call-of-call): resolve the
            # terminal attribute if there is one, else give up
            if isinstance(call.func, ast.Attribute):
                return self._by_simple_name(call.func.attr)
            return set()
        head, _, rest = name.partition(".")

        # self.meth() / cls.meth(): same-class first, then same-module
        if head in ("self", "cls") and rest and "." not in rest:
            if info.cls is not None:
                qual = f"{info.module}.{info.cls}.{rest}"
                if qual in self.table.functions:
                    return {qual}
            return self._by_simple_name(rest)

        full_head = aliases.get(head, head)
        candidates = []
        if rest:
            # module.func, module.Class.method, Class.method, obj.meth
            candidates.append(f"{full_head}.{rest}")
            candidates.append(f"{info.module}.{full_head}.{rest}")
        else:
            # bare name: from-import target, else module-local
            candidates.append(full_head)
            candidates.append(f"{info.module}.{full_head}")
        for qual in candidates:
            if qual in self.table.functions:
                return {qual}
            # ClassName(...) instantiates: edge to __init__
            init = f"{qual}.__init__"
            if init in self.table.functions:
                return {init}
        # unresolved attribute call: over-approximate by simple name
        terminal = name.rsplit(".", 1)[-1]
        if "." in name:
            return self._by_simple_name(terminal)
        return set()

    def _by_simple_name(self, simple: str) -> Set[str]:
        return set(self.table.by_name.get(simple, ()))

    # -- queries -------------------------------------------------------
    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Transitive closure of the call edges from ``roots``."""
        seen: Set[str] = set()
        frontier = [root for root in roots if root in self.edges]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.edges.get(current, ()))
        return seen

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.edges.values())

    def chain(self, roots: Sequence[str], target: str) -> List[str]:
        """Shortest root→target call chain, as qualnames ([] if none).

        Used to explain *why* a function counts as worker-reachable in
        FLC009 messages.
        """
        parents: Dict[str, Optional[str]] = {
            root: None for root in roots if root in self.edges
        }
        frontier = list(parents)
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                if current == target:
                    chain: List[str] = []
                    cursor: Optional[str] = current
                    while cursor is not None:
                        chain.append(cursor)
                        cursor = parents[cursor]
                    return list(reversed(chain))
                for callee in sorted(self.edges.get(current, ())):
                    if callee not in parents:
                        parents[callee] = current
                        next_frontier.append(callee)
            frontier = next_frontier
        return []


def spawn_entrypoints(table: SymbolTable) -> List[str]:
    """Roots a spawn worker executes, in deterministic order.

    * every top-level ``*main`` function of a ``*.fleet.worker`` module
      (the process body handed to ``Process(target=...)``), and
    * every ``run`` method of a class in a ``*.fleet.jobs`` module (the
      task descriptors the pool dispatches dynamically — including
      ``ShardUnitTask.run``, the gang member a shard worker executes).
    """
    roots: List[str] = []
    for info in table.functions.values():
        module_tail = info.module.split(".", 1)[-1]
        if (
            info.cls is None
            and info.name.endswith("main")
            and (
                module_tail.endswith("fleet.worker")
                or module_tail == "fleet.worker"
            )
        ):
            roots.append(info.qualname)
        elif (
            info.cls is not None
            and info.name == "run"
            and "fleet.jobs" in info.module
        ):
            roots.append(info.qualname)
    return sorted(roots)
