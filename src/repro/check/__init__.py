"""flocheck: build-time static analysis for the FLoc reproduction.

The runtime sanitizer (:mod:`repro.sanitize`) can only *witness* a
non-reproducible run after hours of simulation; this package *proves* the
absence of whole hazard classes before a single tick executes.  It parses
the ``repro`` tree with :mod:`ast` and runs a registry of pluggable rules,
each emitting structured diagnostics (rule id, severity, file:line, fix
hint).

Rule families
-------------
``FLC001``
    Determinism: wall-clock reads and unseeded global RNG use inside the
    simulation packages (``repro.net``, ``repro.inet``, ``repro.core``,
    ``repro.traffic``).
``FLC002``
    Checkpoint/pickle safety: lambdas or nested closures installed into
    state reachable from checkpointed objects (``EngineRun``/``FluidRun``
    wrappers, ``SupervisedRunner``).
``FLC003``
    Float equality on rates, tokens, shares, and other continuous
    quantities.
``FLC004``
    Units consistency: additive arithmetic or comparisons between
    identifiers carrying mismatched unit suffixes (Mbps vs packets/tick,
    seconds vs ticks, ...), keyed off the :mod:`repro.units` conventions.
``FLC005``
    Mutable default arguments and aliased shared buffers in constructors.
``FLC006``
    Config drift: fields of ``FLocConfig``/``FunctionalSettings``
    cross-checked against the CLI flags in ``repro.cli`` and the
    configuration tables in ``docs/architecture.md``.
``FLC007``
    Spawn safety (lexical): module-global mutation inside functions of
    the multiprocess packages (``repro.fleet``, ``repro.runner``), where
    spawn workers silently diverge from the parent.
``FLC008``
    Barrier protocol: collect-before-publish ordering, epoch/tick
    counters that go backwards, raw (non-atomic) writes inside barrier
    classes, swallowed ``ShardBarrierTimeout``, unbounded barrier polls.
``FLC009``
    Cross-process write atomicity and *interprocedural* spawn safety:
    bare ``open(..., "w")`` without ``os.replace`` in modules other
    processes read concurrently, and global mutation in any function
    reachable from a spawn entrypoint through the call graph — beyond
    FLC007's lexical scope.
``FLC010``
    NumPy aliasing: array views (slices, ``reshape``/``ravel``/... )
    flowing into persisted state (checkpoint payloads, ``ShardResult``,
    pickles), and in-place mutation of a buffer after it was published.
``FLC011``
    Digest purity (interprocedural taint): wall-clock, pid, env,
    entropy, hostname, fs-enumeration-order, or RNG values reaching a
    ``hashlib`` digest or persisted payload, traced across function
    boundaries via summaries.
``FLC099``
    Suppression hygiene (engine pseudo-rule): a ``disable=`` comment
    without a trailing reason — such comments are inert.

Suppression and baselines
-------------------------
A finding on a line carrying ``# flocheck: disable=FLC001 -- <reason>``
(comma lists and ``disable=all`` work too) is suppressed at the source.
The trailing ``-- <reason>`` is mandatory: a reasonless comment does not
suppress anything and is itself flagged as ``FLC099``.  Every
suppression in the tree is auditable via ``repro check
--show-suppressed``.  Findings that predate the checker are
*grandfathered* in a baseline file (``baseline.json`` next to this
package): they do not fail the build, but a baseline entry that no
longer matches any finding is itself an error under ``--strict`` — the
baseline can only shrink, never drift.

Entry points
------------
``python -m repro check [--strict]`` from the CLI — with ``--sarif OUT``
for a SARIF 2.1.0 export, ``--graph`` to dump the call-graph summary,
``--include-tests`` to widen the sweep over ``tests/`` and
``benchmarks/`` with a relaxed rule subset — or programmatically::

    from repro.check import Checker
    report = Checker.for_package().run()
    for diag in report.new_findings:
        print(diag.format())
"""

from .baseline import Baseline, BaselineEntry
from .diagnostics import Diagnostic, Severity
from .engine import Checker, CheckReport, SourceModule
from .rules import Rule, all_rules, get_rule, rule_catalog
from .sarif import report_to_sarif, write_sarif

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Checker",
    "CheckReport",
    "Diagnostic",
    "Rule",
    "Severity",
    "SourceModule",
    "all_rules",
    "get_rule",
    "report_to_sarif",
    "rule_catalog",
    "write_sarif",
]
