"""Lightweight forward taint/dataflow over one function body.

The interprocedural rules (FLC010 aliasing, FLC011 digest purity) need
to answer one question shape: *does a value produced here ever flow into
that sink?*  This module provides the shared machinery: a flow-sensitive
single-function pass that seeds taint at configured source expressions,
propagates it through assignments, containers, arithmetic, f-strings,
and unknown calls, erases it at configured sanitizers, and records every
call where a tainted expression reaches a configured sink argument.

The model is deliberately small and predictable:

* **Variables** are plain names and dotted attribute chains
  (``payload``, ``self._acc``, ``run.sim``).  Indexed locations
  (``d[k]``) taint the whole container.
* **Loops** are handled by running the statement pass twice — enough
  for taint to travel around one back edge, which covers every pattern
  in this codebase (accumulate-in-loop, publish-in-loop).
* **Unknown calls propagate**: ``json.dumps(payload)`` is tainted when
  ``payload`` is, because serialisation does not launder a wall-clock
  read.  Only explicit sanitizers (``.copy()`` for views, for instance)
  erase taint.
* **Summaries** make the pass interprocedural: analysing a function
  with its parameters seeded yields which parameters reach a sink
  (``param_sinks``), and whether its return value is tainted from
  in-body sources (``returns_tainted``).  The driving rule runs a
  fixpoint over the call graph with those summaries
  (:func:`fixpoint_summaries`).

Blind spots, by design (see ``docs/architecture.md``): taint through
object attributes *across* functions, ``global`` variables, container
element granularity, and exception payloads.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .astutil import dotted_name, resolve_call_name

__all__ = [
    "FunctionSummary",
    "SinkHit",
    "SinkSpec",
    "TaintPolicy",
    "analyze_function",
    "fixpoint_summaries",
]


@dataclass(frozen=True)
class Taint:
    """One origin of impurity: what kind, and where it entered."""

    kind: str  # "wall-clock" | "pid" | "env" | "fs-order" | "view" | "param:N"
    detail: str  # human text, e.g. "time.time()"
    line: int


@dataclass(frozen=True)
class SinkHit:
    """A tainted expression reaching a sink argument."""

    sink: str  # label from the SinkSpec, e.g. "sha256 digest"
    line: int
    col: int
    taint: Taint


@dataclass
class SinkSpec:
    """One sink: match a call, name the arguments that must be pure.

    ``match`` receives ``(call, resolved_name, terminal)`` and returns a
    label when the call is a sink, else None.  ``args`` selects which
    argument expressions are checked: a list of positional indices, or
    ``"all"``.  Keyword arguments are always checked when ``args`` is
    ``"all"``; otherwise only the names listed in ``kwargs`` are.
    """

    match: Callable[[ast.Call, Optional[str], Optional[str]], Optional[str]]
    args: object = "all"  # "all" | Sequence[int]
    kwargs: Sequence[str] = ()

    def argument_exprs(self, call: ast.Call) -> List[ast.AST]:
        if self.args == "all":
            exprs: List[ast.AST] = list(call.args)
            exprs.extend(kw.value for kw in call.keywords)
            return exprs
        selected = []
        for index in self.args:  # type: ignore[union-attr]
            if isinstance(index, int) and index < len(call.args):
                selected.append(call.args[index])
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in self.kwargs:
                selected.append(kw.value)
        return selected


@dataclass
class TaintPolicy:
    """What taints, what cleans, and what consumes.

    * ``sources``: resolved dotted call name -> taint kind (a call to a
      matching name seeds taint).
    * ``source_prefixes``: like ``sources`` but matched by prefix
      (``os.environ.`` covers ``os.environ.get``).
    * ``sanitizers``: terminal method/function names whose *result* is
      clean regardless of argument taint (``copy`` for array views).
    * ``sinks``: where taint must not arrive.
    * ``tainted_calls``: extra resolved names treated as sources — the
      fixpoint driver injects functions whose return is known tainted.
    * ``view_subscripts``: when True, a ``Slice``-subscript of a name
      yields ``view`` taint on the *base* variable's value (numpy alias
      semantics; used by FLC010).
    * ``calls_propagate``: when False, an unknown call *launders* its
      arguments' taint.  Wrong for purity taint (``json.dumps(t)`` stays
      impure) but right for view taint, where almost every library call
      (``np.sum``, ``np.where``) returns fresh memory and only the
      enumerated view producers alias.
    """

    sources: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    source_prefixes: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: terminal method name -> taint; matches any receiver
    #: (``x.reshape(...)`` taints regardless of what ``x`` is)
    source_terminals: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    sanitizers: Set[str] = field(default_factory=set)
    sinks: List[SinkSpec] = field(default_factory=list)
    tainted_calls: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    view_subscripts: bool = False
    calls_propagate: bool = True

    def source_taint(self, name: Optional[str], line: int) -> Optional[Taint]:
        if name is None:
            return None
        hit = self.sources.get(name) or self.tainted_calls.get(name)
        if hit is None:
            for prefix, candidate in self.source_prefixes.items():
                if name.startswith(prefix):
                    hit = candidate
                    break
        if hit is None:
            return None
        kind, detail = hit
        return Taint(kind=kind, detail=detail or f"{name}()", line=line)


@dataclass
class FunctionSummary:
    """What one pass over a function established."""

    hits: List[SinkHit] = field(default_factory=list)
    returns_tainted: Set[Taint] = field(default_factory=set)
    #: parameter name -> sink labels its value reaches
    param_sinks: Dict[str, Set[str]] = field(default_factory=dict)


def _target_key(node: ast.AST) -> Optional[str]:
    """Stable key for an assignable location (name or attribute chain)."""
    if isinstance(node, ast.Subscript):
        # d[k] = v taints the container as a whole
        return _target_key(node.value)
    return dotted_name(node)


class _Tracker:
    def __init__(
        self,
        policy: TaintPolicy,
        aliases: Dict[str, str],
        seed_params: bool,
        fn: ast.AST,
    ) -> None:
        self.policy = policy
        self.aliases = aliases
        self.state: Dict[str, Set[Taint]] = {}
        self.summary = FunctionSummary()
        self._param_names: Set[str] = set()
        if seed_params:
            args = fn.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if arg.arg in ("self", "cls"):
                    continue
                self._param_names.add(arg.arg)
                self.state[arg.arg] = {
                    Taint(kind=f"param:{arg.arg}", detail=arg.arg, line=fn.lineno)
                }

    # -- expression taint ----------------------------------------------
    def taints_of(self, node: Optional[ast.AST]) -> Set[Taint]:
        if node is None:
            return set()
        if isinstance(node, (ast.Name, ast.Attribute)):
            key = dotted_name(node)
            if key is None:
                return self.taints_of(getattr(node, "value", None))
            # exact key, then container prefix (x tainted => x.attr is)
            found = set(self.state.get(key, ()))
            head = key.split(".", 1)[0]
            if head != key:
                found |= self.state.get(head, set())
            return found
        if isinstance(node, ast.Call):
            return self._call_taints(node)
        if isinstance(node, ast.Subscript):
            base = self.taints_of(node.value)
            if self.policy.view_subscripts and _has_slice(node):
                key = _target_key(node.value)
                base = set(base)
                base.add(
                    Taint(
                        kind="view",
                        detail=f"slice of {key or 'array'}",
                        line=node.lineno,
                    )
                )
            return base | self.taints_of(node.slice)
        if isinstance(node, ast.BinOp):
            return self.taints_of(node.left) | self.taints_of(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.taints_of(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[Taint] = set()
            for value in node.values:
                out |= self.taints_of(value)
            return out
        if isinstance(node, ast.Compare):
            out = self.taints_of(node.left)
            for comp in node.comparators:
                out |= self.taints_of(comp)
            return out
        if isinstance(node, ast.IfExp):
            return (
                self.taints_of(node.body)
                | self.taints_of(node.orelse)
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self.taints_of(element)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                out |= self.taints_of(key)
            for value in node.values:
                out |= self.taints_of(value)
            return out
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                out |= self.taints_of(value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.taints_of(node.value)
        if isinstance(node, ast.Starred):
            return self.taints_of(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            out = self.taints_of(node.elt)
            for gen in node.generators:
                out |= self.taints_of(gen.iter)
            return out
        if isinstance(node, ast.DictComp):
            out = self.taints_of(node.key) | self.taints_of(node.value)
            for gen in node.generators:
                out |= self.taints_of(gen.iter)
            return out
        if isinstance(node, ast.Await):
            return self.taints_of(node.value)
        return set()

    def _call_taints(self, call: ast.Call) -> Set[Taint]:
        resolved = resolve_call_name(call.func, self.aliases)
        source = self.policy.source_taint(resolved, call.lineno)
        if source is not None:
            return {source}
        terminal = resolved.rsplit(".", 1)[-1] if resolved else None
        if terminal is None and isinstance(call.func, ast.Attribute):
            terminal = call.func.attr
        if terminal is not None and terminal in self.policy.source_terminals:
            kind, detail = self.policy.source_terminals[terminal]
            return {
                Taint(
                    kind=kind,
                    detail=detail or f".{terminal}()",
                    line=call.lineno,
                )
            }
        if terminal in self.policy.sanitizers:
            return set()
        if not self.policy.calls_propagate:
            return set()
        # unknown call: taint flows through arguments and receiver
        out: Set[Taint] = set()
        for arg in call.args:
            out |= self.taints_of(arg)
        for kw in call.keywords:
            out |= self.taints_of(kw.value)
        if isinstance(call.func, ast.Attribute):
            out |= self.taints_of(call.func.value)
        return out

    # -- statements ----------------------------------------------------
    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        for call in _calls_in_statement(stmt):
            self._check_sinks(call)
        if isinstance(stmt, ast.Assign):
            taints = self.taints_of(stmt.value)
            for target in stmt.targets:
                self._assign(target, taints)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self.taints_of(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            extra = self.taints_of(stmt.value)
            key = _target_key(stmt.target)
            if key is not None and extra:
                self.state[key] = self.state.get(key, set()) | extra
        elif isinstance(stmt, ast.Return):
            for taint in self.taints_of(stmt.value):
                if not taint.kind.startswith("param:"):
                    self.summary.returns_tainted.add(taint)
        elif isinstance(stmt, (ast.If,)):
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign(stmt.target, self.taints_of(stmt.iter))
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._assign(
                        item.optional_vars, self.taints_of(item.context_expr)
                    )
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)

    def _assign(self, target: ast.AST, taints: Set[Taint]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taints)
            return
        key = _target_key(target)
        if key is None:
            return
        if taints:
            self.state[key] = set(taints)
        else:
            self.state.pop(key, None)

    def _check_sinks(self, call: ast.Call) -> None:
        resolved = resolve_call_name(call.func, self.aliases)
        terminal = None
        if resolved is not None:
            terminal = resolved.rsplit(".", 1)[-1]
        elif isinstance(call.func, ast.Attribute):
            terminal = call.func.attr
        for spec in self.policy.sinks:
            label = spec.match(call, resolved, terminal)
            if label is None:
                continue
            for expr in spec.argument_exprs(call):
                for taint in self.taints_of(expr):
                    if taint.kind.startswith("param:"):
                        param = taint.kind.split(":", 1)[1]
                        self.summary.param_sinks.setdefault(param, set()).add(
                            label
                        )
                    else:
                        self.summary.hits.append(
                            SinkHit(
                                sink=label,
                                line=call.lineno,
                                col=call.col_offset,
                                taint=taint,
                            )
                        )


def _has_slice(node: ast.Subscript) -> bool:
    index = node.slice
    if isinstance(index, ast.Slice):
        return True
    if isinstance(index, ast.Tuple):
        return any(isinstance(element, ast.Slice) for element in index.elts)
    return False


def _calls_in_statement(stmt: ast.stmt) -> Iterable[ast.Call]:
    """Calls syntactically inside ``stmt`` but not in nested defs."""
    todo: List[ast.AST] = [stmt]
    while todo:
        node = todo.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ) and node is not stmt:
            continue
        if isinstance(node, ast.Call):
            yield node
        todo.extend(ast.iter_child_nodes(node))


def analyze_function(
    fn: ast.AST,
    aliases: Dict[str, str],
    policy: TaintPolicy,
    seed_params: bool = False,
) -> FunctionSummary:
    """Run the forward pass over one function body.

    The statement pass runs twice so taint assigned late in a loop body
    reaches uses earlier in the next iteration; duplicate sink hits from
    the second pass are collapsed.
    """
    tracker = _Tracker(policy, aliases, seed_params, fn)
    tracker.run(fn.body)
    tracker.run(fn.body)
    seen = set()
    unique: List[SinkHit] = []
    for hit in tracker.summary.hits:
        key = (hit.sink, hit.line, hit.col, hit.taint.kind, hit.taint.detail)
        if key not in seen:
            seen.add(key)
            unique.append(hit)
    tracker.summary.hits = unique
    return tracker.summary


def fixpoint_summaries(
    functions: Dict[str, Tuple[ast.AST, Dict[str, str]]],
    policy_factory: Callable[
        [Dict[str, Tuple[str, str]], Dict[str, FunctionSummary]], TaintPolicy
    ],
    max_rounds: int = 8,
) -> Dict[str, FunctionSummary]:
    """Interprocedural driver: iterate until the summaries stabilise.

    ``functions`` maps qualname -> (FunctionDef, module import aliases).
    ``policy_factory`` builds a :class:`TaintPolicy` given (a) the
    current map of *functions whose return value is tainted* — to inject
    as extra sources — and (b) last round's full summaries — so callers
    can turn ``param_sinks`` into derived sinks at the call sites.  Each
    round therefore sees one more level of call depth, in both
    directions (taint flowing *out* of callees via returns, and *into*
    callees via parameters).  Rounds are bounded: taint chains deeper
    than ``max_rounds`` calls are a documented blind spot.
    """
    tainted_returns: Dict[str, Tuple[str, str]] = {}
    summaries: Dict[str, FunctionSummary] = {}
    fingerprint: object = None
    for _ in range(max_rounds):
        policy = policy_factory(dict(tainted_returns), summaries)
        summaries = {
            qualname: analyze_function(fn, aliases, policy, seed_params=True)
            for qualname, (fn, aliases) in functions.items()
        }
        for qualname, summary in summaries.items():
            if summary.returns_tainted and qualname not in tainted_returns:
                taint = sorted(
                    summary.returns_tainted, key=lambda t: (t.kind, t.detail)
                )[0]
                tainted_returns[qualname] = (
                    taint.kind,
                    f"{taint.detail} via {qualname.rsplit('.', 1)[-1]}()",
                )
        new_fingerprint = (
            tuple(sorted(tainted_returns)),
            tuple(
                (qualname, param, tuple(sorted(labels)))
                for qualname in sorted(summaries)
                for param, labels in sorted(
                    summaries[qualname].param_sinks.items()
                )
            ),
        )
        if new_fingerprint == fingerprint:
            break
        fingerprint = new_fingerprint
    return summaries
