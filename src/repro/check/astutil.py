"""Small AST helpers shared by the flocheck rules."""

from __future__ import annotations

import ast
from typing import Dict, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve a ``Name``/``Attribute`` chain to ``"a.b.c"``; None if the
    chain contains anything else (calls, subscripts, ...)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local binding names to the dotted names they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from random import random as rnd`` -> ``{"rnd": "random.random"}``;
    plain ``import time`` -> ``{"time": "time"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never shadow stdlib modules
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted name of a callee with its leading import alias expanded."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    full_head = aliases.get(head, head)
    return f"{full_head}.{rest}" if rest else full_head


def terminal_identifier(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a name/attribute/call expression.

    ``self.lambda_rate`` -> ``lambda_rate``; ``group.bucket.tokens`` ->
    ``tokens``; calls resolve through their callee (``x.rate()`` ->
    ``rate``).  Used by the naming-convention rules (FLC003/FLC004).
    """
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_constant_name(node: ast.AST) -> bool:
    """Whether the expression is an ALL_CAPS module constant reference
    (sentinel values like ``INFINITE_MTD`` — exact comparison against a
    sentinel is well-defined and exempt from FLC003)."""
    name = terminal_identifier(node)
    return name is not None and name.isupper()
