"""The only wall clock in :mod:`repro.trace`.

Every timestamp the tracer emits comes from this module, and this module
is the *only* place in the package allowed to read the host clock — a
containment boundary enforced by flocheck (FLC001 allowlists exactly
``repro.trace.clock``; FLC012 flags wall-clock reads anywhere else under
``repro.trace``).  Keeping the reads in one ~40-line file makes the
observation-only invariant auditable: spans carry wall-clock data, so
nothing a span touches may ever flow into a run digest or a checkpoint,
and the easiest way to prove that is to make every clock read pass
through here on its way to a JSONL sink and nowhere else.

``time.time`` (not ``perf_counter``) on purpose: span files from
different *processes* must land on one shared timeline, and
``perf_counter``'s epoch is per-process.  Sub-millisecond monotonicity
is not required — merge order is canonicalized by (start, proc, seq),
not by trusting the clock.
"""

from __future__ import annotations

import time


def wall_now() -> float:
    """Current unix time in seconds (cross-process comparable)."""
    return time.time()


def since(epoch: float) -> float:
    """Seconds elapsed since ``epoch`` (a :func:`wall_now` reading).

    Clock steps can make this negative on NTP adjustment; clamp so span
    math downstream never sees time running backwards across processes.
    """
    return max(0.0, time.time() - epoch)
