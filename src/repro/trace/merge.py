"""Deterministic merge of per-process span files into one timeline.

Each process wrote its own ``spans-<proc>.jsonl`` independently, flushed
per record, and may have died mid-line.  The merge therefore has two
jobs: *salvage* (tolerate torn trailing lines and begin-records whose
end never arrived) and *canonicalization* (produce the same merged
timeline no matter in which order the files landed on disk or in which
order the OS interleaved the writers).

Canonical order is by ``(start, proc, seq)`` where ``seq`` is the
per-process span counter baked into every span id (``"w3:17"``), so the
merge is a pure function of file *contents* — re-running it over the
same directory, or over the same files copied in any order, yields an
identical span list.  This is the same canonical-order discipline the
fleet uses for telemetry registries (:mod:`repro.fleet.merge`), applied
to wall-clock spans.

Salvage rules:

* an unparseable line (torn by SIGKILL mid-write) is dropped and
  counted, never fatal;
* a ``B`` record with no matching ``E`` becomes a span *truncated* at
  the last timestamp its process was seen alive, flagged
  ``truncated=True`` so reports can call the process out;
* an ``E`` with no matching ``B`` (its begin was the torn line) is
  dropped and counted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigError

__all__ = ["MergedTrace", "Span", "TraceEventRecord", "merge_trace"]


@dataclass
class Span:
    """One closed (or truncated) span on the merged timeline."""

    span_id: str
    parent: Optional[str]
    name: str
    cat: str
    proc: str
    start: float
    end: float
    args: Dict[str, Any] = field(default_factory=dict)
    truncated: bool = False

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def seq(self) -> int:
        try:
            return int(self.span_id.rsplit(":", 1)[1])
        except (IndexError, ValueError):
            return 0


@dataclass
class TraceEventRecord:
    """One instant event on the merged timeline."""

    span_id: str
    parent: Optional[str]
    name: str
    cat: str
    proc: str
    ts: float
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass
class MergedTrace:
    """The canonical merged timeline plus salvage accounting."""

    trace_id: str
    spans: List[Span] = field(default_factory=list)
    events: List[TraceEventRecord] = field(default_factory=list)
    #: proc label -> trace epoch it reported in its metadata record
    procs: Dict[str, float] = field(default_factory=dict)
    torn_lines: int = 0
    truncated_spans: int = 0
    orphan_ends: int = 0

    @property
    def duration(self) -> float:
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def by_id(self) -> Dict[str, Span]:
        return {s.span_id: s for s in self.spans}

    def children(self) -> Dict[Optional[str], List[Span]]:
        out: Dict[Optional[str], List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.parent, []).append(span)
        return out

    def roots(self) -> List[Span]:
        """Spans whose parent is absent from the merged timeline."""
        ids = {s.span_id for s in self.spans}
        return [s for s in self.spans if s.parent is None or s.parent not in ids]


def _parse_lines(path: Path) -> Tuple[List[Dict[str, Any]], int]:
    """All parseable JSON records in ``path``, plus the torn-line count."""
    records: List[Dict[str, Any]] = []
    torn = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                torn += 1
                continue
            if isinstance(record, dict) and "ph" in record:
                records.append(record)
            else:
                torn += 1
    return records, torn


def _merge_file(merged: MergedTrace, path: Path) -> None:
    records, torn = _parse_lines(path)
    merged.torn_lines += torn
    open_spans: Dict[str, Dict[str, Any]] = {}
    last_ts = 0.0
    proc = path.stem.replace("spans-", "", 1)
    for record in records:
        ph = record.get("ph")
        ts = float(record.get("ts", 0.0))
        last_ts = max(last_ts, ts)
        if ph == "M":
            proc = str(record.get("proc", proc))
            merged.procs[proc] = float(record.get("epoch", 0.0))
            if not merged.trace_id:
                merged.trace_id = str(record.get("trace", ""))
            continue
        span_id = str(record.get("span", ""))
        if ph == "B":
            open_spans[span_id] = record
        elif ph == "E":
            begin = open_spans.pop(span_id, None)
            if begin is None:
                merged.orphan_ends += 1
                continue
            args = dict(begin.get("args") or {})
            args.update(record.get("args") or {})
            merged.spans.append(
                Span(
                    span_id=span_id,
                    parent=begin.get("parent"),
                    name=str(begin.get("name", "")),
                    cat=str(begin.get("cat", "run")),
                    proc=str(begin.get("proc", proc)),
                    start=float(begin.get("ts", 0.0)),
                    end=ts,
                    args=args,
                )
            )
        elif ph == "X":
            start = ts
            merged.spans.append(
                Span(
                    span_id=span_id,
                    parent=record.get("parent"),
                    name=str(record.get("name", "")),
                    cat=str(record.get("cat", "run")),
                    proc=str(record.get("proc", proc)),
                    start=start,
                    end=start + float(record.get("dur", 0.0)),
                    args=dict(record.get("args") or {}),
                )
            )
        elif ph == "i":
            merged.events.append(
                TraceEventRecord(
                    span_id=span_id,
                    parent=record.get("parent"),
                    name=str(record.get("name", "")),
                    cat=str(record.get("cat", "run")),
                    proc=str(record.get("proc", proc)),
                    ts=ts,
                    args=dict(record.get("args") or {}),
                )
            )
    # begin-records whose process died before writing the end: close them
    # at the last instant the process was provably alive
    for span_id, begin in open_spans.items():
        merged.truncated_spans += 1
        merged.spans.append(
            Span(
                span_id=span_id,
                parent=begin.get("parent"),
                name=str(begin.get("name", "")),
                cat=str(begin.get("cat", "run")),
                proc=str(begin.get("proc", proc)),
                start=float(begin.get("ts", 0.0)),
                end=max(last_ts, float(begin.get("ts", 0.0))),
                args=dict(begin.get("args") or {}),
                truncated=True,
            )
        )


def merge_trace(trace_dir: str) -> MergedTrace:
    """Merge every ``spans-*.jsonl`` under ``trace_dir`` canonically.

    Raises :class:`~repro.errors.ConfigError` when the directory does
    not exist or holds no span files at all — callers turn that into the
    CLI's documented "no trace data" exit.
    """
    directory = Path(trace_dir)
    if not directory.is_dir():
        raise ConfigError(f"trace directory not found: {directory}")
    paths = sorted(directory.glob("spans-*.jsonl"))
    if not paths:
        raise ConfigError(f"no span files (spans-*.jsonl) in {directory}")
    merged = MergedTrace(trace_id="")
    for path in paths:
        _merge_file(merged, path)
    # canonical order: a pure function of record contents, independent of
    # file arrival order and writer interleaving
    merged.spans.sort(key=lambda s: (s.start, s.proc, s.seq))
    merged.events.sort(key=lambda e: (e.ts, e.proc, e.span_id))
    return merged
