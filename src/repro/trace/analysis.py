"""Where did the wall clock go: rollups, critical path, stragglers.

Works on a :class:`~repro.trace.merge.MergedTrace` and never re-reads
the host clock — everything here is arithmetic over already-recorded
timestamps, so the module stays out of the FLC001 wall-clock allowlist.

Three views:

* **Rollups** — per ``(cat, name)`` total time, *self* time (total minus
  time covered by child spans), and count.  Self time is what makes a
  phase table honest: a ``unit`` span that spends 95% of its life inside
  ``checkpoint.save`` children has almost no self time.
* **Critical path** — the last-finisher walk through the span DAG: from
  the latest-ending root, repeatedly descend into the child that ends
  last.  Across the fleet/gang DAG this surfaces the chain of spans that
  actually bounded the run's wall clock (the straggler shard's barrier
  epoch, the retry that pushed a unit past the others, ...).
* **Phase attribution** — buckets span time into the named phases the
  roadmap cares about (queueing / barrier-wait / checkpoint / salvage /
  ...), using each span's *self* time so a second is never attributed
  twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .merge import MergedTrace, Span

__all__ = [
    "PhaseRollup",
    "TraceAnalysis",
    "analyze",
    "attribute_phase",
    "critical_path",
    "self_times",
]

#: span (cat, name) -> report phase.  Synthetic ``cat="phase"`` spans
#: (from TickProfiler totals) attribute under their own subsystem name,
#: so the engine's ``queueing`` hot path shows up by name.
_PHASE_BY_CAT: Dict[str, str] = {
    "barrier": "barrier-wait",
    "checkpoint": "checkpoint",
    "salvage": "salvage",
    "retry": "retry-wait",
    "queue": "queueing-delay",
}


def attribute_phase(span: Span) -> str:
    """The report phase a span's self time is charged to."""
    if span.cat == "phase":
        return span.name
    if span.cat in _PHASE_BY_CAT:
        return _PHASE_BY_CAT[span.cat]
    if span.name.startswith("checkpoint"):
        return "checkpoint"
    if span.name.startswith("salvage"):
        return "salvage"
    if span.name.startswith("barrier"):
        return "barrier-wait"
    return span.cat


def self_times(trace: MergedTrace) -> Dict[str, float]:
    """Per-span self time: duration minus the union of child intervals.

    Children may overlap each other (synthetic phase spans are laid out
    back to back but a truncated child can overshoot), so the covered
    time is the length of the merged interval union, clipped to the
    parent — never letting self time go negative.
    """
    children = trace.children()
    out: Dict[str, float] = {}
    for span in trace.spans:
        intervals: List[Tuple[float, float]] = []
        for child in children.get(span.span_id, ()):
            lo = max(span.start, child.start)
            hi = min(span.end, child.end)
            if hi > lo:
                intervals.append((lo, hi))
        intervals.sort()
        covered = 0.0
        cursor: Optional[float] = None
        edge = 0.0
        for lo, hi in intervals:
            if cursor is None or lo > edge:
                if cursor is not None:
                    covered += edge - cursor
                cursor, edge = lo, hi
            else:
                edge = max(edge, hi)
        if cursor is not None:
            covered += edge - cursor
        out[span.span_id] = max(0.0, span.duration - covered)
    return out


@dataclass
class PhaseRollup:
    """Aggregate for one ``(cat, name)`` pair."""

    cat: str
    name: str
    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0
    truncated: int = 0


@dataclass
class TraceAnalysis:
    """Everything ``repro trace report`` prints."""

    trace_id: str
    wall_seconds: float
    rollups: List[PhaseRollup] = field(default_factory=list)
    #: report phase -> attributed self seconds (sums to <= wall across procs)
    phases: Dict[str, float] = field(default_factory=dict)
    critical_path: List[Span] = field(default_factory=list)
    #: proc -> seconds that proc spent inside barrier.collect spans; the
    #: proc with the *least* wait is the likely straggler (everyone else
    #: was waiting for it).
    barrier_wait_by_proc: Dict[str, float] = field(default_factory=dict)
    straggler: Optional[str] = None
    torn_lines: int = 0
    truncated_spans: int = 0


def critical_path(trace: MergedTrace) -> List[Span]:
    """The last-finisher chain from the latest-ending root downwards."""
    if not trace.spans:
        return []
    children = trace.children()
    ids = {s.span_id for s in trace.spans}
    roots = [s for s in trace.spans if s.parent is None or s.parent not in ids]
    if not roots:
        return []
    path: List[Span] = []
    # deterministic tie-break mirrors the merge's canonical sort
    node = max(roots, key=lambda s: (s.end, s.proc, s.seq))
    while node is not None:
        path.append(node)
        kids = children.get(node.span_id, [])
        node = max(kids, key=lambda s: (s.end, s.proc, s.seq)) if kids else None
    return path


def analyze(trace: MergedTrace) -> TraceAnalysis:
    """Run every analysis over a merged timeline."""
    selfs = self_times(trace)
    rollups: Dict[Tuple[str, str], PhaseRollup] = {}
    phases: Dict[str, float] = {}
    barrier_wait: Dict[str, float] = {}
    for span in trace.spans:
        key = (span.cat, span.name)
        roll = rollups.get(key)
        if roll is None:
            roll = rollups[key] = PhaseRollup(cat=span.cat, name=span.name)
        roll.count += 1
        roll.total_seconds += span.duration
        roll.self_seconds += selfs[span.span_id]
        if span.truncated:
            roll.truncated += 1
        phase = attribute_phase(span)
        phases[phase] = phases.get(phase, 0.0) + selfs[span.span_id]
        if span.cat == "barrier" and span.name == "barrier.collect":
            barrier_wait[span.proc] = barrier_wait.get(span.proc, 0.0) + span.duration
    straggler: Optional[str] = None
    if len(barrier_wait) >= 2:
        straggler = min(barrier_wait.items(), key=lambda kv: (kv[1], kv[0]))[0]
    return TraceAnalysis(
        trace_id=trace.trace_id,
        wall_seconds=trace.duration,
        rollups=sorted(
            rollups.values(),
            key=lambda r: (-r.total_seconds, r.cat, r.name),
        ),
        phases=phases,
        critical_path=critical_path(trace),
        barrier_wait_by_proc=barrier_wait,
        straggler=straggler,
        torn_lines=trace.torn_lines,
        truncated_spans=trace.truncated_spans,
    )
