"""Span emission: tracers, span handles, and cross-process context.

The tracing facade mirrors :mod:`repro.telemetry`: a disabled
:class:`NullTracer` singleton is the default and the common interface,
:class:`Tracer` is the enabled subclass, and instrumentation sites read
the module-level *current* tracer via :func:`current_tracer` /
:func:`use_tracer`.  Hot paths guard on the single ``enabled`` attribute.

Each process appends newline-delimited JSON records to its own span
file (``spans-main.jsonl`` for the supervisor, ``spans-w3.jsonl`` for
fleet worker 3) inside a shared trace directory; every record is flushed
as it is written, so a SIGKILLed worker leaves at most one torn trailing
line for :mod:`repro.trace.merge` to salvage.  Cross-process causality
travels the other way: the supervisor packs a :class:`TraceContext`
(trace id, directory, epoch, parent span id) into worker config / task
payloads, and the worker parents its root spans under the supervisor's
span ids.

Design invariants, inherited from the telemetry layer and enforced by
flocheck (FLC001/FLC011/FLC012):

* **Observation only.**  Spans carry wall-clock data, so no span, tracer,
  or timestamp may ever reach a run digest, a checkpoint, or a simulated
  quantity.  A pickled :class:`Tracer` round-trips *disabled and empty*
  (like ``TickProfiler.__getstate__``), so objects that accidentally hold
  one cannot smuggle timings into persisted state.
* **Clock containment.**  All clock reads live in
  :mod:`repro.trace.clock`; this module only ever handles the floats it
  returns.
* **Text sinks only.**  Span records are JSONL text — never pickled —
  so trace output can never be mistaken for (or folded into) run state.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from types import TracebackType
from typing import Any, Dict, Iterator, Optional, Type

from ..errors import ConfigError
from .clock import since, wall_now

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanHandle",
    "TraceContext",
    "Tracer",
    "current_tracer",
    "phase_delta",
    "use_tracer",
]


def phase_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Positive per-subsystem deltas between two profiler snapshots.

    Instrumentation sites snapshot ``TickProfiler.totals_seconds`` before
    and after a unit of work and hand the delta to
    :meth:`Tracer.emit_phases`, which renders it as synthetic per-phase
    child spans — that is how the per-tick engine/fluid phases join the
    cross-process timeline without per-tick span records.
    """
    out: Dict[str, float] = {}
    for name, total in after.items():
        delta = total - before.get(name, 0.0)
        if delta > 0.0:
            out[name] = delta
    return out


@dataclass(frozen=True)
class TraceContext:
    """Everything a child process needs to join an ongoing trace.

    Frozen and made of primitives so it rides through spawn pickles and
    task payload tuples unchanged.  ``parent_span_id`` is the span in the
    *sending* process that causally precedes the receiver's root span
    (e.g. the supervisor's ``task:fig13[0/2]`` span for a fleet worker's
    execution of that task).
    """

    trace_id: str
    trace_dir: str
    epoch: float
    parent_span_id: Optional[str] = None

    def with_parent(self, parent_span_id: Optional[str]) -> "TraceContext":
        return TraceContext(
            trace_id=self.trace_id,
            trace_dir=self.trace_dir,
            epoch=self.epoch,
            parent_span_id=parent_span_id,
        )


class SpanHandle:
    """One open span; close it with :meth:`end` or a ``with`` block.

    Handles are context managers for the common lexically-scoped case;
    long-lived spans (a fleet task span that opens in ``_assign`` and
    closes in ``drain_results``) are stored on their owner and closed
    explicitly — FLC012 accepts both shapes, but a handle that is simply
    dropped is a leak the merge layer will report as *truncated*.

    A handle without a tracer (``tracer=None``) is the shared no-op the
    disabled :class:`NullTracer` hands out: every method returns
    immediately, so call sites never branch on enablement.
    """

    __slots__ = ("span_id", "name", "start_ts", "_tracer", "_closed")

    def __init__(
        self,
        tracer: Optional["Tracer"],
        span_id: Optional[str],
        name: str,
        start_ts: float,
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.start_ts = start_ts
        self._closed = False

    def end(self, **args: Any) -> None:
        """Close the span (idempotent: double-ends are dropped)."""
        if self._tracer is None or self._closed:
            return
        self._closed = True
        if self.span_id is not None:
            self._tracer._end_span(self.span_id, args)

    def event(self, name: str, **args: Any) -> None:
        """Emit an instant event parented under this span."""
        if self._tracer is None:
            return
        self._tracer.event(name, parent=self.span_id, **args)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is not None:
            self.end(error=exc_type.__name__)
        else:
            self.end()


#: The one disabled handle; its ``end`` guards on ``_tracer is None``,
#: so sharing a singleton is safe.
_NULL_SPAN = SpanHandle(None, None, "", 0.0)


class NullTracer:
    """Disabled tracer: the no-op fast path and the common interface.

    Instrumentation sites guard hot loops on :attr:`enabled` and may call
    every method below unconditionally on cold paths.
    """

    def __init__(self) -> None:
        self.enabled: bool = False
        self.proc: str = "off"

    # -- span entry points (no-ops when disabled) -----------------------
    def span(
        self, name: str, cat: str = "run", parent: Optional[str] = None, **args: Any
    ) -> SpanHandle:
        """Open a span; close via the returned handle (``with`` works)."""
        return _NULL_SPAN

    def event(
        self, name: str, cat: str = "run", parent: Optional[str] = None, **args: Any
    ) -> None:
        """Emit an instant (zero-duration) event."""

    def emit_complete(
        self,
        name: str,
        start_ts: float,
        duration: float,
        cat: str = "run",
        parent: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Emit a pre-measured complete span (begin and end in one record)."""

    def emit_phases(
        self, parent: Any, phases: Dict[str, float], cat: str = "phase"
    ) -> None:
        """Synthesize per-phase child spans from profiler totals."""

    # -- propagation / lifecycle ----------------------------------------
    def context(self, parent: Any = None) -> Optional[TraceContext]:
        """A :class:`TraceContext` for child processes (None if disabled)."""
        return None

    def close(self) -> None:
        """Flush and close the sink (idempotent)."""


class Tracer(NullTracer):
    """Enabled tracer writing one JSONL span file for this process."""

    def __init__(
        self,
        trace_dir: str,
        proc: str = "main",
        trace_id: Optional[str] = None,
        epoch: Optional[float] = None,
    ) -> None:
        super().__init__()
        if not proc or "/" in proc or ":" in proc:
            raise ConfigError(f"tracer proc must be a plain label, got {proc!r}")
        self.enabled = True
        self.proc = proc
        self.trace_dir = str(trace_dir)
        self.epoch = wall_now() if epoch is None else float(epoch)
        self.trace_id = trace_id if trace_id is not None else f"trace-{self.proc}"
        self._seq = 0
        self._fh: Optional[Any] = None
        self._lock = threading.Lock()

    @classmethod
    def from_context(cls, ctx: TraceContext, proc: str) -> "Tracer":
        """Join the trace described by ``ctx`` from a child process."""
        return cls(
            ctx.trace_dir, proc=proc, trace_id=ctx.trace_id, epoch=ctx.epoch
        )

    # -- sink -----------------------------------------------------------
    @property
    def path(self) -> Path:
        return Path(self.trace_dir) / f"spans-{self.proc}.jsonl"

    def _emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                Path(self.trace_dir).mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
                self._fh.write(
                    json.dumps(
                        {
                            "ph": "M",
                            "proc": self.proc,
                            "trace": self.trace_id,
                            "epoch": self.epoch,
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    + "\n"
                )
            self._fh.write(line + "\n")
            # flush per record: a SIGKILL costs at most one torn line
            self._fh.flush()

    def _next_id(self) -> str:
        with self._lock:
            self._seq += 1
            return f"{self.proc}:{self._seq}"

    def _ts(self) -> float:
        return round(since(self.epoch), 6)

    # -- span entry points ----------------------------------------------
    def span(
        self, name: str, cat: str = "run", parent: Optional[str] = None, **args: Any
    ) -> SpanHandle:
        span_id = self._next_id()
        ts = self._ts()
        self._emit(
            {
                "ph": "B",
                "ts": ts,
                "span": span_id,
                "parent": parent,
                "name": name,
                "cat": cat,
                "proc": self.proc,
                "args": args,
            }
        )
        return SpanHandle(self, span_id, name, ts)

    def _end_span(self, span_id: str, args: Dict[str, Any]) -> None:
        self._emit({"ph": "E", "ts": self._ts(), "span": span_id, "args": args})

    def event(
        self, name: str, cat: str = "run", parent: Optional[str] = None, **args: Any
    ) -> None:
        self._emit(
            {
                "ph": "i",
                "ts": self._ts(),
                "span": self._next_id(),
                "parent": parent,
                "name": name,
                "cat": cat,
                "proc": self.proc,
                "args": args,
            }
        )

    def emit_complete(
        self,
        name: str,
        start_ts: float,
        duration: float,
        cat: str = "run",
        parent: Optional[str] = None,
        **args: Any,
    ) -> None:
        self._emit(
            {
                "ph": "X",
                "ts": round(start_ts, 6),
                "dur": round(max(0.0, duration), 6),
                "span": self._next_id(),
                "parent": parent,
                "name": name,
                "cat": cat,
                "proc": self.proc,
                "args": args,
            }
        )

    def emit_phases(
        self, parent: Any, phases: Dict[str, float], cat: str = "phase"
    ) -> None:
        """Lay profiler phase totals out as child spans of ``parent``.

        The profiler only knows *totals* per subsystem, not when each
        tick phase ran, so the synthesized spans are placed back to back
        from the parent's start, shortest first.  Ascending order makes
        the largest phase the last finisher, which is exactly what the
        critical-path walk should pick when the parent's own wall time is
        dominated by that phase.
        """
        if not phases:
            return
        if not isinstance(parent, SpanHandle):
            return
        cursor = parent.start_ts
        for name, seconds in sorted(
            phases.items(), key=lambda kv: (kv[1], kv[0])
        ):
            if seconds <= 0.0:
                continue
            self.emit_complete(
                name,
                cursor,
                seconds,
                cat=cat,
                parent=parent.span_id,
                synthetic=True,
            )
            cursor += seconds

    # -- propagation / lifecycle ----------------------------------------
    def context(self, parent: Any = None) -> TraceContext:
        parent_id: Optional[str] = None
        if isinstance(parent, SpanHandle):
            parent_id = parent.span_id
        elif isinstance(parent, str):
            parent_id = parent
        return TraceContext(
            trace_id=self.trace_id,
            trace_dir=self.trace_dir,
            epoch=self.epoch,
            parent_span_id=parent_id,
        )

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # Wall-clock data must never reach a checkpoint or digest: pickling a
    # tracer yields a *disabled* empty shell (same contract as
    # TickProfiler.__getstate__), so any object that accidentally holds a
    # tracer still checkpoints byte-identically with tracing on or off.
    # __reduce__ reconstructs a plain NullTracer so the revived object has
    # no file handle, lock, or span counter at all; __getstate__ stays as
    # the documented empty-payload contract for anything that bypasses it.
    def __reduce__(self):
        return (NullTracer, ())

    def __getstate__(self) -> Dict[str, Any]:
        return {}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        NullTracer.__init__(self)


#: Shared disabled singleton; instrumentation sites default to this.
NULL_TRACER = NullTracer()

_current_tracer: NullTracer = NULL_TRACER


def current_tracer() -> NullTracer:
    """The tracer instrumentation sites attach to."""
    return _current_tracer


@contextmanager
def use_tracer(tracer: NullTracer) -> Iterator[NullTracer]:
    """Install ``tracer`` as current for the duration of a block."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer  # flocheck: disable=FLC009 -- process-local install mirroring telemetry.use: each process rebinds its own tracer and all output goes to its own span file
    try:
        yield tracer
    finally:
        _current_tracer = previous
