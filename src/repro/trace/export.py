"""Exporters: Chrome trace-event JSON (Perfetto) and ASCII reports.

The JSON exporter emits the classic `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
(``{"traceEvents": [...]}`` with complete ``"X"`` events, microsecond
timestamps, and per-process metadata) which both ``chrome://tracing``
and https://ui.perfetto.dev load directly — drag the file in, or use
*Open trace file*.

The ASCII exporters back ``repro trace report``: a phase/rollup summary
with the critical path, and a proportional per-process timeline for
terminals, so the common "where did the wall clock go" question never
needs a browser.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from .analysis import TraceAnalysis, analyze
from .merge import MergedTrace

__all__ = [
    "ascii_timeline",
    "chrome_trace",
    "render_report",
    "write_chrome_trace",
]

#: stable lane ids per proc label, supervisor first
def _proc_order(trace: MergedTrace) -> List[str]:
    procs = sorted({s.proc for s in trace.spans} | set(trace.procs))
    if "main" in procs:
        procs.remove("main")
        procs.insert(0, "main")
    return procs


def chrome_trace(trace: MergedTrace) -> Dict[str, Any]:
    """The merged timeline as a Chrome trace-event JSON object."""
    procs = _proc_order(trace)
    tids = {proc: index for index, proc in enumerate(procs)}
    events: List[Dict[str, Any]] = []
    for index, proc in enumerate(procs):
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tids[proc],
                "name": "thread_name",
                "args": {"name": proc},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tids[proc],
                "name": "thread_sort_index",
                "args": {"sort_index": index},
            }
        )
    for span in trace.spans:
        args: Dict[str, Any] = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent is not None:
            args["parent"] = span.parent
        if span.truncated:
            args["truncated"] = True
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tids.get(span.proc, 0),
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "name": span.name,
                "cat": span.cat,
                "args": args,
            }
        )
    for event in trace.events:
        events.append(
            {
                "ph": "i",
                "pid": 1,
                "tid": tids.get(event.proc, 0),
                "ts": round(event.ts * 1e6, 3),
                "name": event.name,
                "cat": event.cat,
                "s": "t",
                "args": dict(event.args),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": trace.trace_id,
            "torn_lines": trace.torn_lines,
            "truncated_spans": trace.truncated_spans,
        },
    }


def write_chrome_trace(trace: MergedTrace, path: str) -> Path:
    """Write the Perfetto-loadable JSON file; returns its path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(chrome_trace(trace), sort_keys=True, indent=1) + "\n",
        encoding="utf-8",
    )
    return out


def _bar(fraction: float, width: int) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


#: per-process row budget — a sharded run emits thousands of barrier
#: spans; the lane keeps the longest ones and sums the rest
MAX_LANE_ROWS = 12


def ascii_timeline(trace: MergedTrace, width: int = 72) -> str:
    """A proportional per-process lane view of the top-level spans."""
    if not trace.spans:
        return "(empty trace)\n"
    t0 = min(s.start for s in trace.spans)
    t1 = max(s.end for s in trace.spans)
    total = max(t1 - t0, 1e-9)
    ids = {s.span_id for s in trace.spans}
    lines: List[str] = [
        f"timeline  {total:.3f}s  ({len(trace.spans)} spans, "
        f"{len(_proc_order(trace))} procs)"
    ]
    for proc in _proc_order(trace):
        lines.append(f"[{proc}]")
        lane = [
            s
            for s in trace.spans
            if s.proc == proc
            and (s.parent is None or s.parent not in ids or s.cat == "phase")
        ]
        hidden = len(lane) - MAX_LANE_ROWS
        hidden_seconds = 0.0
        if hidden > 0:
            keep = sorted(
                lane, key=lambda s: (-s.duration, s.start, s.seq)
            )[:MAX_LANE_ROWS]
            hidden_seconds = sum(s.duration for s in lane) - sum(
                s.duration for s in keep
            )
            lane = sorted(keep, key=lambda s: (s.start, s.seq))
        for span in lane:
            lead = int((span.start - t0) / total * width)
            body = max(1, int(span.duration / total * width))
            body = min(body, width - min(lead, width - 1))
            bar = " " * min(lead, width - 1) + "=" * body
            flag = " !truncated" if span.truncated else ""
            lines.append(
                f"  {bar:<{width}} {span.name} "
                f"({span.duration:.3f}s){flag}"
            )
        if hidden > 0:
            lines.append(
                f"  ({hidden} shorter span(s) hidden, "
                f"{hidden_seconds:.3f}s total)"
            )
    return "\n".join(lines) + "\n"


def render_report(trace: MergedTrace, width: int = 72) -> str:
    """The full ``repro trace report`` text: analysis + timeline."""
    analysis: TraceAnalysis = analyze(trace)
    lines: List[str] = []
    lines.append(f"trace {analysis.trace_id or '(unnamed)'}")
    lines.append(f"wall clock      {analysis.wall_seconds:.3f}s")
    if analysis.torn_lines or analysis.truncated_spans:
        lines.append(
            f"salvage         {analysis.torn_lines} torn line(s), "
            f"{analysis.truncated_spans} truncated span(s)"
        )
    lines.append("")
    lines.append("phase attribution (self seconds)")
    total_attr = sum(analysis.phases.values()) or 1.0
    for phase, seconds in sorted(
        analysis.phases.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        lines.append(
            f"  {phase:<20} {seconds:>9.3f}s  "
            f"{_bar(seconds / total_attr, 24)}  {seconds / total_attr:6.1%}"
        )
    lines.append("")
    lines.append("rollups (cat/name, count, total, self)")
    for roll in analysis.rollups[:20]:
        trunc = f"  [{roll.truncated} truncated]" if roll.truncated else ""
        lines.append(
            f"  {roll.cat + '/' + roll.name:<34} x{roll.count:<4} "
            f"{roll.total_seconds:>9.3f}s {roll.self_seconds:>9.3f}s{trunc}"
        )
    if len(analysis.rollups) > 20:
        lines.append(f"  ... {len(analysis.rollups) - 20} more")
    lines.append("")
    lines.append("critical path (last finisher, root -> leaf)")
    for depth, span in enumerate(analysis.critical_path):
        lines.append(
            f"  {'  ' * depth}{span.name} [{span.proc}] "
            f"{span.duration:.3f}s"
        )
    if analysis.barrier_wait_by_proc:
        lines.append("")
        lines.append("barrier wait by proc (least wait = likely straggler)")
        for proc, seconds in sorted(
            analysis.barrier_wait_by_proc.items(), key=lambda kv: (kv[1], kv[0])
        ):
            mark = "  <- straggler" if proc == analysis.straggler else ""
            lines.append(f"  {proc:<10} {seconds:>9.3f}s{mark}")
    lines.append("")
    lines.append(ascii_timeline(trace, width=width))
    return "\n".join(lines)
