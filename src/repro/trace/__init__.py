"""Cross-process span tracing for the execution fabric.

Where :mod:`repro.telemetry` answers *what did the simulation decide*
(tick-keyed metrics and decision events, digest-safe by construction),
this package answers *where did the wall clock go*: spans covering the
supervisor, fleet pool workers, shard gangs (barrier publish / collect /
timeout epochs), SupervisedRunner phases (checkpoint save / load /
salvage, watchdog retries), chaos campaign jobs, and — synthesized from
:class:`~repro.telemetry.profiler.TickProfiler` totals — the per-tick
engine/fluid phases.

Layout::

    clock.py     the only wall-clock reads in the package (FLC001 exempt)
    spans.py     Tracer / NullTracer / SpanHandle / TraceContext,
                 per-process JSONL span sinks, current_tracer()/use_tracer()
    merge.py     deterministic canonical-order merge + torn-file salvage
    analysis.py  critical path, self/total rollups, phase attribution,
                 barrier-wait straggler report
    export.py    Chrome trace-event / Perfetto JSON + ASCII reports

The cardinal rule, shared with the tick profiler and enforced by
flocheck (FLC001 scope + FLC012 span hygiene): wall-clock data flows
*one way*, out to JSONL span files — never into run digests, checkpoint
pickles, or simulated quantities.  Run digests are byte-identical with
tracing on or off (regression-locked in ``tests/trace``).
"""

from __future__ import annotations

from .analysis import TraceAnalysis, analyze, critical_path
from .export import ascii_timeline, chrome_trace, render_report, write_chrome_trace
from .merge import MergedTrace, Span, merge_trace
from .spans import (
    NULL_TRACER,
    NullTracer,
    SpanHandle,
    TraceContext,
    Tracer,
    current_tracer,
    phase_delta,
    use_tracer,
)

__all__ = [
    "MergedTrace",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanHandle",
    "TraceAnalysis",
    "TraceContext",
    "Tracer",
    "analyze",
    "ascii_timeline",
    "chrome_trace",
    "critical_path",
    "current_tracer",
    "merge_trace",
    "phase_delta",
    "render_report",
    "use_tracer",
    "write_chrome_trace",
]
