"""FLoc: Dependable Link Access for Legitimate Traffic in Flooding Attacks.

A complete, from-scratch reproduction of Lee & Gligor's FLoc router
subsystem (ICDCS 2010 / CMU-CyLab-11-019) together with every substrate
its evaluation depends on:

* a discrete-time packet-level network simulation engine
  (:mod:`repro.net`),
* a Reno-style TCP substrate and the analytic flow model FLoc's equations
  derive from (:mod:`repro.tcp`),
* attack traffic generators — CBR, Shrew, covert — and the Section VI
  scenario builder (:mod:`repro.traffic`),
* FLoc itself: path identifiers, capabilities, per-path token buckets,
  MTD-based attack identification, preferential drops, the scalable
  drop-record filter, conformance tracking, and path aggregation
  (:mod:`repro.core`),
* the comparison baselines — RED, RED-PD, Pushback, per-flow fairness
  (:mod:`repro.baselines`),
* Internet-scale topology synthesis and a vectorised fluid simulator
  (:mod:`repro.inet`),
* deterministic fault injection — link flaps with rerouting, router
  restarts, state corruption, clock jitter, silent counter corruption —
  for robustness studies on either simulator (:mod:`repro.faults`),
* a runtime invariant sanitizer installable on both simulators
  (:mod:`repro.sanitize`),
* a crash-safe supervised experiment runner with checkpoint/resume,
  watchdog deadlines and bounded retries (:mod:`repro.runner`),
* a deterministic chaos-campaign engine — seed-sampled fault + adaptive
  adversary compositions judged against resilience SLOs, with
  delta-debugged, replayable reproducer artifacts (:mod:`repro.chaos`),
* a unified telemetry layer — metrics registry, tick-keyed decision
  tracing with per-drop provenance, and a per-subsystem tick profiler,
  observation-only by construction (:mod:`repro.telemetry`),
* measurement/reporting helpers (:mod:`repro.analysis`) and one runner
  per paper figure (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import build_tree_scenario, FLocPolicy, FLocConfig
>>> scenario = build_tree_scenario(scale_factor=0.05, attack_kind="cbr")
>>> scenario.attach_policy(FLocPolicy(FLocConfig()))
>>> monitor = scenario.add_target_monitor(start_seconds=2.0)
>>> scenario.run_seconds(6.0)
>>> monitor.total_serviced > 0
True
"""

from .errors import (
    CapabilityError,
    CheckpointError,
    ConfigError,
    DeadlineExceeded,
    Interrupted,
    InvariantViolation,
    ReproError,
    RunnerError,
    SimulationError,
    TopologyError,
)
from .units import DEFAULT_SCALE, INTERNET_SCALE, UnitScale
from .net import (
    Engine,
    FlowInfo,
    LinkMonitor,
    Packet,
    Topology,
    TrafficSource,
)
from .tcp import TcpSource
from .traffic import (
    CbrSource,
    CovertSource,
    ShrewSource,
    TreeScenario,
    build_tree_scenario,
)
from .core import FLocConfig, FLocPolicy
from .baselines import FairSharePolicy, PushbackPolicy, RedPdPolicy, RedPolicy
from .inet import FluidSimulator, build_internet_scenario
from .faults import (
    CounterCorruption,
    FaultSchedule,
    FluidCounterCorruption,
    FluidLinkDegrade,
    LinkFlap,
    clock_jitter,
    fluid_restart,
    router_restart,
    state_corruption,
)
from .sanitize import (
    EngineSanitizer,
    FluidSanitizer,
    SanitizerReport,
    install_sanitizer,
)
from .runner import (
    CheckpointStore,
    EngineRun,
    FluidRun,
    GracefulShutdown,
    RetryPolicy,
    SupervisedRunner,
    Watchdog,
    build_figure_job,
    run_checkpointed,
)
from .chaos import (
    AttackerSpec,
    CampaignSpec,
    ChaosOptions,
    FaultSpec,
    SloSpec,
    replay_artifact,
    run_campaign,
    run_chaos,
    sample_campaign,
    shrink_campaign,
)
from .telemetry import (
    DROP_CAUSES,
    NULL_TELEMETRY,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    current,
    use,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigError",
    "TopologyError",
    "SimulationError",
    "CapabilityError",
    "UnitScale",
    "DEFAULT_SCALE",
    "INTERNET_SCALE",
    "Engine",
    "FlowInfo",
    "LinkMonitor",
    "Packet",
    "Topology",
    "TrafficSource",
    "TcpSource",
    "CbrSource",
    "ShrewSource",
    "CovertSource",
    "TreeScenario",
    "build_tree_scenario",
    "FLocConfig",
    "FLocPolicy",
    "RedPolicy",
    "RedPdPolicy",
    "PushbackPolicy",
    "FairSharePolicy",
    "FluidSimulator",
    "build_internet_scenario",
    "FaultSchedule",
    "LinkFlap",
    "FluidLinkDegrade",
    "router_restart",
    "state_corruption",
    "clock_jitter",
    "fluid_restart",
    "CounterCorruption",
    "FluidCounterCorruption",
    "InvariantViolation",
    "RunnerError",
    "CheckpointError",
    "DeadlineExceeded",
    "Interrupted",
    "EngineSanitizer",
    "FluidSanitizer",
    "SanitizerReport",
    "install_sanitizer",
    "CheckpointStore",
    "SupervisedRunner",
    "RetryPolicy",
    "Watchdog",
    "GracefulShutdown",
    "EngineRun",
    "FluidRun",
    "run_checkpointed",
    "build_figure_job",
    "AttackerSpec",
    "CampaignSpec",
    "ChaosOptions",
    "FaultSpec",
    "SloSpec",
    "replay_artifact",
    "run_campaign",
    "run_chaos",
    "sample_campaign",
    "shrink_campaign",
    "DROP_CAUSES",
    "NULL_TELEMETRY",
    "MetricsRegistry",
    "NullTelemetry",
    "Telemetry",
    "current",
    "use",
    "__version__",
]
