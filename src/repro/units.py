"""Unit conversions between simulation ticks/packets and physical units.

The simulation engine measures time in integer *ticks* and traffic volume in
*packets* (one packet is one full-sized 1500-byte TCP segment unless stated
otherwise, following the paper's Section III-D argument that full-sized
packets dominate congestion behaviour).  The paper's own Internet-scale
simulator uses the same convention: "individual packets advance a single
router-hop in a time tick" with a 5 ms tick (Section VII-B).

:class:`UnitScale` converts between the tick/packet world and
seconds/megabits-per-second so that scenario definitions can be written with
the paper's numbers (e.g. a 500 Mbps target link, 2.0 Mbps CBR bots).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigError

#: Size of a full-sized data packet, in bytes (Ethernet MTU payload).
FULL_PACKET_BYTES = 1500

#: Size of a TCP SYN/ACK control packet, in bytes.
CONTROL_PACKET_BYTES = 40

#: Bits per byte, spelled out for readability of conversions.
BITS_PER_BYTE = 8


@dataclass(frozen=True)
class UnitScale:
    """Conversion factors for one simulation.

    Parameters
    ----------
    tick_seconds:
        Duration of one simulation tick, in seconds.  The paper's functional
        evaluation operates at RTT scales of ~100 ms, so the default 10 ms
        tick resolves window dynamics; the Internet-scale simulator uses
        5 ms (Section VII-B).
    packet_bytes:
        Bytes represented by one simulated packet.
    """

    tick_seconds: float = 0.010
    packet_bytes: int = FULL_PACKET_BYTES

    def __post_init__(self) -> None:
        if self.tick_seconds <= 0:
            raise ConfigError(f"tick_seconds must be positive, got {self.tick_seconds}")
        if self.packet_bytes <= 0:
            raise ConfigError(f"packet_bytes must be positive, got {self.packet_bytes}")

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def seconds_to_ticks(self, seconds: float) -> int:
        """Convert a duration in seconds to a whole number of ticks (>= 1)."""
        return max(1, round(seconds / self.tick_seconds))

    def ticks_to_seconds(self, ticks: float) -> float:
        """Convert a tick count (possibly fractional) to seconds."""
        return ticks * self.tick_seconds

    # ------------------------------------------------------------------
    # bandwidth
    # ------------------------------------------------------------------
    def mbps_to_pkts_per_tick(self, mbps: float) -> float:
        """Convert a bandwidth in Mbps to packets per tick."""
        bytes_per_second = mbps * 1e6 / BITS_PER_BYTE
        packets_per_second = bytes_per_second / self.packet_bytes
        return packets_per_second * self.tick_seconds

    def pkts_per_tick_to_mbps(self, rate: float) -> float:
        """Convert a rate in packets per tick to Mbps."""
        packets_per_second = rate / self.tick_seconds
        return packets_per_second * self.packet_bytes * BITS_PER_BYTE / 1e6

    def packets_to_megabytes(self, packets: float) -> float:
        """Convert a packet count to megabytes of payload."""
        return packets * self.packet_bytes / 1e6

    def megabytes_to_packets(self, megabytes: float) -> int:
        """Convert a payload size in megabytes to a whole packet count."""
        return max(1, round(megabytes * 1e6 / self.packet_bytes))


#: Default scale used by the functional (Section VI style) scenarios.
DEFAULT_SCALE = UnitScale()

#: Scale matching the paper's Internet-scale simulator (5 ms ticks).
INTERNET_SCALE = UnitScale(tick_seconds=0.005)


#: Identifier suffix -> dimension class, longest suffix wins.  This is the
#: single source of truth for the repo's units-in-the-name convention: the
#: FLC004 static rule (:mod:`repro.check.rules.units`) checks arithmetic
#: against it, and the telemetry registry (:mod:`repro.telemetry`)
#: validates metric names against it at runtime.
SUFFIX_DIMENSIONS = (
    ("pkts_per_tick", "rate[pkt/tick]"),
    ("per_tick", "rate[pkt/tick]"),
    ("pkts_per_second", "rate[pkt/s]"),
    ("mbps", "rate[Mbit/s]"),
    ("bps", "rate[bit/s]"),
    ("megabytes", "volume[MB]"),
    ("bytes", "volume[B]"),
    ("bits", "volume[bit]"),
    ("packets", "volume[pkt]"),
    ("pkts", "volume[pkt]"),
    ("seconds", "time[s]"),
    ("secs", "time[s]"),
    ("ticks", "time[tick]"),
)


def dimension_of(name: "str | None") -> "str | None":
    """Dimension class of an identifier, from its unit suffix."""
    if name is None:
        return None
    lowered = name.lower()
    for suffix, dim in SUFFIX_DIMENSIONS:
        if lowered == suffix or lowered.endswith("_" + suffix):
            return dim
    return None
