"""Per-path-identifier token buckets (paper Section IV-A).

One bucket guards the bandwidth of one path identifier (or aggregation
group).  Its parameters come from the analytic TCP model
(:mod:`repro.tcp.model`):

* token generation period ``T_Si`` (Eq. IV.1) — at the start of each
  period the bucket is refilled to its size and **unused tokens of the
  previous period are discarded** ("N_Si tokens are generated at the start
  of each period, and the unused tokens of the previous period are
  removed"), so bursts are tolerated *within* a period but credit is never
  banked across periods,
* base size ``N_Si`` (Eq. IV.2) used in flooding mode,
* increased size ``N'_Si`` (Eq. IV.3) used in congested mode, which
  absorbs the stochastic burstiness of i.i.d. legitimate flows.

This design doubles as AQM for the path's TCP flows: by making exactly the
model's packet drops, uniformly one per ``T_Si``, it desynchronises the
flows and provides early congestion notification (Section III-B).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..tcp import model


class PathTokenBucket:
    """Token bucket for one path identifier / aggregation group.

    The bucket operates in ticks.  ``use_increased`` selects between the
    congested-mode size ``N'`` and the flooding-mode size ``N``.
    """

    __slots__ = (
        "period",
        "base_size",
        "increased_size",
        "use_increased",
        "tokens",
        "_next_refill",
        "bandwidth",
        "rtt",
        "n_flows",
        "drops_this_period",
        "last_period_drops",
        "requests_total",
        "denials_total",
    )

    def __init__(
        self,
        bandwidth: float,
        rtt: float,
        n_flows: float,
        now: int = 0,
        use_increased: bool = True,
    ) -> None:
        self.use_increased = use_increased
        self.drops_this_period = 0
        self.last_period_drops = 0
        self.requests_total = 0
        self.denials_total = 0
        self._next_refill = now
        self.tokens = 0.0
        self.set_params(bandwidth, rtt, n_flows)
        self._refill(now)

    # ------------------------------------------------------------------
    # parameterisation
    # ------------------------------------------------------------------
    def set_params(self, bandwidth: float, rtt: float, n_flows: float) -> None:
        """(Re)derive ``T``, ``N`` and ``N'`` from the model equations.

        ``bandwidth`` is the guaranteed rate ``C_Si`` in packets/tick,
        ``rtt`` the (corrected) average path RTT in ticks, ``n_flows`` the
        active flow count.  The period is clamped to at least one tick; the
        sizes are clamped so a refill always grants at least one
        period's worth of line rate.
        """
        if bandwidth <= 0:
            raise ConfigError(f"bandwidth must be positive, got {bandwidth}")
        rtt = max(1.0, rtt)
        n_flows = max(1.0, n_flows)
        self.bandwidth = bandwidth
        self.rtt = rtt
        self.n_flows = n_flows
        period = model.token_period(bandwidth, rtt, n_flows)
        self.period = max(1, round(period))
        # sizes are scaled to the *actual* integer period so the average
        # admitted rate stays C_Si even after clamping.
        base = bandwidth * self.period
        # N'/N = 1 + 2/(3 sqrt n), the Eq. (IV.3) increase factor
        ratio = model.increased_bucket_size(
            bandwidth, rtt, n_flows
        ) / model.bucket_size(bandwidth, rtt, n_flows)
        self.base_size = max(1.0, base)
        self.increased_size = max(1.0, base * ratio)

    @property
    def size(self) -> float:
        """Current operational bucket size (mode dependent)."""
        return self.increased_size if self.use_increased else self.base_size

    @property
    def reference_mtd(self) -> float:
        """The reference MTD ``n_i * T_Si`` of a legitimate flow (ticks)."""
        return self.n_flows * self.period

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------
    def _refill(self, now: int) -> None:
        self.tokens = self.size
        self.last_period_drops = self.drops_this_period
        self.drops_this_period = 0
        self._next_refill = now + self.period

    def on_tick(self, now: int) -> None:
        """Advance time; refill (and discard leftovers) at period edges."""
        if now >= self._next_refill:
            self._refill(now)

    def request(self, amount: float = 1.0) -> bool:
        """Consume ``amount`` tokens if available; return success."""
        self.requests_total += 1
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        self.denials_total += 1
        return False

    def record_drop(self) -> None:
        """Count a packet drop charged to this path in the current period."""
        self.drops_this_period += 1
