"""Domain-path identifiers and the congested router's traffic tree.

A *path identifier* (paper Section III-A) is the sequence of AS numbers a
packet traverses from its origin domain to the router's domain, stamped by
the BGP speaker of the origin domain.  We store it origin-first:

    ``pid = (AS_origin, ..., AS_router)``

Two paths that share their last ``k`` elements (their *suffix*) merge ``k``
hops before the congested router; the set of active path identifiers
therefore forms a tree rooted at the router (the paper's traffic tree
``T_R0``), and "aggregation starts from nearby domains (i.e., domains with
longest postfix-matching path identifiers)" (Section IV-C.1).

:class:`PathTree` materialises that tree: a node is identified by a suffix
tuple, its children extend the suffix by one AS towards the origins, and
its leaves are full path identifiers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigError

#: A domain-path identifier, origin AS first.
PathId = Tuple[int, ...]


def origin_as(pid: PathId) -> int:
    """The AS that originated flows carrying this path identifier."""
    if not pid:
        raise ConfigError("empty path identifier")
    return pid[0]


def common_suffix(a: PathId, b: PathId) -> PathId:
    """Longest common suffix of two path identifiers.

    The suffix is the portion nearest the congested router, so its length
    measures how close to the router the two paths merge.
    """
    n = 0
    for x, y in zip(reversed(a), reversed(b)):
        if x != y:
            break
        n += 1
    return a[len(a) - n :] if n else ()


class PathTreeNode:
    """One node of the traffic tree (identified by a router-side suffix)."""

    __slots__ = ("suffix", "children", "leaf_pids")

    def __init__(self, suffix: PathId) -> None:
        self.suffix = suffix
        self.children: Dict[int, "PathTreeNode"] = {}
        self.leaf_pids: List[PathId] = []

    @property
    def depth(self) -> int:
        """Distance (in AS hops) from the congested router."""
        return len(self.suffix)

    def descend_leaves(self) -> List[PathId]:
        """All full path identifiers below (or at) this node."""
        out = list(self.leaf_pids)
        for child in self.children.values():
            out.extend(child.descend_leaves())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PathTreeNode(suffix={self.suffix}, leaves={len(self.leaf_pids)})"


class PathTree:
    """Traffic tree over a set of path identifiers, rooted at the router.

    >>> tree = PathTree([(1, 5, 9), (2, 5, 9), (3, 6, 9)])
    >>> sorted(len(n.leaf_pids) for n in tree.nodes())
    [0, 0, 0, 1, 1, 1]
    """

    def __init__(self, pids: Iterable[PathId]) -> None:
        self.root = PathTreeNode(())
        self._nodes: Dict[PathId, PathTreeNode] = {(): self.root}
        for pid in pids:
            self.insert(pid)

    def insert(self, pid: PathId) -> None:
        """Add one full path identifier to the tree."""
        if not pid:
            raise ConfigError("empty path identifier")
        node = self.root
        # walk from the router side towards the origin
        for i in range(len(pid) - 1, -1, -1):
            suffix = pid[i:]
            asn = pid[i]
            child = node.children.get(asn)
            if child is None:
                child = PathTreeNode(suffix)
                node.children[asn] = child
                self._nodes[suffix] = child
            node = child
        node.leaf_pids.append(pid)

    def node(self, suffix: PathId) -> Optional[PathTreeNode]:
        """The node for a suffix, or ``None``."""
        return self._nodes.get(suffix)

    def nodes(self) -> Iterable[PathTreeNode]:
        """All nodes except the root."""
        return (n for s, n in self._nodes.items() if s != ())

    def internal_nodes(self) -> List[PathTreeNode]:
        """Nodes with children (candidate aggregation points)."""
        return [n for n in self.nodes() if n.children]

    def leaves_under(self, suffix: PathId) -> List[PathId]:
        """Full path identifiers whose suffix matches ``suffix``."""
        node = self._nodes.get(suffix)
        return node.descend_leaves() if node is not None else []
