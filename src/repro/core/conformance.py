"""Path-conformance tracking (paper Section IV-C, Eq. IV.6).

The *conformance* of a path identifier is the fraction of its flows that
are legitimate, smoothed over time:

    ``E(t_k) = beta * (1 - n_attack / n) + (1 - beta) * E(t_{k-1})``

with ``beta = 0.2`` in the paper's simulations.  Paths whose conformance
falls below the threshold ``E_th`` form the attack tree and are candidates
for attack-path aggregation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..errors import ConfigError
from .pathid import PathId


class ConformanceTracker:
    """Per-path EWMA of the legitimate-flow fraction."""

    def __init__(self, beta: float = 0.2, initial: float = 1.0) -> None:
        if not 0.0 < beta < 1.0:
            raise ConfigError(f"beta must be in (0, 1), got {beta}")
        if not 0.0 <= initial <= 1.0:
            raise ConfigError(f"initial must be in [0, 1], got {initial}")
        self.beta = beta
        self.initial = initial
        self._values: Dict[PathId, float] = {}

    def update(self, pid: PathId, n_flows: int, n_attack: int) -> float:
        """Fold one measurement interval into the path's conformance."""
        if n_flows < 0 or n_attack < 0 or n_attack > max(n_flows, 0):
            raise ConfigError(
                f"invalid flow counts n={n_flows}, attack={n_attack}"
            )
        instant = 1.0 if n_flows == 0 else 1.0 - n_attack / n_flows
        previous = self._values.get(pid, self.initial)
        value = self.beta * instant + (1.0 - self.beta) * previous
        self._values[pid] = value
        return value

    def value(self, pid: PathId) -> float:
        """Current conformance of ``pid`` (paths start fully conformant)."""
        return self._values.get(pid, self.initial)

    def values(self) -> Dict[PathId, float]:
        """Snapshot of all tracked conformance values."""
        return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def partition(
        self, pids: Iterable[PathId], threshold: float
    ) -> Tuple[list, list]:
        """Split paths into (legitimate, attack) by the threshold ``E_th``."""
        legit, attack = [], []
        for pid in pids:
            if self.value(pid) < threshold:
                attack.append(pid)
            else:
                legit.append(pid)
        return legit, attack

    def forget(self, pid: PathId) -> None:
        """Drop state for a path that disappeared."""
        self._values.pop(pid, None)

    def known_value(self, pid: PathId) -> "float | None":
        """Tracked conformance of ``pid``, or ``None`` if never updated —
        unlike :meth:`value`, which hides the distinction behind the
        fully-conformant default."""
        return self._values.get(pid)

    def seed(self, pid: PathId, value: float) -> None:
        """Install a prior estimate for an untracked path (sketch-tier
        revival after an eviction); existing values are never clobbered."""
        if pid not in self._values:
            self._values[pid] = min(1.0, max(0.0, value))

    @staticmethod
    def classify_value(value: float, threshold: float) -> str:
        """Label a conformance value against ``E_th``: attack or legit."""
        return "attack" if value < threshold else "legit"

    def classify(self, pid: PathId, threshold: float) -> str:
        """Label ``pid``'s current conformance against ``E_th``."""
        return self.classify_value(self.value(pid), threshold)
