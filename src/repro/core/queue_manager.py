"""Router buffer-queue management (paper Section V-A).

FLoc runs its FIFO queue in three modes derived from the current queue
length ``Q_curr``:

* **uncongested** (``Q_curr <= Q_min``): every packet is serviced
  regardless of token availability; short bursts are absorbed.  To stop
  attack paths from quietly consuming buffers in this mode, a path whose
  request rate ``lambda`` exceeds its allocation ``C`` is pushed into
  congested mode early, as soon as
  ``Q_curr > Q_min * min(1, C / lambda)``.
* **congested** (``Q_min < Q_curr <= Q_max``): token buckets are active,
  but because FLoc deliberately *under*-estimates RTTs (and hence bucket
  parameters), a packet that finds no token is not dropped outright;
  instead a threshold ``Q_th`` is drawn uniformly from
  ``[Q_min, Q_max]`` and the packet is dropped only if
  ``Q_curr > Q_th`` — a random early drop that needs no RED-style
  calibration (paper footnote 8).
* **flooding** (``Q_curr > Q_max``): the strict token policy applies with
  the *base* bucket size ``N_Si`` (the increased size's burst allowance is
  withdrawn).

``Q_min`` is configured (20 % of the buffer in the paper's simulations);
``Q_max = Q_min + sum_i sqrt(n_i) * W_i`` — the buffer headroom needed so
partially-synchronised flows do not under-utilise the link.
"""

from __future__ import annotations

import enum
import math
import random
from typing import Dict, Optional

from ..errors import ConfigError
from .pathid import PathId


class QueueMode(enum.Enum):
    """Operating mode of the FLoc buffer queue."""

    UNCONGESTED = "uncongested"
    CONGESTED = "congested"
    FLOODING = "flooding"


class QueueManager:
    """Tracks ``Q_min`` / ``Q_max`` and answers mode/drop queries."""

    def __init__(
        self,
        buffer_size: int,
        q_min_fraction: float = 0.2,
        rng: Optional[random.Random] = None,
    ) -> None:
        if buffer_size < 2:
            raise ConfigError(f"buffer_size must be >= 2, got {buffer_size}")
        self.buffer_size = buffer_size
        self.q_min = max(1, int(buffer_size * q_min_fraction))
        self.q_max = max(self.q_min + 1, buffer_size // 2)
        self._rng = rng or random.Random(0xF10C)

    def update_q_max(self, per_path_windows: Dict[PathId, tuple]) -> None:
        """Recompute ``Q_max = Q_min + sum_i sqrt(n_i) W_i``.

        ``per_path_windows`` maps path id -> ``(n_flows, peak_window)``.
        The result is clamped into ``(Q_min, buffer_size]``.
        """
        headroom = 0.0
        for n_flows, window in per_path_windows.values():
            if n_flows > 0 and window > 0:
                headroom += math.sqrt(n_flows) * window
        q_max = self.q_min + int(headroom)
        self.q_max = min(self.buffer_size, max(self.q_min + 1, q_max))

    def mode(self, q_curr: int) -> QueueMode:
        """Mode for the current queue occupancy."""
        if q_curr <= self.q_min:
            return QueueMode.UNCONGESTED
        if q_curr <= self.q_max:
            return QueueMode.CONGESTED
        return QueueMode.FLOODING

    def early_congestion(
        self, q_curr: int, bandwidth: float, request_rate: float
    ) -> bool:
        """Early token-bucket activation test for over-subscribing paths.

        True when ``Q_curr > Q_min * min(1, C_Si / lambda_Si)`` — attack
        paths hit this before legitimate ones (Section V-A, uncongested
        mode).
        """
        if request_rate <= 0:
            return False
        threshold = self.q_min * min(1.0, bandwidth / request_rate)
        return q_curr > threshold

    def random_drop(self, q_curr: int) -> bool:
        """Congested-mode neutral drop: ``Q_th ~ U[Q_min, Q_max]``."""
        q_th = self._rng.uniform(self.q_min, self.q_max)
        return q_curr > q_th
