"""Configuration for the FLoc router subsystem.

Defaults follow the paper's simulation settings where given (beta = 0.2,
Q_min = 20 % of the buffer, RTT estimates halved, n_max = 2 in the covert
experiment) and sensible engineering choices elsewhere.  All times are in
engine ticks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigError

#: Per-path state backends: exact dicts (historical behaviour) or the
#: bounded sketch tier of :mod:`repro.sketch`.
STATE_BACKENDS = ("exact", "sketch")


@dataclass
class FLocConfig:
    """Tunable parameters of :class:`~repro.core.router.FLocPolicy`.

    Attributes
    ----------
    s_max:
        ``|S|_max`` — the maximum number of bandwidth-guaranteed path
        identifiers; ``None`` disables attack-path aggregation
        (Section IV-C.1, footnote 5: configurable per router).
    n_max:
        Concurrent-capability (fanout) limit per source (Section IV-B.3).
    beta:
        Smoothing factor of the path-conformance EWMA, Eq. (IV.6).
    conformance_threshold:
        ``E_th`` — paths below it belong to the attack tree.
    q_min_fraction:
        ``Q_min`` as a fraction of the buffer size (paper: 20 %).
    rtt_correction:
        Multiplier applied to the measured average path RTT to avoid
        over-estimation (paper Section V-A: divide by 2).
    measure_interval:
        Ticks between state refreshes (flow counts, bucket parameters,
        attack identification, conformance update).
    aggregation_interval:
        Ticks between aggregation passes (both kinds).
    flow_active_window:
        A flow (accounting unit) counts as active if it sent a packet within
        this many ticks.
    mtd_window_periods:
        ``k`` in Eq. (IV.4): MTD is measured over ``k`` token periods
        (at least ``n_i``; this sets the floor).
    attack_mtd_fraction:
        A flow is identified as an attack flow when its measured MTD falls
        below this fraction of the reference MTD ``n_i * T_Si``.
    block_mtd_fraction:
        Flows whose MTD drops below this fraction of the reference are
        blocked outright for ``block_ticks`` (Section V-B.3: "we block
        those high-rate flows for a period of time").
    block_ticks:
        Duration of an outright block.
    legit_agg_bandwidth_cap:
        Legitimate paths are not aggregated if any member's bandwidth
        allocation would grow by more than this fraction (paper: 50 %),
        the covert-path protection of Section IV-C.2.
    preferential_drop:
        Master switch for the Eq. (IV.5) policy (ablation knob).
    use_drop_filter:
        Use the approximate Bloom-filter drop store of Section V-B instead
        of exact per-flow tracking (scalable mode).
    capability_checks:
        Verify capabilities on data packets (drop spoofed traffic).
    min_guaranteed_share:
        When ``s_max`` is ``None``, aggregation can still be triggered so
        every active path keeps at least this bandwidth share; ``None``
        disables that trigger.
    """

    s_max: Optional[int] = None
    n_max: int = 2
    beta: float = 0.2
    conformance_threshold: float = 0.5
    q_min_fraction: float = 0.2
    rtt_correction: float = 0.5
    measure_interval: int = 50
    aggregation_interval: int = 200
    flow_active_window: int = 300
    mtd_window_periods: int = 8
    attack_mtd_fraction: float = 0.5
    block_mtd_fraction: float = 1.0 / 64.0
    block_ticks: int = 500
    legit_agg_bandwidth_cap: float = 0.5
    preferential_drop: bool = True
    legitimate_aggregation: bool = True
    use_drop_filter: bool = False
    #: Estimate per-path flow counts from observed drop rates and RTTs via
    #: the Section V-B.1 inversion (``n = 4 C RTT / (3 W)`` with ``W``
    #: recovered from ``delta = 8 C / (3 W (W + 2))``) instead of exact
    #: accounting — the fully scalable configuration.
    estimate_flow_counts: bool = False
    capability_checks: bool = True
    min_guaranteed_share: Optional[float] = None
    #: Warm-up duration after a router restart (see
    #: :meth:`~repro.core.router.FLocPolicy.restart`): until the
    #: ``lambda_Si``/RTT estimates re-converge the policy falls back to
    #: neutral congested-mode admission instead of trusting cold token
    #: buckets, so legitimate flows are not penalised by state loss.
    restart_warmup_ticks: int = 150
    #: Upper bound on tracked per-path states; under memory pressure the
    #: least-recently-active path is evicted (its state regenerates from
    #: live traffic, like after a partial restart).  ``None`` = unbounded.
    max_tracked_paths: Optional[int] = None
    #: Per-path state backend.  ``"exact"`` (default) keeps one exact
    #: ``_PathState`` per path — byte-identical to the historical
    #: behaviour.  ``"sketch"`` hard-bounds memory: at most
    #: ``sketch_hot_paths`` exact states, with evicted paths folded into
    #: the fixed-size :class:`repro.sketch.BoundedPathState` tier and
    #: seeded back (approximately) when their traffic returns.
    state_backend: str = "exact"
    #: Hot-tier budget in sketch mode: the number of exact per-path
    #: states kept before LRU eviction folds the victim into the sketch.
    sketch_hot_paths: int = 1024
    #: Columns per sketch row; together with ``sketch_depth`` this fixes
    #: the sketch tier's memory at configuration time (five float64
    #: arrays of ``depth x width`` plus an ``8 x width``-bit Bloom).
    sketch_width: int = 4096
    #: Independent hash rows per sketch (blake2b-derived).
    sketch_depth: int = 4
    #: Per-domain bandwidth weights (origin AS -> weight).  The paper's
    #: footnote 1: "for different domains having different numbers of
    #: sources, proportional rather than equal bandwidth allocation can be
    #: supported ... provided that the number of domains with a large
    #: number of legitimate sources are known (e.g., via ISP service
    #: agreement)".  Unlisted domains weigh 1.0; aggregated *attack*
    #: groups always hold a single share (the aggregation penalty).
    domain_weights: Optional[Dict[int, float]] = None
    secret: bytes = b"floc-router-secret"

    def __post_init__(self) -> None:
        if not 0.0 < self.beta < 1.0:
            raise ConfigError(f"beta must be in (0, 1), got {self.beta}")
        if not 0.0 <= self.conformance_threshold <= 1.0:
            raise ConfigError(
                f"conformance_threshold must be in [0, 1], got "
                f"{self.conformance_threshold}"
            )
        if not 0.0 < self.q_min_fraction < 1.0:
            raise ConfigError(
                f"q_min_fraction must be in (0, 1), got {self.q_min_fraction}"
            )
        if self.rtt_correction <= 0:
            raise ConfigError(
                f"rtt_correction must be positive, got {self.rtt_correction}"
            )
        if self.s_max is not None and self.s_max < 1:
            raise ConfigError(f"s_max must be >= 1, got {self.s_max}")
        if self.measure_interval < 1 or self.aggregation_interval < 1:
            raise ConfigError("intervals must be >= 1 tick")
        if self.domain_weights is not None:
            for asn, weight in self.domain_weights.items():
                if weight <= 0:
                    raise ConfigError(
                        f"domain weight for AS {asn} must be positive, "
                        f"got {weight}"
                    )
        if self.restart_warmup_ticks < 0:
            raise ConfigError(
                f"restart_warmup_ticks must be >= 0, got "
                f"{self.restart_warmup_ticks}"
            )
        if self.max_tracked_paths is not None and self.max_tracked_paths < 1:
            raise ConfigError(
                f"max_tracked_paths must be >= 1, got {self.max_tracked_paths}"
            )
        if self.state_backend not in STATE_BACKENDS:
            raise ConfigError(
                f"state_backend must be one of {STATE_BACKENDS}, got "
                f"{self.state_backend!r}"
            )
        if self.sketch_hot_paths < 1:
            raise ConfigError(
                f"sketch_hot_paths must be >= 1, got {self.sketch_hot_paths}"
            )
        if self.sketch_width < 8:
            raise ConfigError(
                f"sketch_width must be >= 8, got {self.sketch_width}"
            )
        if not 1 <= self.sketch_depth <= 16:
            raise ConfigError(
                f"sketch_depth must be in [1, 16], got {self.sketch_depth}"
            )
        if not 0.0 < self.attack_mtd_fraction <= 1.0:
            raise ConfigError(
                f"attack_mtd_fraction must be in (0, 1], got "
                f"{self.attack_mtd_fraction}"
            )
