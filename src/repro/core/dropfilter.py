"""Scalable drop-record store (paper Section V-B).

High-speed routers cannot keep exact per-flow state for millions of flows,
but they do not need to: only *dropped* packets carry signal, and during
congestion the drop rate is orders of magnitude below the service rate
(paper Fig. 2).  FLoc therefore records drops in a counting-Bloom-filter
of ``m`` arrays with ``2^bits`` entries each.  Every entry holds three
fields (Section V-B.2):

* ``t_s`` — the record's *sequence number*: congestion epochs (one epoch =
  ``(W/2) * RTT``) elapsed since the record was created,
* ``t_l`` — last-update time (tick granularity),
* ``d``  — the number of *extra* packet drops.

On every recorded drop the counters are increased, and they decay by one
per elapsed epoch — a legitimate flow (one drop per epoch) hovers near
zero, while a flow sending ``alpha`` times its fair share accumulates
``d ~ (alpha - 1)`` per epoch, so ``d / t_s`` approximates the flow's
excess send rate.  For high-rate flows ``t_s`` is advanced whenever
``d > 2^k_bits * t_s``, extending the measurable range, and flows with
``d >= 2^k_bits * t_s`` are blocked outright (Section V-B.3).

The preferential drop ratio (Eq. V.1) is ``P_pd = d / (t_s + d - 1)``.

Two scalability refinements are implemented faithfully:

* **probabilistic filter update** (Section V-B.4): a flow estimated at
  ``r`` times its fair bandwidth updates memory on each drop only with
  probability ``1/r``, adding ``r`` — same expectation, ``r`` times fewer
  memory writes;
* **probabilistic array selection** (Section V-B.5): flows of highly
  populated attack domains update only ``k`` of the ``m`` arrays (with
  probability ``k/m`` and value ``m/k``), keeping the false-positive ratio
  of *legitimate* flows below a target even with millions of attack flows.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Hashable, Optional, Tuple

import numpy as np


def _indices(key: Hashable, m: int, size: int) -> Tuple[int, ...]:
    digest = hashlib.blake2b(repr(key).encode(), digest_size=4 * m).digest()
    return tuple(
        int.from_bytes(digest[4 * i : 4 * i + 4], "big") % size for i in range(m)
    )


class DropRecordFilter:
    """Counting-Bloom-filter of drop records.

    Parameters
    ----------
    m:
        Number of hash arrays (paper example: 4).
    bits:
        log2 of each array's length (paper example: 24; tests use less).
    k_bits:
        Bits for the per-epoch drop count — the rate cap is ``2^k_bits``
        drops per epoch before ``t_s`` advances (paper example: 2).
    probabilistic_update:
        Enable the Section V-B.4 memory-write reduction.
    """

    def __init__(
        self,
        m: int = 4,
        bits: int = 20,
        k_bits: int = 2,
        probabilistic_update: bool = False,
        rng: Optional[random.Random] = None,
    ) -> None:
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if bits < 1 or bits > 30:
            raise ValueError(f"bits must be in [1, 30], got {bits}")
        self.m = m
        self.bits = bits
        self.size = 1 << bits
        self.k_bits = k_bits
        self.rate_cap = float(1 << k_bits)
        self.probabilistic_update = probabilistic_update
        self._rng = rng or random.Random(0xF10C)
        self._d = np.zeros((m, self.size), dtype=np.float64)
        self._ts = np.ones((m, self.size), dtype=np.float64)
        self._tl = np.full((m, self.size), -1, dtype=np.int64)
        self.memory_updates = 0  # actual writes (for the ablation bench)
        self.drops_seen = 0

    # ------------------------------------------------------------------
    # core update
    # ------------------------------------------------------------------
    def _decayed(
        self, arr: int, idx: int, tick: int, epoch_ticks: float
    ) -> Tuple[float, float, bool]:
        """Effective (d, t_s) of one entry after epoch decay, read-only."""
        tl = self._tl[arr, idx]
        d = self._d[arr, idx]
        ts = self._ts[arr, idx]
        if tl < 0:
            return 0.0, 1.0, False
        elapsed = max(0.0, (tick - tl) / max(epoch_ticks, 1e-9))
        return max(0.0, d - elapsed), ts + elapsed, True

    def record_drop(
        self,
        key: Hashable,
        tick: int,
        epoch_ticks: float,
        attack_domain: bool = False,
        k_arrays: Optional[int] = None,
    ) -> None:
        """Record one drop of accounting unit ``key`` at ``tick``.

        ``epoch_ticks`` is the flow's congestion-epoch length
        ``(W/2) * RTT`` in ticks.  Attack-domain flows update only
        ``k_arrays`` of the ``m`` arrays (Section V-B.5).
        """
        self.drops_seen += 1
        increment = 1.0
        if self.probabilistic_update:
            excess = self.excess_ratio(key, tick, epoch_ticks)
            rate = max(1.0, excess)
            if self._rng.random() >= 1.0 / rate:
                return
            increment = rate
        arrays = range(self.m)
        if attack_domain and k_arrays is not None and k_arrays < self.m:
            if self._rng.random() >= k_arrays / self.m:
                return
            increment *= self.m / k_arrays
            arrays = self._rng.sample(range(self.m), k_arrays)
        idxs = _indices(key, self.m, self.size)
        for arr in arrays:
            idx = idxs[arr]
            d, ts, existed = self._decayed(arr, idx, tick, epoch_ticks)
            if not existed:
                d, ts = 0.0, 1.0
            d += increment
            if d > self.rate_cap * ts:
                ts += 1.0
            self._d[arr, idx] = d
            self._ts[arr, idx] = ts
            self._tl[arr, idx] = tick
            self.memory_updates += 1

    # ------------------------------------------------------------------
    # queries (conservative: min across arrays)
    # ------------------------------------------------------------------
    def _min_entry(
        self, key: Hashable, tick: int, epoch_ticks: float
    ) -> Tuple[float, float]:
        idxs = _indices(key, self.m, self.size)
        best_d, best_ts = math.inf, 1.0
        for arr in range(self.m):
            d, ts, existed = self._decayed(arr, idxs[arr], tick, epoch_ticks)
            if not existed:
                return 0.0, 1.0
            if d < best_d:
                best_d, best_ts = d, ts
        return best_d, best_ts

    def excess_drops(self, key: Hashable, tick: int, epoch_ticks: float) -> float:
        """Estimated extra drops ``d`` of ``key`` (0 for clean flows)."""
        d, _ = self._min_entry(key, tick, epoch_ticks)
        return d

    def excess_ratio(self, key: Hashable, tick: int, epoch_ticks: float) -> float:
        """``d / t_s``: estimated multiple of the fair send rate above 1."""
        d, ts = self._min_entry(key, tick, epoch_ticks)
        return d / max(ts, 1.0)

    def preferential_drop_ratio(
        self, key: Hashable, tick: int, epoch_ticks: float
    ) -> float:
        """Eq. (V.1): ``P_pd = d / (t_s + d - 1)``, clipped to [0, 1]."""
        d, ts = self._min_entry(key, tick, epoch_ticks)
        if d <= 0.0:
            return 0.0
        denom = ts + d - 1.0
        if denom <= 0.0:
            return 1.0
        return min(1.0, d / denom)

    def should_block(self, key: Hashable, tick: int, epoch_ticks: float) -> bool:
        """True when ``d >= 2^k_bits * t_s`` (Section V-B.3 blocking)."""
        d, ts = self._min_entry(key, tick, epoch_ticks)
        return d >= self.rate_cap * max(ts, 1.0)

    # ------------------------------------------------------------------
    # dimensioning helpers (Section V-B.5)
    # ------------------------------------------------------------------
    @staticmethod
    def false_positive_ratio(n_flows: float, m: int, bits: int) -> float:
        """``(1 - e^{-n / 2^bits})^m`` — all flows update all arrays."""
        return (1.0 - math.exp(-n_flows / float(1 << bits))) ** m

    @staticmethod
    def false_positive_with_selection(
        n_total: float, n_attack: float, k: int, m: int, bits: int
    ) -> float:
        """Legitimate-flow false-positive ratio when attack-domain flows
        update only ``k`` of ``m`` arrays: effective load is
        ``n - n_A + n_A * k / m`` per array."""
        effective = n_total - n_attack + n_attack * k / m
        return (1.0 - math.exp(-effective / float(1 << bits))) ** m

    @staticmethod
    def select_k(
        n_total: float, n_attack: float, n_threshold: float, m: int
    ) -> int:
        """Largest ``k <= m`` keeping the effective load at or below
        ``n_threshold`` (Section V-B.5); returns 1 if even ``k=1`` cannot."""
        for k in range(m, 0, -1):
            if n_total - n_attack + n_attack * k / m <= n_threshold:
                return k
        return 1

    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the filter's payload fields."""
        # 3 fields; the paper budgets 2 bytes per field per entry.
        return self.m * self.size * 3 * 2
