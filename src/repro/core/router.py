"""The FLoc router subsystem as a link admission policy.

:class:`FLocPolicy` plugs into the simulation engine at the flooded link
and implements the full paper pipeline:

1. **capabilities** — SYNs passing the router get a two-part capability
   stamped; data packets are verified (spoofed traffic is dropped) and
   mapped to their *accounting unit* (source x fanout-bucket x path), the
   covert-attack countermeasure of Section IV-B.3;
2. **per-path state** — active-flow counts, request rate ``lambda_Si``
   (EWMA), and path RTTs measured from the SYN -> first-data interval and
   deliberately scaled down (Section V-A);
3. **token buckets** — one per path-identifier group, parameterised from
   the analytic model (Eqs. IV.1-IV.3) at every measurement interval;
4. **queue modes** — uncongested / congested / flooding admission exactly
   as Section V-A specifies, including early bucket activation for
   over-subscribing paths and the random-threshold neutral drop;
5. **MTD-based identification** — drops feed per-unit MTD estimates
   (exact tracker or the scalable Bloom filter); attack flows are
   preferentially dropped per Eq. (IV.5), extreme flows blocked
   (Section V-B.3); attack paths are flagged per Section IV-B.1;
6. **conformance and aggregation** — Eq. (IV.6) conformance drives
   attack-path aggregation (Algorithm 1) and legitimate-path aggregation
   (Eq. IV.8) at every aggregation interval.
"""

from __future__ import annotations

import copy
import random
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

from ..errors import SimulationError
from ..net.packet import DATA, SYN, Packet
from ..net.policy import LinkPolicy
from ..sketch import BoundedPathState
from ..tcp import model
from .aggregation import AggregationPlan, build_plan, plan_moves
from .capability import CapabilityIssuer
from .config import FLocConfig
from .conformance import ConformanceTracker
from .dropfilter import DropRecordFilter
from .mtd import INFINITE_MTD, FlowDropTracker, MtdClassifier
from .pathid import PathId
from .queue_manager import QueueManager, QueueMode
from .tokenbucket import PathTokenBucket

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..net.engine import Engine
    from ..net.topology import Link


class _PathState:
    """Mutable per-origin-path bookkeeping."""

    __slots__ = (
        "pid",
        "flows",  # accounting unit -> last-seen tick
        "attack_flows",  # identified attack units
        "attack_streak",  # unit -> consecutive intervals identified
        "syn_ticks",  # flow_id -> SYN pass tick (for RTT)
        "rtt_ewma",
        "arrivals",  # data arrivals in the current measurement interval
        "lambda_rate",  # EWMA request rate, packets/tick
        "last_arrival",
    )

    def __init__(self, pid: PathId, initial_rtt: float) -> None:
        self.pid = pid
        self.flows: Dict[Hashable, int] = {}
        self.attack_flows: set = set()
        self.attack_streak: Dict[Hashable, int] = {}
        self.syn_ticks: Dict[int, int] = {}
        self.rtt_ewma = initial_rtt
        self.arrivals = 0
        self.lambda_rate = 0.0
        self.last_arrival = 0

    @property
    def n_flows(self) -> int:
        return max(1, len(self.flows))


class _GroupState:
    """Per-group (post-aggregation path identifier) bandwidth control."""

    __slots__ = (
        "key",
        "members",
        "share",
        "bucket",
        "bandwidth",
        "measured_ref_mtd",
        "interval_drops",
        "drop_rate_ewma",
    )

    def __init__(
        self,
        key: Tuple,
        members: List[PathId],
        share: float,
        bucket: PathTokenBucket,
        bandwidth: float,
    ) -> None:
        self.key = key
        self.members = members
        self.share = share
        self.bucket = bucket
        self.bandwidth = bandwidth
        # reference MTD measured from the group's actual aggregate drop
        # rate: n_g * window / drops.  Under strict token admission the
        # bucket makes one drop per period, so this equals the paper's
        # n_i * T_Si; in congested mode (random-threshold drops, fewer of
        # them) it scales the reference so the MTD *ratio* — which is what
        # identifies attack flows, since drops are proportional to send
        # rates — stays meaningful.
        self.measured_ref_mtd: Optional[float] = None
        self.interval_drops = 0
        self.drop_rate_ewma = 0.0


class FLocPolicy(LinkPolicy):
    """FLoc admission control for one congested link."""

    def __init__(self, config: Optional[FLocConfig] = None) -> None:
        self.cfg = config or FLocConfig()
        self.issuer = CapabilityIssuer(self.cfg.secret, n_max=self.cfg.n_max)
        self.classifier = MtdClassifier(
            attack_mtd_fraction=self.cfg.attack_mtd_fraction,
            block_mtd_fraction=self.cfg.block_mtd_fraction,
        )
        self.conformance = ConformanceTracker(beta=self.cfg.beta)
        self.paths: Dict[PathId, _PathState] = {}
        self.groups: Dict[Tuple, _GroupState] = {}
        self.plan = AggregationPlan()
        self._blocked: Dict[Hashable, int] = {}
        self._initial_rtt = 12.0
        # LRU index over tracked paths, maintained only when a path limit
        # is active.  ``self.paths`` itself stays a plain insertion-order
        # dict: group member lists are built by iterating it, and their
        # order feeds float sums, so recency-reordering the main dict
        # would silently change exact-mode results.
        self._lru: "OrderedDict[PathId, None]" = OrderedDict()
        # sketch-backend overflow tier (None in exact mode)
        self.sketch: Optional[BoundedPathState] = None
        if self.cfg.state_backend == "sketch":
            self.sketch = BoundedPathState(
                self.cfg.sketch_width, self.cfg.sketch_depth
            )
        # experiment bookkeeping (like drop_stats, survives restarts)
        self.eviction_stats: Dict[str, int] = {"memory-pressure": 0, "restart": 0}
        self.tracked_paths_peak = 0
        # drop-cause counters, for experiments and tests
        self.drop_stats = {
            "spoofed": 0,
            "blocked": 0,
            "preferential": 0,
            "token": 0,
            "random": 0,
            "overflow": 0,
        }
        self._pending_drop_cause: Optional[str] = None
        # fault-tolerance state: warm-up window after a restart (ticks are
        # absolute engine ticks; None = normal operation) and the clock
        # offset installed by a jitter fault
        self._warmup_until: Optional[int] = None
        self._clock_offset = 0

    # ------------------------------------------------------------------
    # engine lifecycle
    # ------------------------------------------------------------------
    def attach(self, link: "Link", engine: "Engine") -> None:
        super().attach(link, engine)
        buffer = link.buffer if link.buffer is not None else 10_000
        self.capacity = link.capacity if link.capacity is not None else float("inf")
        self.qm = QueueManager(
            buffer, self.cfg.q_min_fraction, rng=engine.spawn_rng("floc-qm")
        )
        self._rng = engine.spawn_rng("floc-pref")
        if self.cfg.use_drop_filter:
            self.tracker = None
            self.drop_filter = DropRecordFilter(
                k_bits=4,
                probabilistic_update=True,
                rng=engine.spawn_rng("floc-filter"),
            )
            self._filter_k_arrays = self.drop_filter.m
        else:
            self.tracker = FlowDropTracker(horizon=40 * self.cfg.measure_interval)
            self.drop_filter = None
        self._initial_rtt = max(4.0, engine.scale.seconds_to_ticks(0.1))

    def on_tick(self, tick: int) -> None:
        if self._warmup_until is not None and tick >= self._warmup_until:
            self._warmup_until = None
        tel = self.engine.telemetry
        if tel.enabled:
            tel.registry.histogram("floc_queue_depth_packets").observe(
                float(len(self.link.queue))
            )
        for group in self.groups.values():
            group.bucket.on_tick(tick)
        # measurement phase may be shifted by an injected clock jitter; the
        # periodic machinery keeps running (state refreshes re-converge the
        # estimates that warm-up mode is waiting on)
        phase = tick + self._clock_offset
        if phase and phase % self.cfg.measure_interval == 0:
            self._refresh(tick)
        if phase and phase % self.cfg.aggregation_interval == 0:
            self._aggregate(tick)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, pkt: Packet, tick: int) -> bool:
        if pkt.kind == SYN:
            return self._admit_syn(pkt, tick)
        if pkt.kind != DATA:
            return True
        return self._admit_data(pkt, tick)

    def _admit_syn(self, pkt: Packet, tick: int) -> bool:
        pid = pkt.path_id
        state = self._path_state(pid, tick)
        pkt.capability = self.issuer.issue(pkt.src_addr, pkt.dst_addr, pid)
        state.syn_ticks[pkt.flow_id] = tick
        return True

    def _admit_data(self, pkt: Packet, tick: int) -> bool:
        cfg = self.cfg
        pid = pkt.path_id
        state = self._path_state(pid, tick)

        if cfg.capability_checks and not self.issuer.verify(
            pkt.capability, pkt.src_addr, pkt.dst_addr, pid
        ):
            self._pending_drop_cause = "spoofed"
            return False

        key = self.issuer.account_key(pkt.src_addr, pkt.dst_addr, pid)
        state.arrivals += 1
        state.last_arrival = tick
        if key not in state.flows:
            state.flows[key] = tick
        else:
            state.flows[key] = tick
        syn_tick = state.syn_ticks.pop(pkt.flow_id, None)
        if syn_tick is not None:
            sample = max(1.0, float(tick - syn_tick))
            state.rtt_ewma += 0.25 * (sample - state.rtt_ewma)

        unblock = self._blocked.get(key)
        if unblock is not None:
            if tick < unblock:
                self._pending_drop_cause = "blocked"
                return False
            del self._blocked[key]

        if self._warmup_until is not None:
            # post-restart warm-up: the token buckets and MTD records were
            # lost, so their decisions would be garbage.  Fall back to the
            # neutral congested-mode admission (random queue threshold,
            # footnote 8) — it needs no per-path history — while the state
            # bookkeeping above re-converges lambda_Si and the RTTs.
            q_curr = len(self.link.queue)
            if self.qm.mode(q_curr) is QueueMode.UNCONGESTED:
                return True
            if self.qm.random_drop(q_curr):
                self._pending_drop_cause = "random"
                return False
            return True

        group = self._group_state(pid, tick)
        q_curr = len(self.link.queue)
        mode = self.qm.mode(q_curr)
        if mode is QueueMode.UNCONGESTED:
            if not self.qm.early_congestion(
                q_curr, group.bandwidth, state.lambda_rate
            ):
                return True
            mode = QueueMode.CONGESTED

        # Eq. (IV.5): identified attack flows are serviced with probability
        # min(1, MTD(f) / (n_i * T_Si)) before competing for tokens.  Flows
        # that stay identified across measurement intervals — i.e. do not
        # respond to the drops — are penalised increasingly aggressively
        # (Section IV-B: "more aggressively penalizes the flows whose MTDs
        # keep decreasing") via an escalation exponent on the ratio.
        if cfg.preferential_drop and key in state.attack_flows:
            if self.tracker is not None:
                mtd_value = self._mtd(key, tick, group)
                p_service = self.classifier.service_probability(
                    mtd_value, self._reference_mtd(group)
                )
            else:
                # scalable mode: Eq. (V.1) preferential drop ratio
                p_service = 1.0 - self.drop_filter.preferential_drop_ratio(
                    key, tick, self._reference_mtd(group)
                )
            streak = state.attack_streak.get(key, 1)
            if streak > 1:
                p_service = p_service ** min(3.0, 1.0 + 0.5 * (streak - 1))
            if self._rng.random() > p_service:
                self._pending_drop_cause = "preferential"
                return False

        bucket = group.bucket
        tel = self.engine.telemetry
        if mode is QueueMode.CONGESTED:
            bucket.use_increased = True
            if bucket.request():
                if tel.enabled:
                    tel.registry.counter("token_grants_count").inc()
                return True
            if self.qm.random_drop(q_curr):
                self._pending_drop_cause = "random"
                return False
            return True
        # flooding mode: strict tokens at the base bucket size
        bucket.use_increased = False
        if bucket.request():
            if tel.enabled:
                tel.registry.counter("token_grants_count").inc()
            return True
        self._pending_drop_cause = "token"
        return False

    def pending_drop_cause(self) -> Optional[str]:
        """Telemetry peek: the cause :meth:`on_drop` is about to consume."""
        return self._pending_drop_cause

    def on_drop(self, pkt: Packet, tick: int) -> None:
        cause = self._pending_drop_cause or "overflow"
        self._pending_drop_cause = None
        self.drop_stats[cause] += 1
        if pkt.kind != DATA:
            return
        pid = pkt.path_id
        state = self.paths.get(pid)
        if state is None:
            return
        key = self.issuer.account_key(pkt.src_addr, pkt.dst_addr, pid)
        group = self._group_state(pid, tick)
        group.bucket.record_drop()
        group.interval_drops += 1
        if self.tracker is not None:
            self.tracker.record_drop(key, tick)
        else:
            # the filter decays one drop per "epoch"; the measured fair
            # reference MTD is exactly the legitimate one-drop interval
            self.drop_filter.record_drop(
                key,
                tick,
                self._reference_mtd(group),
                attack_domain=self.conformance.value(pid)
                < self.cfg.conformance_threshold,
                k_arrays=self._filter_k_arrays,
            )

    # ------------------------------------------------------------------
    # periodic state refresh
    # ------------------------------------------------------------------
    def _refresh(self, tick: int) -> None:
        cfg = self.cfg
        interval = cfg.measure_interval
        dead_paths = []
        for pid, state in self.paths.items():
            # request-rate EWMA
            inst = state.arrivals / interval
            state.lambda_rate = 0.5 * inst + 0.5 * state.lambda_rate
            state.arrivals = 0
            # expire idle accounting units
            horizon = tick - cfg.flow_active_window
            stale = [k for k, seen in state.flows.items() if seen < horizon]
            for k in stale:
                del state.flows[k]
                state.attack_flows.discard(k)
            if not state.flows and state.last_arrival < horizon:
                dead_paths.append(pid)
        for pid in dead_paths:
            del self.paths[pid]
            self.conformance.forget(pid)
            self._lru.pop(pid, None)

        # expire elapsed blocks eagerly: entries whose unblock tick has
        # passed admit identically either way, but units that never send
        # again (churned-away identifiers) must not pin memory forever
        expired_blocks = [k for k, t in self._blocked.items() if tick >= t]
        for k in expired_blocks:
            del self._blocked[k]

        self._rebuild_groups(tick)

        # measure per-group reference MTDs from aggregate drop rates.  The
        # reference is the expected drop interval of a flow sending at
        # exactly its fair share C_g/n_g: drops are proportional to send
        # rates, so that flow receives a (C_g/n_g)/lambda_g share of the
        # group's drops, giving
        #   ref = (lambda_g / C_g) * n_g * window / drops_g.
        # Under strict token admission (drops_g = excess = lambda - C) this
        # reduces to the paper's n_i * T_Si; under the congested-mode
        # random-threshold drops it rescales so the MTD *ratio* still
        # measures a flow's multiple of fair share.
        for group in self.groups.values():
            group_lambda = sum(
                self.paths[m].lambda_rate
                for m in group.members
                if m in self.paths
            )
            inst_rate = group.interval_drops / interval
            group.interval_drops = 0
            group.drop_rate_ewma = 0.5 * inst_rate + 0.5 * group.drop_rate_ewma
            if group.drop_rate_ewma > 1e-6:
                n = self._group_flows(group)
                oversub = max(1.0, group_lambda / max(group.bandwidth, 1e-9))
                group.measured_ref_mtd = oversub * n / group.drop_rate_ewma
            else:
                group.measured_ref_mtd = None

        # attack-flow identification + conformance update, per path
        tel = self.engine.telemetry
        for pid, state in self.paths.items():
            group = self._group_state(pid, tick)
            ref = self._reference_mtd(group)
            window = self._mtd_window(group)
            attack = set()
            for key in state.flows:
                if self.tracker is not None:
                    mtd_value = self.tracker.mtd(key, tick, window)
                    if self.sketch is not None:
                        mtd_value = self._sketch_clamped_mtd(
                            mtd_value, key, window
                        )
                    blocked = self.classifier.should_block(mtd_value, ref)
                    is_attack = self.classifier.is_attack_flow(mtd_value, ref)
                else:
                    # scalable mode (Section V-B): an extra drop per
                    # reference interval marks an attack flow
                    excess = self.drop_filter.excess_ratio(key, tick, ref)
                    is_attack = excess > 1.0
                    blocked = self.drop_filter.should_block(key, tick, ref)
                if blocked:
                    if tel.enabled and key not in self._blocked:
                        tel.registry.counter("mtd_blocks_count").inc()
                        if tel.trace_enabled:
                            tel.emit_event(
                                tick, "mtd_block", "mtd",
                                path_id=pid, unit=repr(key),
                            )
                    self._blocked[key] = tick + cfg.block_ticks
                    attack.add(key)
                elif is_attack:
                    attack.add(key)
            streaks = state.attack_streak
            for key in attack:
                streaks[key] = streaks.get(key, 0) + 1
            for key in list(streaks):
                if key not in attack:
                    del streaks[key]  # responded to drops: escalation resets
            # debounce: one suspicious interval is not identification — an
            # adaptive source backs off within an RTT, well inside one
            # measurement interval, so only persistence marks an attacker.
            # (This is Eq. IV.4's k-period averaging expressed as state.)
            old_attack = state.attack_flows
            state.attack_flows = {
                key for key in attack if streaks[key] >= 2
            }
            if tel.enabled and state.attack_flows != old_attack:
                identified = state.attack_flows - old_attack
                cleared = old_attack - state.attack_flows
                tel.registry.counter("mtd_transitions_count").inc(
                    float(len(identified) + len(cleared))
                )
                if tel.trace_enabled:
                    for key in sorted(identified, key=repr):
                        tel.emit_event(
                            tick, "mtd_identify", "mtd",
                            path_id=pid, unit=repr(key),
                        )
                    for key in sorted(cleared, key=repr):
                        tel.emit_event(
                            tick, "mtd_clear", "mtd",
                            path_id=pid, unit=repr(key),
                        )
            prev_conf = self.conformance.value(pid)
            new_conf = self.conformance.update(
                pid, len(state.flows), len(state.attack_flows)
            )
            if tel.enabled:
                threshold = cfg.conformance_threshold
                prev_class = ConformanceTracker.classify_value(
                    prev_conf, threshold
                )
                new_class = ConformanceTracker.classify_value(
                    new_conf, threshold
                )
                if prev_class != new_class:
                    tel.registry.counter("conformance_flips_count").inc()
                    if tel.trace_enabled:
                        tel.emit_event(
                            tick, "conformance_flip", "conformance",
                            path_id=pid, state=new_class,
                            value_ratio=new_conf,
                        )

        # scalable mode: recompute the array-selection degree k so the
        # legitimate-flow false-positive ratio stays within budget even
        # with huge attack-flow populations (Section V-B.5); with modest
        # flow counts this resolves to k = m (no selection needed).
        if self.drop_filter is not None:
            n_total = sum(len(s.flows) for s in self.paths.values())
            n_attack = sum(
                len(s.flows)
                for pid, s in self.paths.items()
                if self.conformance.value(pid) < cfg.conformance_threshold
            )
            self._filter_k_arrays = DropRecordFilter.select_k(
                max(1, n_total),
                n_attack,
                n_threshold=self.drop_filter.size / 8,
                m=self.drop_filter.m,
            )

        # Q_max tracks sum_i sqrt(n_i) * W_i
        windows = {}
        for pid, state in self.paths.items():
            group = self._group_state(pid, tick)
            n = state.n_flows
            share = group.bandwidth * (n / max(1, self._group_flows(group)))
            w = model.peak_window(max(share, 1e-6), group.bucket.rtt, n)
            windows[pid] = (n, w)
        self.qm.update_q_max(windows)

        if self.tracker is not None:
            self.tracker.forget_stale(tick)

        if self.sketch is not None:
            # exponential forgetting of folded drop history: half-life of
            # one measurement interval keeps revived MTD clamps honest
            self.sketch.decay_drops(0.5)

        if tel.enabled:
            reg = tel.registry
            reg.gauge("floc_paths_count").set(float(len(self.paths)))
            reg.gauge("floc_groups_count").set(float(len(self.groups)))
            reg.gauge("floc_blocked_units_count").set(float(len(self._blocked)))
            if self.sketch is not None:
                stats = self.sketch.stats()
                reg.gauge("sketch_memory_bytes").set(stats["memory_bytes"])
                reg.gauge("sketch_folds_count").set(stats["folds"])
                reg.gauge("sketch_revivals_count").set(stats["revivals"])
                reg.gauge("sketch_collisions_count").set(stats["collisions"])
                reg.gauge("sketch_fold_error_pkts_per_tick").set(
                    stats["fold_abs_error_total"]
                )

    def _aggregate(self, tick: int) -> None:
        cfg = self.cfg
        pids = list(self.paths.keys())
        if not pids:
            return
        s_max = cfg.s_max
        if s_max is None and cfg.min_guaranteed_share:
            s_max = max(1, int(1.0 / cfg.min_guaranteed_share))
        legit, attack = self.conformance.partition(
            pids, cfg.conformance_threshold
        )
        flow_counts = {pid: float(len(s.flows)) for pid, s in self.paths.items()}
        old_plan = self.plan
        self.plan = build_plan(
            legit,
            attack,
            self.conformance.values(),
            flow_counts,
            s_max,
            bandwidth_increase_cap=cfg.legit_agg_bandwidth_cap,
            legitimate_aggregation=cfg.legitimate_aggregation,
        )
        tel = self.engine.telemetry
        if tel.enabled:
            moves = plan_moves(old_plan, self.plan, pids)
            if moves:
                tel.registry.counter("aggregation_moves_count").inc(
                    float(len(moves))
                )
                if tel.trace_enabled:
                    for moved_pid, old_key, new_key, kind in moves:
                        tel.emit_event(
                            tick, f"aggregation_{kind}", "aggregation",
                            path_id=moved_pid, old_group=old_key,
                            new_group=new_key,
                        )
        if self.sketch is not None:
            # remember every live fill before the rebuild recreates the
            # buckets: an aggregation pass must not refill the attackers
            for key, group in self.groups.items():
                self.sketch.fold_bucket(
                    key, group.bucket.tokens / max(group.bucket.size, 1e-9)
                )
        self.groups.clear()
        self._rebuild_groups(tick)

    def _rebuild_groups(self, tick: int) -> None:
        """Recompute group membership, shares, and bucket parameters."""
        # group membership from the current plan (new paths default to
        # singleton groups)
        members_of: Dict[Tuple, List[PathId]] = {}
        for pid in self.paths:
            key = self.plan.group(pid)
            members_of.setdefault(key, []).append(pid)
        weights = self.cfg.domain_weights
        total_shares = 0.0
        shares: Dict[Tuple, float] = {}
        for key, members in members_of.items():
            if weights and not (
                isinstance(key[0], str) and key[0] == "AGG-A"
            ):
                # ISP-agreement proportional allocation (footnote 1):
                # non-attack groups weigh the sum of their member
                # domains' weights
                share = sum(weights.get(pid[0], 1.0) for pid in members)
            else:
                share = self.plan.shares.get(key, 1.0)
            shares[key] = share
            total_shares += share
        if total_shares <= 0:
            return
        for key, members in members_of.items():
            bandwidth = self.capacity * shares[key] / total_shares
            n_flows = max(1, sum(len(self.paths[p].flows) for p in members))
            rtt = sum(self.paths[p].rtt_ewma for p in members) / len(members)
            rtt *= self.cfg.rtt_correction
            rtt = max(1.0, rtt)
            if self.cfg.estimate_flow_counts:
                previous = self.groups.get(key)
                conformant = all(
                    self.conformance.value(p) >= self.cfg.conformance_threshold
                    for p in members
                )
                if (
                    previous is not None
                    and previous.drop_rate_ewma > 1e-6
                    and conformant
                ):
                    # Section V-B.1: recover the flow count from the
                    # observable aggregate drop rate and path RTT alone.
                    # Valid only for conformant aggregates — an attack
                    # aggregate's drop rate far exceeds the TCP model's,
                    # which is precisely how attack paths are identified,
                    # so those keep their accounting-unit counts.
                    estimate = model.flows_from_drop_rate(
                        max(bandwidth, 1e-6), rtt, previous.drop_rate_ewma
                    )
                    n_flows = max(1, round(estimate))
            group = self.groups.get(key)
            if group is None or group.members != members:
                if group is not None and self.sketch is not None:
                    self.sketch.fold_bucket(
                        key,
                        group.bucket.tokens / max(group.bucket.size, 1e-9),
                    )
                bucket = PathTokenBucket(bandwidth, rtt, n_flows, now=tick)
                self._seed_bucket_fill(key, bucket)
                group = _GroupState(key, members, shares[key], bucket, bandwidth)
                self.groups[key] = group
            else:
                group.share = shares[key]
                group.bandwidth = bandwidth
                group.bucket.set_params(bandwidth, rtt, n_flows)
        # retire groups with no members
        live = set(members_of)
        for key in list(self.groups):
            if key not in live:
                if self.sketch is not None:
                    group = self.groups[key]
                    self.sketch.fold_bucket(
                        key,
                        group.bucket.tokens / max(group.bucket.size, 1e-9),
                    )
                del self.groups[key]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _path_limit(self) -> Optional[int]:
        """Hot-tier size cap: the sketch backend's budget, or the
        explicit ``max_tracked_paths`` bound (``None`` = unbounded)."""
        if self.sketch is not None:
            return self.cfg.sketch_hot_paths
        return self.cfg.max_tracked_paths

    def _path_state(self, pid: PathId, tick: int = 0) -> _PathState:
        state = self.paths.get(pid)
        limit = self._path_limit()
        if state is None:
            if limit is not None and len(self.paths) >= limit:
                self._evict_path(tick)
            state = _PathState(pid, self._initial_rtt)
            if self.sketch is not None:
                seeded = self.sketch.seed_path(pid)
                if seeded is not None:
                    # sketch-tier revival: a previously evicted path
                    # resumes from its (approximate) earned history
                    # instead of cold defaults
                    lam, rtt, conf = seeded
                    state.lambda_rate = lam
                    if rtt > 0.0:
                        state.rtt_ewma = rtt
                    if conf is not None:
                        self.conformance.seed(pid, conf)
            self.paths[pid] = state
            if limit is not None:
                self._lru[pid] = None
            if len(self.paths) > self.tracked_paths_peak:
                self.tracked_paths_peak = len(self.paths)
        elif limit is not None:
            # pop + reinsert = move_to_end without a KeyError hazard
            self._lru.pop(pid, None)
            self._lru[pid] = None
        return state

    def _evict_path(self, tick: int) -> None:
        """Memory pressure: drop the least-recently-touched path, O(1).

        In exact mode the evicted path is not punished — if its traffic
        continues, its state regenerates from scratch exactly as after a
        partial restart (flows re-register, RTT re-estimates from the
        next SYN).  In sketch mode its decision-relevant scalars are
        folded into the bounded tier first and seeded back on revival.
        Either way *all* collateral per-path state is released: MTD drop
        records, blocks, and group membership must not outlive the path
        (the Section V-B drop filter is hash-indexed and has no per-path
        entries to release).
        """
        if self._lru:
            victim, _ = self._lru.popitem(last=False)
        else:
            victim = min(self.paths, key=lambda p: self.paths[p].last_arrival)
        state = self.paths.pop(victim)
        self._release_path(victim, state, tick, cause="memory-pressure")

    def _release_path(
        self, pid: PathId, state: _PathState, tick: int, cause: str
    ) -> None:
        """Fold (sketch mode) and free every trace of an evicted path."""
        if self.sketch is not None:
            self.sketch.fold_path(
                pid,
                state.lambda_rate,
                state.rtt_ewma,
                self.conformance.known_value(pid),
            )
        self.conformance.forget(pid)
        for key in state.flows:
            if self.tracker is not None:
                if self.sketch is not None:
                    drops = self.tracker.drop_count(key)
                    if drops:
                        self.sketch.fold_unit_drops(key, float(drops))
                self.tracker.forget(key)
            self._blocked.pop(key, None)
        group_key = self.plan.group(pid)
        group = self.groups.get(group_key)
        if group is not None and pid in group.members:
            group.members.remove(pid)
            if not group.members:
                if self.sketch is not None:
                    self.sketch.fold_bucket(
                        group_key,
                        group.bucket.tokens / max(group.bucket.size, 1e-9),
                    )
                del self.groups[group_key]
        self.eviction_stats[cause] = self.eviction_stats.get(cause, 0) + 1
        tel = self.engine.telemetry
        if tel.enabled:
            tel.registry.labeled("path_evictions_by_cause_count").inc(cause)
            if tel.trace_enabled:
                tel.emit_event(
                    tick, "path_evict", "policy",
                    path_id=pid, cause=cause,
                    backend=self.cfg.state_backend,
                )

    def _group_state(self, pid: PathId, tick: int) -> _GroupState:
        key = self.plan.group(pid)
        group = self.groups.get(key)
        if group is None:
            state = self._path_state(pid, tick)
            n_paths = max(1, len(self.paths))
            bandwidth = self.capacity / n_paths
            rtt = max(1.0, state.rtt_ewma * self.cfg.rtt_correction)
            bucket = PathTokenBucket(bandwidth, rtt, state.n_flows, now=tick)
            self._seed_bucket_fill(key, bucket)
            group = _GroupState(key, [pid], 1.0, bucket, bandwidth)
            self.groups[key] = group
        return group

    def _seed_bucket_fill(self, key: Tuple, bucket: PathTokenBucket) -> None:
        """Sketch mode: a re-created group's bucket resumes from its
        remembered fill fraction instead of a free full refill — churning
        identifiers must not mint fresh token capacity."""
        if self.sketch is None:
            return
        fill = self.sketch.seed_bucket(key)
        if fill is not None:
            bucket.tokens = min(bucket.tokens, fill * bucket.size)

    def _group_flows(self, group: _GroupState) -> int:
        return max(
            1,
            sum(
                len(self.paths[p].flows) for p in group.members if p in self.paths
            ),
        )

    def _reference_mtd(self, group: _GroupState) -> float:
        """Reference MTD: measured when drop records exist, else n*T."""
        if group.measured_ref_mtd is not None:
            return group.measured_ref_mtd
        return group.bucket.reference_mtd

    def _mtd_window(self, group: _GroupState) -> int:
        k = max(self._group_flows(group), self.cfg.mtd_window_periods)
        return max(1, int(k * group.bucket.period))

    def _mtd(
        self,
        key: Hashable,
        tick: int,
        group: _GroupState,
        window: Optional[int] = None,
    ) -> float:
        """Exact-mode MTD (Eq. IV.4); the scalable mode uses the drop
        filter's Eq. (V.1) machinery directly instead."""
        if window is None:
            window = self._mtd_window(group)
        if self.tracker is None:
            ref = self._reference_mtd(group)
            excess = self.drop_filter.excess_ratio(key, tick, ref)
            if excess <= 0:
                return INFINITE_MTD
            return ref / (1.0 + excess)
        mtd_value = self.tracker.mtd(key, tick, window)
        if self.sketch is not None:
            mtd_value = self._sketch_clamped_mtd(mtd_value, key, window)
        return mtd_value

    def _sketch_clamped_mtd(
        self, exact_mtd: float, key: Hashable, window: int
    ) -> float:
        """Sketch mode: a unit's folded (pre-eviction) drop history keeps
        bounding its MTD from above, so evicting a path under memory
        pressure does not launder its own units' drop records when the
        same unit returns."""
        est = self.sketch.unit_drop_estimate(key) if self.sketch else 0.0
        if est >= 1.0:
            return min(exact_mtd, window / est)
        return exact_mtd

    # ------------------------------------------------------------------
    # fault tolerance: checkpointing, restart, partial state loss
    # ------------------------------------------------------------------
    #: Every mutable attribute that admission decisions depend on.  RNG
    #: objects are included deliberately: a restored policy must replay the
    #: same preferential/random-threshold draws as an uninterrupted one.
    _SNAPSHOT_ATTRS = (
        "paths",
        "groups",
        "plan",
        "_blocked",
        "_lru",
        "sketch",
        "eviction_stats",
        "tracked_paths_peak",
        "drop_stats",
        "_pending_drop_cause",
        "_warmup_until",
        "_clock_offset",
        "_initial_rtt",
        "conformance",
        "tracker",
        "drop_filter",
        "_filter_k_arrays",
        "qm",
        "_rng",
    )

    def snapshot(self) -> Dict[str, object]:
        """Checkpoint the policy's full mutable state.

        The snapshot is an independent deep copy: mutating the live policy
        afterwards does not invalidate it, and it can be restored more
        than once.  ``attach`` must have run first (the trackers and RNGs
        are created there).
        """
        if not hasattr(self, "qm"):
            raise SimulationError(
                "snapshot before attach; the policy has no runtime state yet"
            )
        return copy.deepcopy(
            {name: getattr(self, name, None) for name in self._SNAPSHOT_ATTRS}
        )

    def restore(self, snap: Dict[str, object]) -> None:
        """Restore a :meth:`snapshot`; admission decisions after the
        restore are identical to an uninterrupted policy's given the same
        packet sequence and link state."""
        if not hasattr(self, "qm"):
            raise SimulationError(
                "restore before attach; attach the policy to a link first"
            )
        for name, value in copy.deepcopy(snap).items():
            setattr(self, name, value)

    def restart(self, tick: int) -> None:
        """Cold router restart: all volatile state is lost.

        Token buckets, MTD/drop records, conformance, aggregation plan,
        blocks — everything except the capability keys (derived from the
        configured secret, so already-issued capabilities stay valid) is
        wiped, and the policy enters *warm-up mode* for
        ``cfg.restart_warmup_ticks``: neutral congested-mode admission
        until the ``lambda_Si``/RTT estimates re-converge.  Cumulative
        ``drop_stats`` are kept (they are experiment bookkeeping, not
        router state).
        """
        if not hasattr(self, "qm"):
            raise SimulationError(
                "restart before attach; the policy has no runtime state yet"
            )
        lost = len(self.paths)
        if lost:
            self.eviction_stats["restart"] = (
                self.eviction_stats.get("restart", 0) + lost
            )
            tel = self.engine.telemetry
            if tel.enabled:
                tel.registry.labeled("path_evictions_by_cause_count").inc(
                    "restart", lost
                )
                if tel.trace_enabled:
                    tel.emit_event(
                        tick, "path_evict", "policy",
                        cause="restart", count=lost,
                        backend=self.cfg.state_backend,
                    )
        self.paths.clear()
        self._lru.clear()
        if self.sketch is not None:
            # the sketch tier is volatile router memory too: a cold
            # restart loses it along with the exact state
            self.sketch = BoundedPathState(
                self.cfg.sketch_width, self.cfg.sketch_depth
            )
        self.groups.clear()
        self.plan = AggregationPlan()
        self._blocked.clear()
        self.conformance = ConformanceTracker(beta=self.cfg.beta)
        if self.tracker is not None:
            self.tracker = FlowDropTracker(
                horizon=40 * self.cfg.measure_interval
            )
        if self.drop_filter is not None:
            # fresh arrays; keep the live RNG so the replayed randomness
            # stays deterministic for the whole (scenario, seed) run
            self.drop_filter = DropRecordFilter(
                m=self.drop_filter.m,
                bits=self.drop_filter.bits,
                k_bits=self.drop_filter.k_bits,
                probabilistic_update=self.drop_filter.probabilistic_update,
                rng=self.drop_filter._rng,
            )
            self._filter_k_arrays = self.drop_filter.m
        self.qm = QueueManager(
            self.qm.buffer_size,
            self.cfg.q_min_fraction,
            rng=self.qm._rng,
        )
        self._pending_drop_cause = None
        self._warmup_until = tick + self.cfg.restart_warmup_ticks

    def corrupt_state(self, fraction: float, rng: random.Random) -> None:
        """Partial state loss: forget a random ``fraction`` of the per-path
        states, blocks, drop records, and token balances — the
        line-card-failure analogue of :meth:`restart`.  The surviving
        state keeps operating; lost paths regenerate from live traffic."""
        for pid in [p for p in self.paths if rng.random() < fraction]:
            del self.paths[pid]
            self.conformance.forget(pid)
            self._lru.pop(pid, None)
        for key in [k for k in self._blocked if rng.random() < fraction]:
            del self._blocked[key]
        if self.tracker is not None:
            for key in [
                k for k in list(self.tracker._drops) if rng.random() < fraction
            ]:
                self.tracker.forget(key)
        for group in self.groups.values():
            if rng.random() < fraction:
                group.bucket.tokens = 0.0
                group.interval_drops = 0

    def jitter_clock(self, offset: int) -> None:
        """Shift the measurement-interval phase by ``offset`` ticks."""
        self._clock_offset = int(offset)

    @property
    def in_warmup(self) -> bool:
        """Whether the policy is in its post-restart warm-up window."""
        return self._warmup_until is not None

    @property
    def warmup_until(self) -> Optional[int]:
        """Tick at which the current warm-up window ends, or ``None``
        outside warm-up — the recovery-deadline anchor used by the
        :mod:`repro.chaos` SLO oracles."""
        return self._warmup_until

    # ------------------------------------------------------------------
    # introspection (experiments / tests)
    # ------------------------------------------------------------------
    def identified_attack_units(self) -> set:
        """Union of accounting units currently classified as attacking."""
        out = set()
        for state in self.paths.values():
            out |= state.attack_flows
        return out

    def conformance_snapshot(self) -> Dict[PathId, float]:
        """Current conformance per known path."""
        return {pid: self.conformance.value(pid) for pid in self.paths}
