"""Mean-time-to-drop (MTD) measurement and attack identification.

Section IV-B: a flow's MTD is its average packet-drop interval,

    ``MTD(f) = k * T_Si / (number of drops in the last k periods)``
    (Eq. IV.4, measured over ``k >= n_i`` periods),

and under FLoc's token-based admission the reference MTD of a *legitimate*
flow on path ``S_i`` is ``n_i * T_Si`` — the bucket makes one drop per
period, spread over ``n_i`` flows.  Because an attack flow's drop rate is
proportional to its send rate, its MTD sits well below the reference no
matter the attack strategy (CBR, Shrew bursts, covert aggregates), which is
what makes MTD a strategy-independent detector.

Identified attack flows are admitted with probability

    ``Pr(f serviced) = I_token * min{1, MTD(f) / (n_i * T_Si)}``
    (Eq. IV.5),

which upper-bounds their throughput by the fair share and *self-heals* for
misidentified flows: a source that backs off sees its MTD rise and its
service probability return to one.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Tuple

INFINITE_MTD = float("inf")


class FlowDropTracker:
    """Exact sliding-window drop records per accounting unit.

    This is the reference implementation used in the functional
    evaluation; the scalable approximation is
    :class:`~repro.core.dropfilter.DropRecordFilter`.
    """

    def __init__(self, horizon: int = 2000) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon
        self._drops: Dict[Hashable, deque] = {}

    def record_drop(self, key: Hashable, tick: int) -> None:
        """Record one drop of accounting unit ``key`` at ``tick``."""
        dq = self._drops.get(key)
        if dq is None:
            dq = deque()
            self._drops[key] = dq
        dq.append(tick)

    def _trim(self, dq: deque, oldest: int) -> None:
        while dq and dq[0] < oldest:
            dq.popleft()

    def drops_in_window(self, key: Hashable, tick: int, window: int) -> int:
        """Drops of ``key`` within ``(tick - window, tick]``."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        dq = self._drops.get(key)
        if not dq:
            return 0
        self._trim(dq, tick - self.horizon)
        oldest = tick - window
        return sum(1 for t in dq if t > oldest)

    def mtd(self, key: Hashable, tick: int, window: int) -> float:
        """Eq. (IV.4): ``window / drops``; infinite when drop-free."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        drops = self.drops_in_window(key, tick, min(window, self.horizon))
        if drops == 0:
            return INFINITE_MTD
        return min(window, self.horizon) / drops

    def drop_count(self, key: Hashable) -> int:
        """All retained drops of ``key`` (horizon-pruned lazily; callers
        folding state into the sketch tier want the full retained mass)."""
        dq = self._drops.get(key)
        return len(dq) if dq else 0

    def forget(self, key: Hashable) -> None:
        """Discard the drop record of one unit (fault-injected state loss)."""
        self._drops.pop(key, None)

    def forget_stale(self, tick: int) -> None:
        """Release memory of units with no drops inside the horizon."""
        oldest = tick - self.horizon
        stale = []
        for key, dq in self._drops.items():
            self._trim(dq, oldest)
            if not dq:
                stale.append(key)
        for key in stale:
            del self._drops[key]

    def tracked_units(self) -> int:
        """Number of accounting units with live drop records."""
        return len(self._drops)


class MtdClassifier:
    """Stateless decision rules derived from MTD values."""

    def __init__(
        self,
        attack_mtd_fraction: float = 0.5,
        block_mtd_fraction: float = 1.0 / 64.0,
    ) -> None:
        self.attack_mtd_fraction = attack_mtd_fraction
        self.block_mtd_fraction = block_mtd_fraction

    def service_probability(self, mtd: float, reference_mtd: float) -> float:
        """Eq. (IV.5) without the token indicator: ``min(1, MTD/ref)``."""
        if reference_mtd <= 0 or mtd == INFINITE_MTD:
            return 1.0
        return min(1.0, mtd / reference_mtd)

    def is_attack_flow(self, mtd: float, reference_mtd: float) -> bool:
        """A flow whose MTD sits well below the reference is attacking."""
        if mtd == INFINITE_MTD:
            return False
        return mtd < self.attack_mtd_fraction * reference_mtd

    def should_block(self, mtd: float, reference_mtd: float) -> bool:
        """Extremely high-rate flows are blocked outright (Section V-B.3)."""
        if mtd == INFINITE_MTD:
            return False
        return mtd < self.block_mtd_fraction * reference_mtd

    def classification(self, mtd: float, reference_mtd: float) -> str:
        """Full decision for one flow: ``block``, ``attack`` or ``benign``.

        Mirrors the precedence the identification loop applies — the
        block test subsumes the attack test — so telemetry traces can
        label a transition with a single word.
        """
        if self.should_block(mtd, reference_mtd):
            return "block"
        if self.is_attack_flow(mtd, reference_mtd):
            return "attack"
        return "benign"

    def is_attack_path(
        self,
        aggregate_mtd: float,
        token_period: float,
        request_rate: float,
        bandwidth: float,
    ) -> bool:
        """Section IV-B.1 test for attack (domain) paths.

        ``MTD(F_Si) < T_Si`` — the aggregate drops faster than the bucket's
        one-drop-per-period reference — while the path's request rate
        exceeds its allocation plus the reference drop rate:
        ``lambda_Si > C_Si + 1/T_Si``.
        """
        if aggregate_mtd >= token_period:
            return False
        return request_rate > bandwidth + 1.0 / max(token_period, 1e-9)


def aggregate_mtd(
    tracker: FlowDropTracker, keys: Iterable[Hashable], tick: int, window: int
) -> Tuple[float, int]:
    """MTD of a path's flow aggregate and its total window drop count."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    total = 0
    for key in keys:
        total += tracker.drops_in_window(key, tick, window)
    if total == 0:
        return INFINITE_MTD, 0
    return window / total, total
