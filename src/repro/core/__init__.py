"""FLoc: the paper's primary contribution.

The subsystem decomposes as in the paper:

* :mod:`~repro.core.pathid` — domain-path identifiers and the traffic tree
  (Section III-A).
* :mod:`~repro.core.capability` — two-part network-layer capabilities with
  the covert-attack fanout limit (Sections III-A, IV-B.3).
* :mod:`~repro.core.tokenbucket` — per-path token buckets with the model's
  parameters (Section IV-A, Eqs. IV.1-IV.3).
* :mod:`~repro.core.mtd` — mean-time-to-drop measurement and attack
  flow/path identification (Section IV-B, Eqs. IV.4-IV.5).
* :mod:`~repro.core.dropfilter` — the scalable Bloom-filter drop-record
  store with probabilistic updates (Section V-B).
* :mod:`~repro.core.conformance` — path-conformance EWMA (Eq. IV.6).
* :mod:`~repro.core.aggregation` — attack-path aggregation (Algorithm 1,
  Eq. IV.7) and legitimate-path aggregation (Eq. IV.8).
* :mod:`~repro.core.queue_manager` — the three queue modes (Section V-A).
* :mod:`~repro.core.router` — :class:`FLocPolicy`, the complete router
  subsystem plugged into the simulation engine.
"""

from .config import FLocConfig
from .pathid import PathId, PathTree, common_suffix, origin_as
from .capability import CapabilityIssuer
from .tokenbucket import PathTokenBucket
from .mtd import FlowDropTracker, MtdClassifier
from .dropfilter import DropRecordFilter
from .conformance import ConformanceTracker
from .aggregation import AggregationPlan, aggregate_attack_paths, aggregate_legitimate_paths
from .queue_manager import QueueManager, QueueMode
from .router import FLocPolicy

__all__ = [
    "FLocConfig",
    "PathId",
    "PathTree",
    "common_suffix",
    "origin_as",
    "CapabilityIssuer",
    "PathTokenBucket",
    "FlowDropTracker",
    "MtdClassifier",
    "DropRecordFilter",
    "ConformanceTracker",
    "AggregationPlan",
    "aggregate_attack_paths",
    "aggregate_legitimate_paths",
    "QueueManager",
    "QueueMode",
    "FLocPolicy",
]
