"""Two-part network-layer capabilities (paper Sections III-A and IV-B.3).

During connection establishment a router issues, for a flow
``(src, dst, path_id)``, the capability ``C = C0 || C1`` where

* ``C0 = Hash(IP_s, IP_d, S_i, K0)`` authenticates the flow identifier —
  only this router can verify it, so identifiers cannot be forged, and
* ``C1 = Hash(IP_s, F(IP_d), S_i, K1)`` with ``F`` uniform on
  ``[0, n_max - 1]`` restricts a source to at most ``n_max`` *distinct*
  capabilities through this router and lets the router account for the
  total bandwidth those capabilities request concurrently.

The ``C1`` bucket is the covert-attack countermeasure: a bot that opens
many low-rate flows to different destinations sees them all collapse into
``n_max`` accounting units, whose combined rate is what MTD-based
identification observes (Section VI-D).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Hashable, Optional, Tuple

from .pathid import PathId

#: Bytes kept from each hash half; 8 bytes is ample for simulation.
_DIGEST_BYTES = 8


def _encode(*parts: object) -> bytes:
    return "|".join(str(p) for p in parts).encode()


class CapabilityIssuer:
    """Issues and verifies capabilities; computes covert-defense keys.

    Parameters
    ----------
    secret:
        The router secret ``K_R``; two subkeys are derived from it for the
        two capability halves.
    n_max:
        Maximum concurrent capabilities (fanout buckets) per source
        (configurable per router, paper footnote 11).
    """

    def __init__(self, secret: bytes, n_max: int = 2) -> None:
        if n_max < 1:
            raise ValueError(f"n_max must be >= 1, got {n_max}")
        self._k0 = hmac.new(secret, b"C0", hashlib.sha256).digest()
        self._k1 = hmac.new(secret, b"C1", hashlib.sha256).digest()
        self.n_max = n_max

    # ------------------------------------------------------------------
    # issue / verify
    # ------------------------------------------------------------------
    def fanout_bucket(self, dst_addr: Hashable) -> int:
        """``F(IP_d)``: hash the destination into ``[0, n_max - 1]``."""
        digest = hashlib.sha256(_encode("F", dst_addr)).digest()
        return int.from_bytes(digest[:4], "big") % self.n_max

    def issue(
        self, src_addr: Hashable, dst_addr: Hashable, pid: PathId
    ) -> bytes:
        """Issue ``C0 || C1`` for a new connection."""
        c0 = hmac.new(
            self._k0, _encode(src_addr, dst_addr, pid), hashlib.sha256
        ).digest()[:_DIGEST_BYTES]
        c1 = hmac.new(
            self._k1,
            _encode(src_addr, self.fanout_bucket(dst_addr), pid),
            hashlib.sha256,
        ).digest()[:_DIGEST_BYTES]
        return c0 + c1

    def verify(
        self,
        capability: Optional[bytes],
        src_addr: Hashable,
        dst_addr: Hashable,
        pid: PathId,
    ) -> bool:
        """Check both halves against the packet's addresses and path."""
        if capability is None or len(capability) != 2 * _DIGEST_BYTES:
            return False
        return hmac.compare_digest(capability, self.issue(src_addr, dst_addr, pid))

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def account_key(
        self, src_addr: Hashable, dst_addr: Hashable, pid: PathId
    ) -> Tuple[Hashable, int, PathId]:
        """The unit at which the router accounts flow bandwidth and drops.

        All flows of one source whose destinations hash into the same
        ``C1`` bucket share an accounting unit — this is what defeats the
        covert attack's per-flow innocence.
        """
        return (src_addr, self.fanout_bucket(dst_addr), pid)
