"""Path-identifier aggregation (paper Section IV-C).

Two complementary aggregations run at a congested router:

* **Attack-path aggregation** (Section IV-C.1, Algorithm 1): when the
  number of active path identifiers exceeds ``|S|_max``, path identifiers
  of highly contaminated domains are merged — starting from *nearby*
  domains (longest common suffix) — until at most
  ``|S|_max - |S^L|`` attack identifiers remain.  Because bandwidth is
  assigned per identifier, merging ``k`` attack paths into one reassigns
  ``k - 1`` bandwidth shares to legitimate paths.  The greedy algorithm
  minimises the *aggregation cost* ``C^A(R) = mean conformance of the
  leaf paths under R`` (aggregating low-conformance subtrees first).

* **Legitimate-path aggregation** (Section IV-C.2, Eq. IV.8): legitimate
  paths with different flow populations are merged — the merged group is
  allocated bandwidth *in proportion to the number of aggregated paths* —
  whenever the net conformance change
  ``C^L(R) = mean(E_j) - sum(E_j n_j) / sum(n_j)`` is negative, i.e. the
  merge raises flow-weighted conformance and thus link goodput.  A merge
  is vetoed if it would raise any member path's bandwidth allocation by
  more than a configured fraction (50 % in the paper) — the guard that
  stops covert paths with huge flow counts from soaking legitimate
  bandwidth.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .pathid import PathId, PathTree, PathTreeNode

#: Group keys: a singleton group is keyed by its path id; an aggregated
#: group by ("AGG-A"/"AGG-L", router-side suffix).
GroupKey = Tuple


class AggregationPlan:
    """The result of an aggregation pass: path -> group, group -> share."""

    def __init__(self) -> None:
        self.group_of: Dict[PathId, GroupKey] = {}
        self.members: Dict[GroupKey, List[PathId]] = {}
        self.shares: Dict[GroupKey, float] = {}
        # inputs the plan was built from, for the runtime |S| <= |S|_max
        # invariant (repro.sanitize): aggregate_attack_paths guarantees at
        # most max(1, s_max - n_legit) attack identifiers, so the total is
        # bounded by max(s_max, n_legit + 1)
        self.s_max: Optional[int] = None
        self.n_legit_inputs: Optional[int] = None

    @classmethod
    def identity(cls, pids: Iterable[PathId]) -> "AggregationPlan":
        """Every path is its own group with one bandwidth share."""
        plan = cls()
        for pid in pids:
            plan.add_group(pid, [pid], 1.0)
        return plan

    def add_group(
        self, key: GroupKey, members: Sequence[PathId], share: float
    ) -> None:
        """Register a group; every member maps to it."""
        self.members[key] = list(members)
        self.shares[key] = share
        for pid in members:
            self.group_of[pid] = key

    def group(self, pid: PathId) -> GroupKey:
        """Group key of ``pid`` (unknown paths are their own group)."""
        return self.group_of.get(pid, pid)

    def total_shares(self) -> float:
        """Sum of bandwidth shares across groups."""
        return sum(self.shares.values())

    @property
    def n_groups(self) -> int:
        """Number of distinct path identifiers after aggregation."""
        return len(self.members)

    def aggregated_groups(self) -> List[GroupKey]:
        """Keys of groups holding more than one original path."""
        return [k for k, v in self.members.items() if len(v) > 1]


# ----------------------------------------------------------------------
# attack-path aggregation (Algorithm 1)
# ----------------------------------------------------------------------
def _aggregation_cost(node: PathTreeNode, conformance: Dict[PathId, float]) -> float:
    leaves = node.descend_leaves()
    if not leaves:
        return 0.0
    return sum(conformance.get(pid, 1.0) for pid in leaves) / len(leaves)


def aggregate_attack_paths(
    attack_pids: Sequence[PathId],
    conformance: Dict[PathId, float],
    n_legit_paths: int,
    s_max: int,
) -> List[Tuple[PathId, List[PathId]]]:
    """Greedy Algorithm 1: choose aggregation nodes in the attack tree.

    Returns ``[(suffix, member-paths), ...]`` — each entry is one merged
    attack identifier.  The number of attack identifiers after aggregation
    is at most ``max(1, s_max - n_legit_paths)``.

    The greedy solution's distance from optimal is bounded by the product
    of ``E_th`` and the degree of the last added node (paper Section
    IV-C.1); we also guarantee feasibility by falling back to merging all
    attack paths into a single identifier when the budget is smaller than
    any subtree decomposition allows.
    """
    if s_max < 1:
        raise ConfigError(f"s_max must be >= 1, got {s_max}")
    attack_pids = list(dict.fromkeys(attack_pids))
    budget = max(1, s_max - n_legit_paths)
    if len(attack_pids) <= budget:
        return []

    tree = PathTree(attack_pids)
    # candidate aggregation points: internal nodes covering >= 2 paths,
    # deepest (nearest the origins) first so "aggregation starts from
    # nearby domains".
    candidates = [
        node
        for node in tree.nodes()
        if len(node.descend_leaves()) >= 2 and node.children
    ]
    if not candidates:
        return [((), attack_pids)] if len(attack_pids) > budget else []

    costs = {node.suffix: _aggregation_cost(node, conformance) for node in candidates}
    # sort: cost ascending, then deeper nodes first (longest suffix)
    ordered = sorted(candidates, key=lambda n: (costs[n.suffix], -n.depth))

    solution: List[PathTreeNode] = []

    def is_suffix(short: PathId, long: PathId) -> bool:
        return len(short) <= len(long) and long[len(long) - len(short) :] == short

    def covered(node: PathTreeNode, chosen: List[PathTreeNode]) -> bool:
        # two aggregation points overlap iff one subtree contains the other,
        # i.e. one node's suffix is a suffix of the other's.
        return any(
            is_suffix(other.suffix, node.suffix) or is_suffix(node.suffix, other.suffix)
            for other in chosen
        )

    def reduction(chosen: List[PathTreeNode]) -> int:
        return sum(len(node.descend_leaves()) - 1 for node in chosen)

    needed = len(attack_pids) - budget
    for node in ordered:
        if reduction(solution) >= needed:
            break
        if covered(node, solution):
            continue
        solution.append(node)
        # Algorithm 1 step 2: a single candidate replaces the current
        # solution set if it is cheaper than the set's total cost while
        # costing more than any individual member (an ancestor covering
        # them all), provided it still achieves the needed reduction.
        if len(solution) >= 2:
            total = sum(costs[n.suffix] for n in solution)
            worst = max(costs[n.suffix] for n in solution)
            for challenger in ordered:
                cost = costs[challenger.suffix]
                if not worst < cost < total:
                    continue
                if len(challenger.descend_leaves()) - 1 >= needed:
                    solution = [challenger]
                    break

    if reduction(solution) < needed:
        # fall back: merge every attack path into one identifier
        return [((), attack_pids)]

    groups: List[Tuple[PathId, List[PathId]]] = []
    for node in solution:
        groups.append((node.suffix, node.descend_leaves()))
    return groups


# ----------------------------------------------------------------------
# legitimate-path aggregation (Eq. IV.8)
# ----------------------------------------------------------------------
def legitimate_aggregation_cost(
    members: Sequence[PathId],
    conformance: Dict[PathId, float],
    flow_counts: Dict[PathId, float],
) -> float:
    """Eq. (IV.8): mean conformance minus flow-weighted mean conformance."""
    e = [conformance.get(pid, 1.0) for pid in members]
    n = [max(0.0, flow_counts.get(pid, 0.0)) for pid in members]
    total_flows = sum(n)
    mean_e = sum(e) / len(e)
    if total_flows <= 0:
        return 0.0
    weighted = sum(ei * ni for ei, ni in zip(e, n)) / total_flows
    return mean_e - weighted


class _LegitUnit:
    """A current aggregation unit: one path or an already-merged group."""

    __slots__ = ("paths", "flows", "conformance", "suffix")

    def __init__(
        self,
        paths: List[PathId],
        flows: float,
        conformance: float,
        suffix: PathId = (),
    ) -> None:
        self.paths = paths
        self.flows = flows
        self.conformance = conformance
        self.suffix = suffix


def aggregate_legitimate_paths(
    legit_pids: Sequence[PathId],
    conformance: Dict[PathId, float],
    flow_counts: Dict[PathId, float],
    bandwidth_increase_cap: float = 0.5,
    cost_tolerance: float = 0.02,
) -> List[Tuple[PathId, List[PathId]]]:
    """Merge legitimate paths where Eq. (IV.8) is non-positive.

    Aggregation proceeds bottom-up ("starts from nearby domains"): at each
    internal node of the legitimate traffic tree the current units below
    it (paths, or groups merged deeper down) are merged into one when

    * the Eq. (IV.8) cost over the units is <= ``cost_tolerance`` — the
      merge does not (materially) reduce flow-weighted conformance.  With
      equal conformance the cost is exactly 0 and the merge simply makes
      allocation proportional to flow counts, the Fig. 9 behaviour; the
      tolerance absorbs identification noise that would otherwise leave
      near-tie merges unmade.  And
    * no unit's per-flow bandwidth allocation would grow by more than
      ``bandwidth_increase_cap`` (50 % in the paper) — the guard that
      keeps covert paths with huge flow counts from soaking bandwidth
      (Section IV-C.2).

    Returns ``[(suffix, member paths), ...]`` for groups of >= 2 paths.
    """
    legit_pids = list(dict.fromkeys(legit_pids))
    if len(legit_pids) < 2:
        return []
    tree = PathTree(legit_pids)
    factor_cap = 1.0 + bandwidth_increase_cap

    def cost_ok(units: List[_LegitUnit]) -> bool:
        total_flows = sum(u.flows for u in units)
        if total_flows <= 0:
            return False
        mean_e = sum(u.conformance for u in units) / len(units)
        weighted_e = sum(u.conformance * u.flows for u in units) / total_flows
        return mean_e - weighted_e <= cost_tolerance

    def cap_violators(units: List[_LegitUnit]) -> List[_LegitUnit]:
        """Units whose per-flow allocation would grow past the cap.

        Allocation before is ``|paths_u| / n_u`` shares per flow; after
        the merge it is ``|paths_G| / n_G``.
        """
        total_flows = sum(u.flows for u in units)
        n_paths = sum(len(u.paths) for u in units)
        if total_flows <= 0:
            return []
        after = n_paths / total_flows
        out = []
        for unit in units:
            if unit.flows <= 0:
                continue
            before = len(unit.paths) / unit.flows
            if after / before > factor_cap:
                out.append(unit)
        return out

    def try_merge(
        units: List[_LegitUnit], suffix: PathId
    ) -> Optional[List[_LegitUnit]]:
        """Merge as many of ``units`` as allowed; None if no merge."""
        candidates = list(units)
        # iteratively exclude covert-guard violators: removing one unit
        # changes the post-merge allocation, so repeat to a fixed point
        while len(candidates) >= 2:
            violators = cap_violators(candidates)
            if not violators:
                break
            excluded_ids = {id(v) for v in violators}
            candidates = [u for u in candidates if id(u) not in excluded_ids]
        if len(candidates) < 2 or not cost_ok(candidates):
            return None
        total_flows = sum(u.flows for u in candidates)
        weighted_e = (
            sum(u.conformance * u.flows for u in candidates) / total_flows
        )
        merged = _LegitUnit(
            [pid for u in candidates for pid in u.paths],
            total_flows,
            weighted_e,
            suffix=suffix,
        )
        kept_ids = {id(u) for u in candidates}
        rest = [u for u in units if id(u) not in kept_ids]
        return [merged] + rest

    def merge_at(node: PathTreeNode) -> List[_LegitUnit]:
        # gather units from children (recursively merged) and own leaves;
        # unmerged units propagate upward so every ancestor gets a chance
        units: List[_LegitUnit] = []
        for child in node.children.values():
            units.extend(merge_at(child))
        for pid in node.leaf_pids:
            units.append(
                _LegitUnit(
                    [pid],
                    max(0.0, flow_counts.get(pid, 0.0)),
                    conformance.get(pid, 1.0),
                    suffix=pid,
                )
            )
        if len(units) < 2:
            return units
        merged = try_merge(units, node.suffix)
        return merged if merged is not None else units

    final_units = merge_at(tree.root)
    return [
        (unit.suffix, unit.paths)
        for unit in final_units
        if len(unit.paths) >= 2
    ]


def _is_attack_group(key: GroupKey) -> bool:
    return bool(key) and isinstance(key[0], str) and key[0] == "AGG-A"


def plan_moves(
    old: "AggregationPlan",
    new: "AggregationPlan",
    pids: Iterable[PathId],
) -> List[Tuple[PathId, GroupKey, GroupKey, str]]:
    """Diff two aggregation plans over ``pids`` (pure; used by telemetry).

    Returns one ``(pid, old_key, new_key, kind)`` tuple per path whose
    group assignment changed, where ``kind`` is:

    * ``"demote"`` — the path entered an attack aggregate (Algorithm 1
      folded it under an ``AGG-A`` identifier),
    * ``"promote"`` — the path left an attack aggregate (its conformance
      recovered above ``E_th``),
    * ``"regroup"`` — it moved between non-attack groups (Eq. IV.8
      legitimate-path merges reshuffling).
    """
    moves: List[Tuple[PathId, GroupKey, GroupKey, str]] = []
    for pid in pids:
        old_key = old.group(pid)
        new_key = new.group(pid)
        if old_key == new_key:
            continue
        was_attack = _is_attack_group(old_key)
        now_attack = _is_attack_group(new_key)
        if now_attack and not was_attack:
            kind = "demote"
        elif was_attack and not now_attack:
            kind = "promote"
        else:
            kind = "regroup"
        moves.append((pid, old_key, new_key, kind))
    return moves


# ----------------------------------------------------------------------
# combined plan
# ----------------------------------------------------------------------
def build_plan(
    legit_pids: Sequence[PathId],
    attack_pids: Sequence[PathId],
    conformance: Dict[PathId, float],
    flow_counts: Dict[PathId, float],
    s_max: Optional[int],
    bandwidth_increase_cap: float = 0.5,
    legitimate_aggregation: bool = True,
    cost_tolerance: float = 0.02,
) -> AggregationPlan:
    """Run both aggregations and assemble the group/share plan.

    Attack groups get one share (the punishment); merged legitimate groups
    get one share per member path (proportional allocation); everything
    else keeps its own single share.
    """
    plan = AggregationPlan()
    remaining_attack = list(dict.fromkeys(attack_pids))
    remaining_legit = [p for p in dict.fromkeys(legit_pids) if p not in set(remaining_attack)]
    plan.s_max = s_max
    plan.n_legit_inputs = len(remaining_legit)

    if s_max is not None and remaining_attack:
        for suffix, members in aggregate_attack_paths(
            remaining_attack, conformance, len(remaining_legit), s_max
        ):
            plan.add_group(("AGG-A",) + tuple(suffix), members, 1.0)
            member_set = set(map(tuple, members))
            remaining_attack = [p for p in remaining_attack if tuple(p) not in member_set]

    if legitimate_aggregation and len(remaining_legit) >= 2:
        for suffix, members in aggregate_legitimate_paths(
            remaining_legit,
            conformance,
            flow_counts,
            bandwidth_increase_cap,
            cost_tolerance=cost_tolerance,
        ):
            plan.add_group(("AGG-L",) + tuple(suffix), members, float(len(members)))
            member_set = set(map(tuple, members))
            remaining_legit = [p for p in remaining_legit if tuple(p) not in member_set]

    for pid in remaining_legit + remaining_attack:
        plan.add_group(pid, [pid], 1.0)
    return plan
