"""Fault injectors for the packet-level engine and the fluid simulator.

An *injector* is any callable ``fn(host, tick, rng)`` — the host is the
simulator the schedule is installed on (:class:`~repro.net.engine.Engine`
or :class:`~repro.inet.simulator.FluidSimulator`), ``tick`` is the tick the
fault fires at and ``rng`` is the schedule's dedicated deterministic RNG
(derived from the host seed, so a run with a fault schedule is exactly
reproducible).

Two stateful injector pairs model transient faults that must undo
themselves — :class:`LinkFlap` (packet level) and
:class:`FluidLinkDegrade` (fluid level) — and a set of callable classes
wrap the :class:`~repro.net.policy.LinkPolicy` fault hooks (restart,
partial state corruption, clock jitter).  Injectors are plain picklable
objects (no closures) so a simulator with an installed fault schedule can
be checkpointed mid-run by :mod:`repro.runner`.

:class:`CounterCorruption` and :class:`FluidCounterCorruption` silently
corrupt internal accounting state without any behavioural side effect —
exactly the class of bug the :mod:`repro.sanitize` invariant layer exists
to catch (strict mode must flag them within one tick).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..errors import ConfigError, SimulationError, TopologyError


def _target_policy(engine, src, dst):
    policy = engine.topology.link(src, dst).policy
    if policy is None:
        raise SimulationError(
            f"link {src!r} -> {dst!r} has no policy to inject a fault into"
        )
    return policy


def _uses_hop(route, src, dst) -> bool:
    return any(
        route[i] == src and route[i + 1] == dst for i in range(len(route) - 1)
    )


class LinkFlap:
    """A directed link going down and (later) back up.

    :meth:`down` fails the link, loses its queued packets and reroutes
    every flow whose forward or reverse route crosses it onto the current
    shortest alternative; flows with no alternative are left on their old
    route and black-hole at the failure (their packets are counted as
    ``dropped_total`` without touching the admission policy's drop
    records, mirroring the paper's assumption that FLoc state tracks
    congestion drops, not outages).  :meth:`up` restores the link and puts
    the rerouted flows back on their original paths, so the pre-fault
    routing — and FLoc's per-path accounting — is unchanged after the
    flap.
    """

    def __init__(self, src, dst) -> None:
        self.src = src
        self.dst = dst
        self._saved: Dict[int, Tuple[tuple, tuple]] = {}

    def down(self, engine, tick: int, rng: random.Random) -> None:
        engine.fail_link(self.src, self.dst)
        for flow in engine.flows.values():
            if not (
                _uses_hop(flow.route, self.src, self.dst)
                or _uses_hop(flow.reverse_route, self.src, self.dst)
            ):
                continue
            self._saved[flow.flow_id] = (flow.route, flow.reverse_route)
            try:
                engine.reroute_flow(flow)
            except TopologyError:
                # no alternative path: the flow black-holes until `up`
                pass

    def up(self, engine, tick: int, rng: random.Random) -> None:
        engine.restore_link(self.src, self.dst)
        for flow_id, (route, reverse_route) in self._saved.items():
            flow = engine.flows.get(flow_id)
            if flow is not None:
                flow.route = route
                flow.reverse_route = reverse_route
        self._saved.clear()


class router_restart:
    """Injector: crash/restart the policy guarding ``src -> dst``.

    Volatile policy state (token buckets, MTD drop records, conformance
    EWMAs, aggregation plan) is wiped; FLoc enters its warm-up mode (see
    :meth:`~repro.core.router.FLocPolicy.restart`).
    """

    def __init__(self, src, dst) -> None:
        self.src = src
        self.dst = dst

    def __call__(self, engine, tick: int, rng: random.Random) -> None:
        _target_policy(engine, self.src, self.dst).restart(tick)


class state_corruption:
    """Injector: the policy on ``src -> dst`` forgets a random ``fraction``
    of its volatile records (failed line card / partial memory loss)."""

    def __init__(self, src, dst, fraction: float = 0.5) -> None:
        self.src = src
        self.dst = dst
        self.fraction = fraction

    def __call__(self, engine, tick: int, rng: random.Random) -> None:
        _target_policy(engine, self.src, self.dst).corrupt_state(
            self.fraction, rng
        )


class clock_jitter:
    """Injector: shift the policy's measurement phase by a random offset
    in ``[-max_offset, max_offset]`` (NTP step / VM pause)."""

    def __init__(self, src, dst, max_offset: int = 10) -> None:
        self.src = src
        self.dst = dst
        self.max_offset = max_offset

    def __call__(self, engine, tick: int, rng: random.Random) -> None:
        offset = rng.randint(-self.max_offset, self.max_offset)
        _target_policy(engine, self.src, self.dst).jitter_clock(offset)


class CounterCorruption:
    """Injector: silently corrupt an internal accounting counter.

    Unlike :class:`state_corruption` (which models honest state *loss*
    the policy knows how to recover from), this models a silent bug — a
    counter skewed without any behavioural signal.  Targets:

    * ``"ledger"`` — skew the engine's packet-conservation ledger
      (``packets_delivered``), breaking
      created = delivered + dropped + in-flight;
    * ``"tokens"`` — drive one FLoc group's token bucket negative.

    The :mod:`repro.sanitize` strict mode must flag either within one
    tick; with no sanitizer installed the run completes quietly with
    subtly wrong numbers, which is the failure mode this exists to
    demonstrate.
    """

    def __init__(self, src, dst, target: str = "ledger", skew: int = 7) -> None:
        if target not in ("ledger", "tokens"):
            raise ConfigError(
                f"unknown corruption target {target!r}; "
                f"choose 'ledger' or 'tokens'"
            )
        self.src = src
        self.dst = dst
        self.target = target
        self.skew = skew

    def __call__(self, engine, tick: int, rng: random.Random) -> None:
        if self.target == "ledger":
            engine.packets_delivered += self.skew
            return
        policy = _target_policy(engine, self.src, self.dst)
        groups = getattr(policy, "groups", None)
        if not groups:
            raise SimulationError(
                f"policy on {self.src!r}->{self.dst!r} has no token buckets "
                f"to corrupt"
            )
        key = rng.choice(sorted(groups, key=repr))
        groups[key].bucket.tokens = -abs(float(self.skew))


class FluidCounterCorruption:
    """Injector: drive a random slice of the fluid simulator's smoothed
    send rates (the MTD analogue) negative — a silent accounting bug the
    sanitizer's ``rate-nonnegative`` invariant must catch."""

    def __init__(self, fraction: float = 0.1, skew: float = 5.0) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(
                f"corruption fraction must be in (0, 1], got {fraction}"
            )
        self.fraction = fraction
        self.skew = skew

    def __call__(self, sim, tick: int, rng: random.Random) -> None:
        n = max(1, int(sim.n_flows * self.fraction))
        victims = rng.sample(range(sim.n_flows), min(n, sim.n_flows))
        for idx in victims:
            sim._rate_ewma[idx] = -abs(self.skew)


class FluidLinkDegrade:
    """Capacity degradation of one AS uplink in the fluid simulator.

    :meth:`down` scales ``scn.link_capacity[asn]`` by ``factor`` (a partial
    outage: 0 kills the uplink outright); :meth:`up` restores the original
    capacity.  Works on any :class:`~repro.inet.simulator.FluidSimulator`
    host.
    """

    def __init__(self, asn: int, factor: float = 0.0) -> None:
        if factor < 0:
            raise SimulationError(f"degrade factor must be >= 0, got {factor}")
        self.asn = asn
        self.factor = factor
        self._original: float = 0.0
        self._active = False

    def down(self, sim, tick: int, rng: random.Random) -> None:
        if not self._active:
            self._original = float(sim.scn.link_capacity[self.asn])
            self._active = True
        sim.scn.link_capacity[self.asn] = self._original * self.factor

    def up(self, sim, tick: int, rng: random.Random) -> None:
        if self._active:
            sim.scn.link_capacity[self.asn] = self._original
            self._active = False


class fluid_restart:
    """Injector: restart the fluid simulator's target-link defense (wipe
    rate EWMAs, conformance state and the aggregation plan; FLoc degrades
    to neutral admission for ``warmup_ticks``)."""

    def __init__(self, warmup_ticks: int = 50) -> None:
        self.warmup_ticks = warmup_ticks

    def __call__(self, sim, tick: int, rng: random.Random) -> None:
        sim.restart_defense(tick, warmup_ticks=self.warmup_ticks)
