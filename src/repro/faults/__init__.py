"""Deterministic fault injection for robustness experiments.

The subsystem has two halves:

* :mod:`repro.faults.schedule` — :class:`FaultSchedule`, a declarative,
  seed-driven event list that installs on either simulator's tick hook.
* :mod:`repro.faults.injectors` — the fault actions themselves: link
  flaps with automatic rerouting, router (policy) restarts, partial state
  corruption, measurement-clock jitter, and fluid-level uplink
  degradation.

See ``docs/architecture.md`` ("Fault injection & degradation") and the
``robustness_faults`` experiment for how the pieces compose.
"""

from .injectors import (
    CounterCorruption,
    FluidCounterCorruption,
    FluidLinkDegrade,
    LinkFlap,
    clock_jitter,
    fluid_restart,
    router_restart,
    state_corruption,
)
from .schedule import FaultEvent, FaultSchedule

__all__ = [
    "CounterCorruption",
    "FaultEvent",
    "FaultSchedule",
    "FluidCounterCorruption",
    "FluidLinkDegrade",
    "LinkFlap",
    "clock_jitter",
    "fluid_restart",
    "router_restart",
    "state_corruption",
]
