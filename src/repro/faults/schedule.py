"""Deterministic, seed-driven fault schedules.

A :class:`FaultSchedule` is a declarative list of fault events — one-shot
(``at``) or recurring (``every``) — that installs itself as a tick hook on
any *host* exposing the two-method protocol ``add_tick_hook(hook)`` +
``spawn_rng(name)``.  Both the packet-level
:class:`~repro.net.engine.Engine` and the fluid
:class:`~repro.inet.simulator.FluidSimulator` satisfy it, so one schedule
class drives fault experiments in either simulator.

All randomness inside injectors flows through a single RNG derived from
the host's master seed (``host.spawn_rng("faults")``), so a scenario with
a fault schedule is exactly as reproducible as one without: same
(scenario, seed) → same faults → same packet-level outcome.

Convenience builders cover the fault classes of the robustness
experiments: :meth:`link_flap`, :meth:`router_restart`,
:meth:`corrupt_state` and :meth:`clock_jitter`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigError
from . import injectors as _inj

#: Injector signature: ``fn(host, tick, rng)``.
Injector = Callable[..., None]


@dataclass
class FaultEvent:
    """One scheduled fault: fires once at ``tick``, or every ``period``
    ticks from ``tick`` (inclusive) until ``until`` (exclusive)."""

    tick: int
    injector: Injector
    name: str
    period: Optional[int] = None
    until: Optional[int] = None

    def __post_init__(self) -> None:
        # the builders (at/every/link_flap) validate too, but events can
        # be constructed directly — e.g. by spec interpreters — so the
        # invariants are enforced here as well
        if self.tick < 0:
            raise ConfigError(f"fault tick must be >= 0, got {self.tick}")
        if not callable(self.injector):
            raise ConfigError(
                f"injector must be callable, got {self.injector!r}"
            )
        if self.period is not None and self.period < 1:
            raise ConfigError(
                f"fault period must be >= 1, got {self.period}"
            )
        if self.until is not None and self.until <= self.tick:
            raise ConfigError(
                f"fault until ({self.until}) must be > start ({self.tick})"
            )

    def fires_at(self, tick: int) -> bool:
        if tick < self.tick:
            return False
        if self.period is None:
            return tick == self.tick
        if self.until is not None and tick >= self.until:
            return False
        return (tick - self.tick) % self.period == 0


@dataclass
class FaultSchedule:
    """An installable list of :class:`FaultEvent`.

    Build it up with :meth:`at` / :meth:`every` (or the convenience
    builders), then :meth:`install` it on a host before running.  Every
    fired event is appended to :attr:`log` as ``(tick, name)`` for
    post-run inspection.
    """

    events: List[FaultEvent] = field(default_factory=list)
    log: List[Tuple[int, str]] = field(default_factory=list)

    # -- declarative construction --------------------------------------
    def at(
        self, tick: int, injector: Injector, name: Optional[str] = None
    ) -> "FaultSchedule":
        """Fire ``injector`` once at ``tick``; returns self for chaining."""
        if tick < 0:
            raise ConfigError(f"fault tick must be >= 0, got {tick}")
        if not callable(injector):
            raise ConfigError(f"injector must be callable, got {injector!r}")
        self.events.append(
            FaultEvent(tick=tick, injector=injector, name=name or "fault")
        )
        return self

    def every(
        self,
        period: int,
        injector: Injector,
        start: int = 0,
        until: Optional[int] = None,
        name: Optional[str] = None,
    ) -> "FaultSchedule":
        """Fire ``injector`` at ``start``, ``start+period``, ... while
        the tick is below ``until`` (``None`` = forever)."""
        if period < 1:
            raise ConfigError(f"fault period must be >= 1, got {period}")
        if start < 0:
            raise ConfigError(f"fault start must be >= 0, got {start}")
        if until is not None and until <= start:
            raise ConfigError(
                f"fault until ({until}) must be > start ({start})"
            )
        if not callable(injector):
            raise ConfigError(f"injector must be callable, got {injector!r}")
        self.events.append(
            FaultEvent(
                tick=start,
                injector=injector,
                name=name or "recurring-fault",
                period=period,
                until=until,
            )
        )
        return self

    # -- convenience builders ------------------------------------------
    def link_flap(
        self, src, dst, down_tick: int, up_tick: int
    ) -> "FaultSchedule":
        """Take link ``src -> dst`` down at ``down_tick`` and restore it
        (with original flow routes) at ``up_tick``."""
        if up_tick <= down_tick:
            raise ConfigError(
                f"up_tick ({up_tick}) must be > down_tick ({down_tick})"
            )
        flap = _inj.LinkFlap(src, dst)
        self.at(down_tick, flap.down, name=f"link-down {src}->{dst}")
        self.at(up_tick, flap.up, name=f"link-up {src}->{dst}")
        return self

    def router_restart(self, src, dst, tick: int) -> "FaultSchedule":
        """Crash/restart the policy on ``src -> dst`` at ``tick``."""
        return self.at(
            tick, _inj.router_restart(src, dst), name=f"restart {src}->{dst}"
        )

    def corrupt_state(
        self, src, dst, tick: int, fraction: float = 0.5
    ) -> "FaultSchedule":
        """Lose a random ``fraction`` of the policy's volatile state."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError(
                f"corruption fraction must be in [0, 1], got {fraction}"
            )
        return self.at(
            tick,
            _inj.state_corruption(src, dst, fraction),
            name=f"corrupt {src}->{dst}",
        )

    def clock_jitter(
        self, src, dst, tick: int, max_offset: int = 10
    ) -> "FaultSchedule":
        """Shift the policy's measurement phase by a random offset."""
        if max_offset < 0:
            raise ConfigError(
                f"max_offset must be >= 0, got {max_offset}"
            )
        return self.at(
            tick,
            _inj.clock_jitter(src, dst, max_offset),
            name=f"clock-jitter {src}->{dst}",
        )

    def counter_corruption(
        self, src, dst, tick: int, target: str = "ledger", skew: int = 7
    ) -> "FaultSchedule":
        """Silently skew an accounting counter (see
        :class:`~repro.faults.injectors.CounterCorruption`) — the bug
        class the :mod:`repro.sanitize` strict mode exists to catch."""
        return self.at(
            tick,
            _inj.CounterCorruption(src, dst, target=target, skew=skew),
            name=f"counter-corrupt {src}->{dst} ({target})",
        )

    # -- installation ---------------------------------------------------
    def install(self, host) -> "FaultSchedule":
        """Register the schedule as a tick hook on ``host``.

        ``host`` must expose ``add_tick_hook(hook)`` and
        ``spawn_rng(name)`` — both simulators do.  Installing the same
        schedule on several hosts is allowed (each gets its own RNG), but
        stateful injectors (:class:`~repro.faults.injectors.LinkFlap`)
        must not be shared across hosts.  The hook is a plain picklable
        object, so a host checkpointed mid-run by :mod:`repro.runner`
        resumes with the schedule (and its RNG position) intact.
        """
        host.add_tick_hook(_InstalledSchedule(self, host.spawn_rng("faults")))
        return self


@dataclass
class _InstalledSchedule:
    """One installation of a schedule on one host: the tick hook."""

    schedule: "FaultSchedule"
    rng: "random.Random"

    def __call__(self, host, tick: int) -> None:
        for event in self.schedule.events:
            if event.fires_at(tick):
                event.injector(host, tick, self.rng)
                self.schedule.log.append((tick, event.name))
