"""Bounded-memory sketch primitives for router state (ROADMAP item 3).

FLoc's per-path state — token-bucket fill levels, MTD drop counters,
conformance EWMAs — is exact but O(paths).  An adversary that churns
path identifiers (see :class:`repro.traffic.PathChurnFloodSource`) can
grow that state without bound, or, with ``max_tracked_paths`` set, force
evictions that silently destroy long-lived legitimate paths' guarantees.

This package provides the fixed-memory tier the router falls back to:

* :class:`CountMinSketch` — conservative-update count-min sketch with
  deterministic blake2b index derivation (same idiom as the Section V-B
  drop-record filter in :mod:`repro.core.dropfilter`);
* :class:`ValueSketch` — a pair of aligned count-min arrays estimating a
  per-key weighted mean (used for EWMAs, RTTs, and bucket fills);
* :class:`BoundedPathState` — the router-facing tier: evicted paths are
  *folded* into sketches and *seeded* back when their traffic returns,
  so eviction degrades estimates instead of zeroing them.

Everything here is picklable (plain ints/floats/numpy arrays, no
lambdas, no RNG) and deterministic: estimates depend only on the folded
key/value sequence, never on wall clock or iteration order.
"""

from __future__ import annotations

from .bounded import BoundedPathState
from .cms import CountMinSketch, ValueSketch, sketch_indices

__all__ = [
    "BoundedPathState",
    "CountMinSketch",
    "ValueSketch",
    "sketch_indices",
]
