"""Count-min sketch primitives with deterministic blake2b hashing.

Index derivation mirrors :func:`repro.core.dropfilter._indices`: one
blake2b digest per key yields ``depth`` independent 4-byte row offsets.
Hashing a key is therefore a pure function of ``repr(key)`` — no seeds,
no RNG, no process-dependent state — which keeps every estimate
reproducible across runs, checkpoint restores, and spawn workers.

:class:`CountMinSketch` is the classic overestimating counter sketch
with optional *conservative update* (only the cells that currently hold
the minimum are raised), which tightens the one-sided error
substantially under skewed workloads.

:class:`ValueSketch` estimates a per-key *weighted mean* from two
aligned count-min arrays (weight and weight*value).  The readout picks
the row whose weight cell is smallest — the least-collided view of the
key — and returns ``wsum / weight`` there.  Collisions therefore blend
a key's value toward other keys hashing into the same cells instead of
inflating it without bound, which is the right failure mode for EWMAs,
RTT estimates, and bucket fill fractions.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Optional, Tuple

import numpy as np

from ..errors import ConfigError

#: Inclusive bounds accepted for sketch geometry; the width floor keeps
#: the modulo bias of the 4-byte row offsets negligible and the depth
#: cap bounds the digest to blake2b's 64-byte maximum.
MIN_WIDTH = 8
MAX_DEPTH = 16


def sketch_indices(key: Hashable, depth: int, width: int) -> Tuple[int, ...]:
    """``depth`` deterministic row offsets for ``key`` in ``[0, width)``."""
    digest = hashlib.blake2b(repr(key).encode(), digest_size=4 * depth).digest()
    return tuple(
        int.from_bytes(digest[4 * i : 4 * i + 4], "big") % width
        for i in range(depth)
    )


def _validate_geometry(width: int, depth: int) -> None:
    if width < MIN_WIDTH:
        raise ConfigError(f"sketch width must be >= {MIN_WIDTH}, got {width}")
    if not 1 <= depth <= MAX_DEPTH:
        raise ConfigError(
            f"sketch depth must be in [1, {MAX_DEPTH}], got {depth}"
        )


class CountMinSketch:
    """Conservative-update count-min sketch over float counts.

    Estimates are one-sided: ``estimate(key) >= true_count`` always (for
    non-negative adds and no decay), with overestimation bounded by the
    collision mass per row.  ``scale`` multiplies every cell — the
    exponential-decay hook the router uses to age drop history.
    """

    def __init__(
        self, width: int, depth: int = 4, conservative: bool = True
    ) -> None:
        _validate_geometry(width, depth)
        self.width = width
        self.depth = depth
        self.conservative = conservative
        self._cells = np.zeros((depth, width), dtype=np.float64)

    def add(self, key: Hashable, value: float = 1.0) -> float:
        """Add ``value`` to ``key``; returns the post-update estimate."""
        rows = sketch_indices(key, self.depth, self.width)
        if self.conservative and value > 0.0:
            current = min(
                float(self._cells[i, j]) for i, j in enumerate(rows)
            )
            target = current + value
            for i, j in enumerate(rows):
                if float(self._cells[i, j]) < target:
                    self._cells[i, j] = target
            return target
        for i, j in enumerate(rows):
            self._cells[i, j] += value
        return min(float(self._cells[i, j]) for i, j in enumerate(rows))

    def estimate(self, key: Hashable) -> float:
        rows = sketch_indices(key, self.depth, self.width)
        return min(float(self._cells[i, j]) for i, j in enumerate(rows))

    def scale(self, factor: float) -> None:
        """Multiply every cell (exponential decay for ``factor`` < 1)."""
        if factor < 0.0:
            raise ConfigError(f"scale factor must be >= 0, got {factor}")
        self._cells *= factor

    def reset(self) -> None:
        self._cells.fill(0.0)

    @property
    def memory_bytes(self) -> int:
        return int(self._cells.nbytes)

    def fill_ratio(self) -> float:
        """Fraction of non-zero cells (collision-pressure indicator)."""
        return float(np.count_nonzero(self._cells)) / float(self._cells.size)


class ValueSketch:
    """Per-key weighted-mean estimator from aligned count-min arrays."""

    def __init__(self, width: int, depth: int = 4) -> None:
        _validate_geometry(width, depth)
        self.width = width
        self.depth = depth
        self._weight = np.zeros((depth, width), dtype=np.float64)
        self._wsum = np.zeros((depth, width), dtype=np.float64)

    def fold(
        self,
        key: Hashable,
        value: float,
        weight: float = 1.0,
        rows: Optional[Tuple[int, ...]] = None,
    ) -> float:
        """Blend ``value`` (mass ``weight``) into ``key``'s cells.

        Returns the post-fold estimate so callers can measure the
        readback error ``|estimate - value|`` introduced by collisions.
        ``rows`` lets a caller holding several same-geometry sketches
        compute :func:`sketch_indices` once and share it.
        """
        if weight <= 0.0:
            raise ConfigError(f"fold weight must be > 0, got {weight}")
        if rows is None:
            rows = sketch_indices(key, self.depth, self.width)
        for i, j in enumerate(rows):
            self._weight[i, j] += weight
            self._wsum[i, j] += weight * value
        return self._estimate_rows(rows, default=value)

    def estimate(
        self,
        key: Hashable,
        default: Optional[float] = None,
        rows: Optional[Tuple[int, ...]] = None,
    ) -> Optional[float]:
        """Weighted-mean estimate for ``key``; ``default`` when unseen."""
        if rows is None:
            rows = sketch_indices(key, self.depth, self.width)
        return self._estimate_rows(rows, default)

    def collided(
        self, key: Hashable, rows: Optional[Tuple[int, ...]] = None
    ) -> bool:
        """Whether every one of ``key``'s cells already holds mass."""
        if rows is None:
            rows = sketch_indices(key, self.depth, self.width)
        return all(float(self._weight[i, j]) > 0.0 for i, j in enumerate(rows))

    def _estimate_rows(
        self, rows: Tuple[int, ...], default: Optional[float]
    ) -> Optional[float]:
        best_w = 0.0
        best_sum = 0.0
        seen = False
        for i, j in enumerate(rows):
            w = float(self._weight[i, j])
            if w <= 0.0:
                return default
            if not seen or w < best_w:
                best_w = w
                best_sum = float(self._wsum[i, j])
                seen = True
        if not seen or best_w <= 0.0:
            return default
        return best_sum / best_w

    def scale(self, factor: float) -> None:
        """Decay all mass; the means survive, their confidence fades."""
        if factor < 0.0:
            raise ConfigError(f"scale factor must be >= 0, got {factor}")
        self._weight *= factor
        self._wsum *= factor

    def reset(self) -> None:
        self._weight.fill(0.0)
        self._wsum.fill(0.0)

    @property
    def memory_bytes(self) -> int:
        return int(self._weight.nbytes) + int(self._wsum.nbytes)

    def fill_ratio(self) -> float:
        return float(np.count_nonzero(self._weight)) / float(self._weight.size)
