"""The sketch-backed overflow tier behind ``FLocPolicy``.

With ``FLocConfig.state_backend = "sketch"`` the router keeps only a hot
set of ``sketch_hot_paths`` exact :class:`~repro.core.router._PathState`
entries.  When a path is evicted under memory pressure its decision-
relevant scalars are **folded** here — request-rate EWMA, RTT estimate,
conformance value, its group's token-bucket fill fraction, and (in
exact-tracker mode) its units' recent drop counts.  If the path's
traffic returns, the router **seeds** the regenerated exact state from
the sketch estimates instead of starting cold, so a long-lived
legitimate path keeps (an approximation of) its earned history across
evictions — the differential guarantee degrades with collision pressure
instead of vanishing at the first churn wave.

Memory is hard-bounded by construction: four value sketches, one
count-min sketch, and one Bloom bit-array, all sized by
``sketch_width``/``sketch_depth`` at configuration time and never
resized.  Collisions are *measured*, not hidden: every fold records the
readback error on the folded rate, and folds landing entirely on
already-occupied cells count as collisions.  The router exports these
through telemetry (``sketch_*`` metrics) and the ablation benchmark
(``benchmarks/sketch_bench.py``) reports them per budget.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from ..core.pathid import PathId
from .cms import CountMinSketch, ValueSketch, sketch_indices


class BoundedPathState:
    """Fixed-memory fold/seed tier for evicted per-path router state."""

    def __init__(self, width: int, depth: int = 4) -> None:
        self.width = width
        self.depth = depth
        self.lambda_sketch = ValueSketch(width, depth)
        self.rtt_sketch = ValueSketch(width, depth)
        self.conformance_sketch = ValueSketch(width, depth)
        self.bucket_fill_sketch = ValueSketch(width, depth)
        # conservative CMS of recent per-unit drop counts so an attack
        # unit's MTD history survives its path's eviction; decayed by the
        # router each measurement interval (exponential forgetting)
        self.unit_drop_sketch = CountMinSketch(width, depth, conservative=True)
        # Bloom membership of folded keys: distinguishes a genuine
        # revival (key folded earlier) from a collision-only hit
        self._seen_bits = np.zeros(8 * width, dtype=bool)
        self.folds_total = 0
        self.revivals_total = 0
        self.collisions_total = 0
        self.fold_abs_error_total = 0.0

    # ------------------------------------------------------------------
    # membership bloom
    # ------------------------------------------------------------------
    def _bloom_rows(self, namespace: str, key: Hashable) -> Tuple[int, ...]:
        return sketch_indices((namespace, key), self.depth, 8 * self.width)

    def _bloom_contains(self, rows: Tuple[int, ...]) -> bool:
        return all(bool(self._seen_bits[j]) for j in rows)

    def _bloom_add(self, rows: Tuple[int, ...]) -> None:
        for j in rows:
            self._seen_bits[j] = True

    # ------------------------------------------------------------------
    # per-path fold / seed
    # ------------------------------------------------------------------
    def fold_path(
        self,
        pid: PathId,
        lambda_rate: float,
        rtt_ewma: float,
        conformance: Optional[float],
    ) -> None:
        """Fold an evicted path's scalars into the sketches."""
        # one index computation shared by every same-geometry sketch;
        # one more for the (wider) bloom
        rows = sketch_indices(pid, self.depth, self.width)
        bloom = self._bloom_rows("path", pid)
        if not self._bloom_contains(bloom) and self.lambda_sketch.collided(
            pid, rows=rows
        ):
            self.collisions_total += 1
        self._bloom_add(bloom)
        readback = self.lambda_sketch.fold(pid, lambda_rate, rows=rows)
        if readback is not None:
            self.fold_abs_error_total += abs(readback - lambda_rate)
        self.rtt_sketch.fold(pid, rtt_ewma, rows=rows)
        if conformance is not None:
            self.conformance_sketch.fold(pid, conformance, rows=rows)
        self.folds_total += 1

    def seed_path(
        self, pid: PathId
    ) -> Optional[Tuple[float, float, Optional[float]]]:
        """Estimates ``(lambda_rate, rtt_ewma, conformance)`` for a
        returning path, or ``None`` if it was never folded (modulo Bloom
        false positives, which surface as blended estimates)."""
        if not self._bloom_contains(self._bloom_rows("path", pid)):
            return None
        rows = sketch_indices(pid, self.depth, self.width)
        lam = self.lambda_sketch.estimate(pid, rows=rows)
        if lam is None:
            return None
        rtt = self.rtt_sketch.estimate(pid, rows=rows)
        conf = self.conformance_sketch.estimate(pid, rows=rows)
        self.revivals_total += 1
        return (max(0.0, lam), rtt if rtt is not None else 0.0, conf)

    # ------------------------------------------------------------------
    # token-bucket fill continuity
    # ------------------------------------------------------------------
    def fold_bucket(self, key: Hashable, fill_fraction: float) -> None:
        """Remember a retiring group's bucket fill (0 = drained)."""
        self._bloom_add(self._bloom_rows("bucket", key))
        self.bucket_fill_sketch.fold(
            key, min(1.0, max(0.0, fill_fraction))
        )

    def seed_bucket(self, key: Hashable) -> Optional[float]:
        """Estimated fill fraction for a re-created group's bucket."""
        if not self._bloom_contains(self._bloom_rows("bucket", key)):
            return None
        fill = self.bucket_fill_sketch.estimate(key)
        if fill is None:
            return None
        return min(1.0, max(0.0, fill))

    # ------------------------------------------------------------------
    # per-unit drop history (exact-tracker mode only; the Section V-B
    # drop filter is itself hash-indexed and survives eviction unaided)
    # ------------------------------------------------------------------
    def fold_unit_drops(self, key: Hashable, drops: float) -> None:
        if drops > 0.0:
            self.unit_drop_sketch.add(key, drops)

    def unit_drop_estimate(self, key: Hashable) -> float:
        return self.unit_drop_sketch.estimate(key)

    def decay_drops(self, factor: float) -> None:
        """Age drop history (called once per measurement interval)."""
        self.unit_drop_sketch.scale(factor)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        return (
            self.lambda_sketch.memory_bytes
            + self.rtt_sketch.memory_bytes
            + self.conformance_sketch.memory_bytes
            + self.bucket_fill_sketch.memory_bytes
            + self.unit_drop_sketch.memory_bytes
            + int(self._seen_bits.nbytes)
        )

    def stats(self) -> Dict[str, float]:
        """Counters the router exports through telemetry gauges."""
        return {
            "folds": float(self.folds_total),
            "revivals": float(self.revivals_total),
            "collisions": float(self.collisions_total),
            "fold_abs_error_total": self.fold_abs_error_total,
            "fill_ratio": self.lambda_sketch.fill_ratio(),
            "memory_bytes": float(self.memory_bytes),
        }
