"""Exception hierarchy for the FLoc reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with others."""


class TopologyError(ReproError):
    """The network topology is malformed (unknown node, no route, ...)."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class CapabilityError(ReproError):
    """A capability failed verification or violated the fanout limit."""


class InvariantViolation(SimulationError):
    """A runtime invariant check failed (see :mod:`repro.sanitize`).

    Carries the tick the violation was detected at, the invariant's name,
    and a human-readable diagnostic, so strict-mode failures pinpoint the
    corrupted counter rather than surfacing as a wrong figure row.
    """

    def __init__(self, invariant: str, tick: int, detail: str) -> None:
        super().__init__(f"[tick {tick}] invariant {invariant!r} violated: {detail}")
        self.invariant = invariant
        self.tick = tick
        self.detail = detail


class RunnerError(ReproError):
    """The supervised experiment runner failed (see :mod:`repro.runner`)."""


class CheckpointError(RunnerError):
    """A checkpoint could not be written, read, or verified."""


class DeadlineExceeded(RunnerError):
    """A supervised job ran past its watchdog deadline."""


class Interrupted(RunnerError):
    """A supervised job was stopped by a shutdown signal (SIGTERM/SIGINT)
    after checkpointing its progress; re-run with ``--resume`` to
    continue."""


class ShardBarrierTimeout(RunnerError):
    """A shard waited past its deadline for a peer's barrier-exchange
    round (the peer is dead, stalled, or quarantined).

    Deliberately *retryable* (not in the fleet's NON_RETRYABLE set): the
    straggler restarts from its last barrier checkpoint, and if the dead
    peer was salvaged in the meantime the rejoin succeeds; repeated
    timeouts exhaust the retry policy and fail loudly instead of
    returning a silent partial result."""
