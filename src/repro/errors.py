"""Exception hierarchy for the FLoc reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with others."""


class TopologyError(ReproError):
    """The network topology is malformed (unknown node, no route, ...)."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class CapabilityError(ReproError):
    """A capability failed verification or violated the fanout limit."""
