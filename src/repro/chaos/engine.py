"""The chaos sweep: sample N campaigns, run each as a supervised unit.

Each campaign executes as one crash-isolated unit of a
:class:`~repro.runner.supervisor.SupervisedRunner` job: a crash inside
campaign 7 is retried per the runner's policy and, failing that, recorded
as a failed unit without taking down campaigns 8..N; with a checkpoint
store a killed sweep resumes past every completed campaign.  Unit results
are plain dicts of primitives, so they ride through the runner's pickle
checkpoints unchanged.

On an SLO violation the unit delta-debugs the campaign down to a minimal
reproducer (:mod:`repro.chaos.shrink`) and writes a replay artifact
(:mod:`repro.chaos.artifact`) into the sweep's artifact directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..runner import CheckpointStore, RetryPolicy, SupervisedRunner
from ..runner.supervisor import JobReport, UnitContext
from ..trace import current_tracer
from .artifact import write_artifact
from .campaign import run_campaign
from .shrink import shrink_campaign
from .spec import (
    SIMULATORS,
    CampaignSpec,
    SloSpec,
    exhaustion_campaign,
    sample_campaign,
)


@dataclass
class ChaosOptions:
    """Everything one ``repro chaos`` sweep is parameterized by."""

    seed: int = 0
    campaigns: int = 3
    simulator: str = "both"  # "packet" | "fluid" | "both"
    include_silent: bool = False
    slo: Optional[SloSpec] = None  # None = per-simulator default catalog
    shrink: bool = True
    max_shrink_trials: int = 64
    artifact_dir: Optional[str] = "chaos-artifacts"
    #: Extra state-exhaustion campaigns (path-churn flood vs a bounded
    #: memory budget) appended after the sampled ones; 0 = none.
    exhaustion: int = 0
    #: Router state backend for the exhaustion campaigns.
    state_backend: str = "sketch"
    #: Hard per-router path budget for the exhaustion campaigns; None
    #: leaves the backend's default hot-tier size in charge.
    max_tracked_paths: Optional[int] = None

    def validate(self) -> None:
        if self.campaigns < 1:
            raise ConfigError(
                f"campaigns must be >= 1, got {self.campaigns}"
            )
        if self.exhaustion < 0:
            raise ConfigError(
                f"exhaustion must be >= 0, got {self.exhaustion}"
            )
        if self.simulator not in SIMULATORS + ("both",):
            raise ConfigError(
                f"simulator must be one of {SIMULATORS + ('both',)}, got "
                f"{self.simulator!r}"
            )
        if self.max_shrink_trials < 1:
            raise ConfigError(
                f"max_shrink_trials must be >= 1, got "
                f"{self.max_shrink_trials}"
            )


class CampaignJob:
    """One campaign as a supervised unit (a plain picklable callable).

    Returns a dict of primitives: the spec, the run digest, per-SLO
    verdict rows, and — when the campaign violated an SLO and shrinking
    is on — the shrink summary and the written artifact path.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        shrink: bool = True,
        max_shrink_trials: int = 64,
        artifact_dir: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.shrink = shrink
        self.max_shrink_trials = max_shrink_trials
        self.artifact_dir = artifact_dir

    def __call__(self, ctx: UnitContext) -> Dict[str, Any]:
        tracer = current_tracer()
        with tracer.span(
            "campaign.run", cat="campaign",
            parent=ctx.trace_parent, simulator=self.spec.simulator,
        ) as span:
            result = run_campaign(self.spec)
            span.end(ok=result.ok)
        out: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "simulator": self.spec.simulator,
            "ok": result.ok,
            "digest": result.digest,
            "verdicts": result.report.rows(),
            "provenance": dict(result.measurements.drop_provenance),
            "artifact": None,
            "shrink": None,
        }
        violated = result.report.violated()
        if violated is None or not self.shrink:
            return out
        with tracer.span(
            "campaign.shrink", cat="campaign",
            parent=ctx.trace_parent, slo=violated.slo,
        ) as span:
            shrunk = shrink_campaign(
                self.spec,
                violated.slo,
                max_trials=self.max_shrink_trials,
            )
            span.end(trials=shrunk.trials)
        out["shrink"] = {
            "slo": shrunk.slo,
            "trials": shrunk.trials,
            "steps": list(shrunk.steps),
            "minimal_spec": shrunk.minimal.to_dict(),
            "minimal_digest": shrunk.final.digest,
        }
        if self.artifact_dir is not None:
            path = write_artifact(
                shrunk,
                Path(self.artifact_dir) / f"reproducer-{ctx.name}.json",
            )
            out["artifact"] = str(path)
            tracer.event(
                "artifact.write", cat="campaign",
                parent=ctx.trace_parent, path=str(path),
            )
        return out


@dataclass
class ChaosReport:
    """Outcome of one sweep: the runner's job report plus SLO tallies."""

    job: JobReport
    specs: List[CampaignSpec] = field(default_factory=list)

    @property
    def campaigns(self) -> List[Dict[str, Any]]:
        """Completed campaign results, in sweep order."""
        return [
            self.job.results[name] for name in sorted(self.job.results)
        ]

    @property
    def violations(self) -> List[Dict[str, Any]]:
        return [c for c in self.campaigns if not c["ok"]]

    @property
    def artifacts(self) -> List[str]:
        return [
            c["artifact"] for c in self.campaigns if c["artifact"] is not None
        ]

    @property
    def status(self) -> str:
        """Sweep status: the job status, except a clean job with SLO
        violations reports ``"violations"``."""
        if self.job.status == "ok" and self.violations:
            return "violations"
        return self.job.status


def build_chaos_units(
    options: ChaosOptions,
) -> List[Tuple[str, CampaignJob]]:
    """The sweep's supervised unit list (deterministic in options)."""
    units: List[Tuple[str, CampaignJob]] = []
    for index in range(options.campaigns):
        spec = sample_campaign(
            options.seed,
            index,
            simulator=options.simulator,
            slo=options.slo,
            include_silent=options.include_silent,
        )
        units.append(
            (
                f"campaign-{index:03d}",
                CampaignJob(
                    spec,
                    shrink=options.shrink,
                    max_shrink_trials=options.max_shrink_trials,
                    artifact_dir=options.artifact_dir,
                ),
            )
        )
    for index in range(options.exhaustion):
        spec = exhaustion_campaign(
            options.seed,
            index,
            slo=options.slo,
            state_backend=options.state_backend,
            max_tracked_paths=options.max_tracked_paths,
        )
        units.append(
            (
                f"exhaustion-{index:03d}",
                CampaignJob(
                    spec,
                    shrink=options.shrink,
                    max_shrink_trials=options.max_shrink_trials,
                    artifact_dir=options.artifact_dir,
                ),
            )
        )
    return units


def run_chaos(
    options: ChaosOptions,
    store: Optional[CheckpointStore] = None,
    deadline_seconds: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run one chaos sweep under runner supervision."""
    options.validate()
    units = build_chaos_units(options)
    runner = SupervisedRunner(
        store=store,
        deadline_seconds=deadline_seconds,
        retry=RetryPolicy(seed=options.seed),
        log=log,
    )
    fingerprint = {
        "kind": "chaos-sweep",
        "seed": options.seed,
        "campaigns": options.campaigns,
        "simulator": options.simulator,
        "include_silent": options.include_silent,
    }
    if options.exhaustion:
        # keyed in only when requested so pre-existing sweep checkpoints
        # keep their fingerprints
        fingerprint["exhaustion"] = options.exhaustion
        fingerprint["state_backend"] = options.state_backend
        fingerprint["max_tracked_paths"] = options.max_tracked_paths
    job = runner.run_units(units, job_fingerprint=fingerprint)
    return ChaosReport(job=job, specs=[unit[1].spec for unit in units])
