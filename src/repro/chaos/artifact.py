"""Replay artifacts: the on-disk record of a shrunken reproducer.

An artifact is a single JSON file, written with ``sort_keys=True`` and a
fixed indent so the same reproducer always serializes to the same bytes
(CI diffs artifacts across runs to detect nondeterminism).  Format,
version ``1``:

.. code-block:: json

    {
      "format": "repro-chaos-reproducer",
      "version": 1,
      "slo": "floor",
      "detail": "min legit share 0.1412 in window 5 ...",
      "digest": "sha256 hex of the minimal spec's run measurements",
      "minimal": true,
      "shrink": {"trials": 17, "steps": ["drop fault ...", "..."]},
      "spec": { ... CampaignSpec.to_dict() ... },
      "original_spec": { ... the unshrunken campaign ... }
    }

``repro chaos --replay file.json`` loads ``spec``, re-runs it, and
checks (a) the recorded SLO still fails and (b) the run digest matches —
so an artifact is an executable, self-verifying bug report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import ConfigError
from .campaign import CampaignResult, run_campaign
from .shrink import ShrinkResult
from .spec import CampaignSpec

FORMAT_NAME = "repro-chaos-reproducer"
FORMAT_VERSION = 1


def artifact_dict(shrink: ShrinkResult) -> Dict[str, Any]:
    """The canonical artifact payload for one shrink result."""
    verdict = None
    for v in shrink.final.report.verdicts:
        if v.slo == shrink.slo:
            verdict = v
            break
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "slo": shrink.slo,
        "detail": verdict.detail if verdict is not None else "",
        "digest": shrink.final.digest,
        "minimal": shrink.final.report.violates(shrink.slo),
        "shrink": {"trials": shrink.trials, "steps": list(shrink.steps)},
        "spec": shrink.minimal.to_dict(),
        "original_spec": shrink.original.to_dict(),
    }


def dump_artifact(shrink: ShrinkResult) -> str:
    """Byte-stable JSON text of the artifact (trailing newline included)."""
    return (
        json.dumps(artifact_dict(shrink), sort_keys=True, indent=2) + "\n"
    )


def write_artifact(shrink: ShrinkResult, path: Union[str, Path]) -> Path:
    """Write the artifact; returns the resolved path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(dump_artifact(shrink))
    return out


def load_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and structurally validate an artifact file."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigError(f"cannot read artifact {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"artifact {path} is not JSON: {exc}") from None
    if not isinstance(data, dict) or data.get("format") != FORMAT_NAME:
        raise ConfigError(
            f"artifact {path} is not a {FORMAT_NAME} file"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ConfigError(
            f"artifact {path} has format version {data.get('version')!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    for key in ("slo", "digest", "spec"):
        if key not in data:
            raise ConfigError(f"artifact {path} is missing {key!r}")
    return data


def replay_artifact(path: Union[str, Path]) -> "ReplayOutcome":
    """Re-execute an artifact's minimal spec and check it still reproduces.

    The replayed run must (a) violate the recorded SLO and (b) produce
    the recorded run digest.  Replay verification inside the run is
    skipped — the digest comparison against the artifact *is* the replay
    check.
    """
    data = load_artifact(path)
    spec = CampaignSpec.from_dict(data["spec"])
    result = run_campaign(spec, verify_replay=False)
    return ReplayOutcome(
        slo=data["slo"],
        expected_digest=data["digest"],
        result=result,
        violation_reproduced=result.report.violates(data["slo"]),
        digest_matched=result.digest == data["digest"],
    )


class ReplayOutcome:
    """What happened when an artifact was replayed."""

    def __init__(
        self,
        slo: str,
        expected_digest: str,
        result: CampaignResult,
        violation_reproduced: bool,
        digest_matched: bool,
    ) -> None:
        self.slo = slo
        self.expected_digest = expected_digest
        self.result = result
        self.violation_reproduced = violation_reproduced
        self.digest_matched = digest_matched

    @property
    def ok(self) -> bool:
        return self.violation_reproduced and self.digest_matched

    def summary(self) -> str:
        if self.ok:
            return (
                f"reproduced: SLO '{self.slo}' still violated, digest "
                f"matches {self.expected_digest[:12]}…"
            )
        problems = []
        if not self.violation_reproduced:
            problems.append(f"SLO '{self.slo}' no longer violated")
        if not self.digest_matched:
            problems.append(
                f"digest mismatch (expected {self.expected_digest[:12]}…, "
                f"got {self.result.digest[:12]}…)"
            )
        return "replay FAILED: " + "; ".join(problems)
