"""Deterministic chaos campaigns with resilience SLOs and auto-shrinking.

The chaos engine stress-tests FLoc's dependability story end to end: it
samples *campaigns* — compositions of infrastructure faults
(:mod:`repro.faults`) and adaptive adversaries
(:mod:`repro.traffic.adaptive`) — runs each on either simulator under a
catalog of resilience SLOs (legitimate-share floor, bounded recovery,
sanitizer-clean, replay-identical), and on any violation delta-debugs the
campaign down to a minimal, replayable reproducer artifact.

Layers (bottom-up):

* :mod:`~repro.chaos.spec` — the typed campaign space: frozen dataclass
  specs, validation, JSON round-tripping, seed-deterministic sampling.
* :mod:`~repro.chaos.slo` — the SLO oracles, pure arithmetic over a
  run's measurements.
* :mod:`~repro.chaos.campaign` — spec interpretation on the packet
  engine or the fluid simulator; the sha256 run digest.
* :mod:`~repro.chaos.shrink` — greedy delta-debugging to a 1-minimal
  failing spec.
* :mod:`~repro.chaos.artifact` — byte-stable replay JSON artifacts and
  ``--replay`` verification.
* :mod:`~repro.chaos.engine` — the sweep: each campaign a crash-isolated
  :class:`~repro.runner.supervisor.SupervisedRunner` unit.

Everything is deterministic in ``(seed, options)``: sampled specs, run
measurements, shrink trajectories, and artifact bytes.
"""

from .artifact import (
    ReplayOutcome,
    dump_artifact,
    load_artifact,
    replay_artifact,
    write_artifact,
)
from .campaign import (
    CampaignResult,
    Measurements,
    execute_campaign,
    run_campaign,
    run_digest,
)
from .engine import (
    CampaignJob,
    ChaosOptions,
    ChaosReport,
    build_chaos_units,
    run_chaos,
)
from .shrink import ShrinkResult, shrink_campaign
from .slo import (
    SLO_NAMES,
    SloReport,
    SloVerdict,
    WindowShare,
    evaluate_slos,
)
from .spec import (
    ATTACKER_MUTATIONS,
    FLUID_FAULT_KINDS,
    PACKET_FAULT_KINDS,
    SIMULATORS,
    AttackerSpec,
    CampaignSpec,
    FaultSpec,
    SloSpec,
    default_slo,
    sample_campaign,
    with_slo,
)

__all__ = [
    "ATTACKER_MUTATIONS",
    "FLUID_FAULT_KINDS",
    "PACKET_FAULT_KINDS",
    "SIMULATORS",
    "SLO_NAMES",
    "AttackerSpec",
    "CampaignJob",
    "CampaignResult",
    "CampaignSpec",
    "ChaosOptions",
    "ChaosReport",
    "FaultSpec",
    "Measurements",
    "ReplayOutcome",
    "ShrinkResult",
    "SloReport",
    "SloSpec",
    "SloVerdict",
    "WindowShare",
    "build_chaos_units",
    "default_slo",
    "dump_artifact",
    "evaluate_slos",
    "execute_campaign",
    "load_artifact",
    "replay_artifact",
    "run_campaign",
    "run_chaos",
    "run_digest",
    "sample_campaign",
    "shrink_campaign",
    "with_slo",
    "write_artifact",
]
