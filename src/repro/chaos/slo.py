"""Resilience SLO oracles: judge one campaign's measurements.

The oracle layer is pure arithmetic over a campaign's *measurements* —
per-window legitimate bandwidth shares, the sanitizer's violation count,
and (optionally) a replay digest comparison — so every oracle is
unit-testable without running a simulator.

SLO catalog (see :class:`~repro.chaos.spec.SloSpec` for the knobs):

========== ==========================================================
``floor``           legitimate share >= ``floor`` in every window that
                    does not overlap a fault's *impact interval*
``recovery``        legitimate share back within ``epsilon`` of its
                    pre-fault mean by ``clear + warmup + slack``
``sanitizer``       zero runtime invariant violations (strict mode)
``replay``          two executions of the spec produce byte-identical
                    run digests
========== ==========================================================

*Impact intervals* extend each fault past its clear tick by a settle
allowance (one measurement window, matching the defense's configured
``restart_warmup_ticks``), because the guarantee the paper makes is about
steady state, not the ticks in which state is being rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .spec import CampaignSpec, FaultSpec

#: Oracle names, in evaluation (and severity-of-report) order.
SLO_NAMES = ("floor", "recovery", "sanitizer", "replay", "bounded_state")


@dataclass(frozen=True)
class WindowShare:
    """Legitimate-traffic share of target capacity over one window."""

    index: int
    start: int
    stop: int
    legit_share: float


@dataclass(frozen=True)
class SloVerdict:
    """One oracle's judgement of one campaign run."""

    slo: str
    ok: bool
    detail: str


@dataclass
class SloReport:
    """All verdicts for one campaign run."""

    verdicts: List[SloVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def violated(self) -> Optional[SloVerdict]:
        """The first failing verdict, in :data:`SLO_NAMES` order."""
        for verdict in self.verdicts:
            if not verdict.ok:
                return verdict
        return None

    def violates(self, slo: str) -> bool:
        """Whether the named oracle failed in this report."""
        return any(v.slo == slo and not v.ok for v in self.verdicts)

    def rows(self) -> List[List[str]]:
        return [
            [v.slo, "ok" if v.ok else "VIOLATED", v.detail]
            for v in self.verdicts
        ]


# ----------------------------------------------------------------------
# fault timing helpers
# ----------------------------------------------------------------------
def settle_ticks(spec: CampaignSpec) -> int:
    """Post-clear settle allowance: the defense's warm-up window."""
    return spec.window_ticks


def impact_interval(fault: FaultSpec, spec: CampaignSpec) -> Tuple[int, int]:
    """``[start, stop)`` ticks during which the fault excuses the floor."""
    return fault.tick, fault.clear_tick() + settle_ticks(spec)


def last_clear_tick(spec: CampaignSpec) -> Optional[int]:
    """When the last fault condition is gone; None without faults."""
    if not spec.faults:
        return None
    return max(f.clear_tick() for f in spec.faults)


def first_fault_tick(spec: CampaignSpec) -> Optional[int]:
    if not spec.faults:
        return None
    return min(f.tick for f in spec.faults)


def recovery_deadline(spec: CampaignSpec) -> Optional[int]:
    """Tick by which the legitimate share must have recovered:
    ``last clear + restart_warmup_ticks + K`` (the campaign configures
    the defense's warm-up to one window; ``K`` is the SLO slack)."""
    clear = last_clear_tick(spec)
    if clear is None:
        return None
    return clear + settle_ticks(spec) + spec.slo.recovery_slack_ticks


def _overlaps(window: WindowShare, interval: Tuple[int, int]) -> bool:
    start, stop = interval
    return window.start < stop and start < window.stop


# ----------------------------------------------------------------------
# oracles
# ----------------------------------------------------------------------
def _provenance_detail(drop_provenance: Optional[Dict[str, float]]) -> str:
    """Cause attribution suffix for the floor verdict's detail line.

    Top three traced drop causes by volume (ties broken by name), so a
    failing floor immediately says *why* legitimate traffic lost share
    — e.g. preferential drops at the defense vs plain queue overflow.
    Empty when no provenance was traced.
    """
    if not drop_provenance:
        return ""
    top = sorted(drop_provenance.items(), key=lambda kv: (-kv[1], kv[0]))
    parts = [f"{cause}={value:g}" for cause, value in top[:3]]
    return "; traced drops: " + ", ".join(parts)


def _floor_verdict(
    spec: CampaignSpec,
    windows: List[WindowShare],
    drop_provenance: Optional[Dict[str, float]] = None,
) -> SloVerdict:
    intervals = [impact_interval(f, spec) for f in spec.faults]
    judged = [
        w
        for w in windows
        if not any(_overlaps(w, iv) for iv in intervals)
    ]
    if not judged:
        return SloVerdict(
            "floor", True, "skipped: every window overlaps a fault"
        )
    worst = min(judged, key=_share_key)
    ok = worst.legit_share >= spec.slo.floor
    return SloVerdict(
        "floor",
        ok,
        f"min legit share {worst.legit_share:.4f} in window "
        f"{worst.index} [{worst.start}, {worst.stop}) vs floor "
        f"{spec.slo.floor:.4f} ({len(judged)}/{len(windows)} windows "
        f"judged)" + _provenance_detail(drop_provenance),
    )


def _share_key(window: WindowShare) -> Tuple[float, int]:
    return (window.legit_share, window.index)


def _recovery_verdict(
    spec: CampaignSpec, windows: List[WindowShare]
) -> SloVerdict:
    deadline = recovery_deadline(spec)
    fault_start = first_fault_tick(spec)
    if deadline is None or fault_start is None:
        return SloVerdict("recovery", True, "skipped: no faults scheduled")
    pre = [w for w in windows if w.stop <= fault_start]
    post = [w for w in windows if w.start >= deadline]
    if not pre:
        return SloVerdict(
            "recovery", True, "skipped: no fault-free pre-fault window"
        )
    if not post:
        return SloVerdict(
            "recovery",
            True,
            f"skipped: no window at or after the recovery deadline "
            f"(tick {deadline})",
        )
    pre_mean = sum(w.legit_share for w in pre) / len(pre)
    post_mean = sum(w.legit_share for w in post) / len(post)
    ok = post_mean >= pre_mean - spec.slo.epsilon
    return SloVerdict(
        "recovery",
        ok,
        f"post-deadline mean {post_mean:.4f} vs pre-fault mean "
        f"{pre_mean:.4f} (epsilon {spec.slo.epsilon:.4f}, deadline tick "
        f"{deadline})",
    )


def _sanitizer_verdict(
    spec: CampaignSpec, sanitizer_violations: int
) -> SloVerdict:
    if spec.slo.sanitize == "off":
        return SloVerdict("sanitizer", True, "skipped: sanitizer off")
    if spec.slo.sanitize == "record":
        return SloVerdict(
            "sanitizer",
            True,
            f"recorded {sanitizer_violations} violation(s) (record mode "
            f"does not fail the SLO)",
        )
    ok = sanitizer_violations == 0
    return SloVerdict(
        "sanitizer",
        ok,
        f"{sanitizer_violations} runtime invariant violation(s)",
    )


def _replay_verdict(replay_matched: Optional[bool]) -> SloVerdict:
    if replay_matched is None:
        return SloVerdict("replay", True, "skipped: replay not verified")
    return SloVerdict(
        "replay",
        replay_matched,
        "re-execution digest "
        + ("matches" if replay_matched else "DIVERGES — nondeterminism"),
    )


def _bounded_state_verdict(
    spec: CampaignSpec,
    windows: List[WindowShare],
    eviction_stats: Optional[Dict[str, int]],
    tracked_paths_peak: int,
) -> SloVerdict:
    """Degradation SLO: the differential-guarantee floor for long-lived
    legitimate paths must survive identifier churn at a fixed memory
    budget, and the budget itself must actually hold.

    Judged over the same fault-excused windows as the ``floor`` oracle
    (churn pressure is the adversary under test, not a fault), against
    ``slo.bounded_floor`` — deliberately separate from ``slo.floor`` so
    bounded-memory campaigns can state how much degradation eviction
    pressure is allowed to cost.
    """
    if spec.slo.bounded_floor is None:
        return SloVerdict(
            "bounded_state", True, "skipped: no bounded-state floor set"
        )
    evictions = (eviction_stats or {}).get("memory-pressure", 0)
    budget = spec.max_tracked_paths
    intervals = [impact_interval(f, spec) for f in spec.faults]
    judged = [
        w for w in windows if not any(_overlaps(w, iv) for iv in intervals)
    ]
    if not judged:
        return SloVerdict(
            "bounded_state", True, "skipped: every window overlaps a fault"
        )
    worst = min(judged, key=_share_key)
    ok = worst.legit_share >= spec.slo.bounded_floor
    budget_detail = ""
    if budget is not None:
        within = tracked_paths_peak <= budget
        ok = ok and within
        budget_detail = (
            f"; peak tracked paths {tracked_paths_peak} vs budget "
            f"{budget}" + ("" if within else " EXCEEDED")
        )
    return SloVerdict(
        "bounded_state",
        ok,
        f"min legit share {worst.legit_share:.4f} in window {worst.index} "
        f"vs bounded floor {spec.slo.bounded_floor:.4f} under "
        f"{evictions} memory-pressure eviction(s)" + budget_detail,
    )


def evaluate_slos(
    spec: CampaignSpec,
    windows: List[WindowShare],
    sanitizer_violations: int,
    replay_matched: Optional[bool] = None,
    drop_provenance: Optional[Dict[str, float]] = None,
    eviction_stats: Optional[Dict[str, int]] = None,
    tracked_paths_peak: int = 0,
) -> SloReport:
    """Judge one campaign run against its full SLO catalog.

    ``drop_provenance`` is the campaign's traced per-cause drop totals
    (see :meth:`repro.telemetry.Telemetry.drop_provenance`); when given,
    the floor verdict's detail attributes the loss to its top causes.
    Provenance never changes a verdict's ``ok`` — it annotates.
    ``eviction_stats`` / ``tracked_paths_peak`` are the policy's state-
    pressure measurements feeding the ``bounded_state`` oracle.
    """
    return SloReport(
        verdicts=[
            _floor_verdict(spec, windows, drop_provenance),
            _recovery_verdict(spec, windows),
            _sanitizer_verdict(spec, sanitizer_violations),
            _replay_verdict(replay_matched),
            _bounded_state_verdict(
                spec, windows, eviction_stats, tracked_paths_peak
            ),
        ]
    )
