"""Delta-debugging: shrink a failing campaign to a minimal reproducer.

Given a spec whose run violates some SLO, the shrinker repeatedly tries
*candidate edits* — drop one fault, remove one attacker squad, strip one
mutation from a squad, shorten a windowed fault's duration — keeping an
edit whenever the edited spec still violates the *same* SLO, and runs to
a greedy fixpoint.  At the fixpoint no single remaining fault, squad, or
mutation can be removed without the violation disappearing, which is
exactly the 1-minimality the reproducer artifact promises.

Everything here is deterministic: candidate order is fixed, each trial is
one :func:`~repro.chaos.campaign.run_campaign` execution (replay
verification off — one run per trial), and the final minimal spec is
re-run *with* replay verification so the artifact records a digest the
``--replay`` path can trust.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from .campaign import CampaignResult, run_campaign
from .spec import WINDOWED_FAULT_KINDS, CampaignSpec

#: An edit proposal: (description, edited spec).
Candidate = Tuple[str, CampaignSpec]


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    original: CampaignSpec
    minimal: CampaignSpec
    slo: str  # the violated SLO the shrink preserved
    final: CampaignResult  # the minimal spec's (replay-verified) run
    trials: int = 0  # executions spent probing candidates
    steps: List[str] = field(default_factory=list)  # accepted edits

    @property
    def removed(self) -> int:
        return len(self.steps)


def _without_index(items: tuple, index: int) -> tuple:
    return items[:index] + items[index + 1 :]


def _candidates(spec: CampaignSpec) -> List[Candidate]:
    """All single-step simplifications of ``spec``, in a fixed order.

    Ordered coarse-to-fine: whole faults first, then whole squads, then
    per-squad mutations, then fault-duration halving — so the greedy pass
    discards big components before polishing small ones.
    """
    out: List[Candidate] = []
    for i, fault in enumerate(spec.faults):
        out.append(
            (
                f"drop fault {fault.kind}@{fault.tick}",
                replace(spec, faults=_without_index(spec.faults, i)),
            )
        )
    for i, squad in enumerate(spec.attackers):
        out.append(
            (
                f"drop attacker squad {i} ({squad.kind} x{squad.bots})",
                replace(spec, attackers=_without_index(spec.attackers, i)),
            )
        )
    for i, squad in enumerate(spec.attackers):
        for j, mutation in enumerate(squad.mutations):
            smaller = replace(
                squad, mutations=_without_index(squad.mutations, j)
            )
            out.append(
                (
                    f"strip mutation {mutation!r} from squad {i}",
                    replace(
                        spec,
                        attackers=spec.attackers[:i]
                        + (smaller,)
                        + spec.attackers[i + 1 :],
                    ),
                )
            )
    for i, fault in enumerate(spec.faults):
        if fault.kind in WINDOWED_FAULT_KINDS and fault.duration >= 2:
            shorter = replace(fault, duration=fault.duration // 2)
            out.append(
                (
                    f"halve {fault.kind}@{fault.tick} duration to "
                    f"{shorter.duration}",
                    replace(
                        spec,
                        faults=spec.faults[:i]
                        + (shorter,)
                        + spec.faults[i + 1 :],
                    ),
                )
            )
    return out


def shrink_campaign(
    spec: CampaignSpec,
    slo: str,
    max_trials: int = 64,
    log: Optional[Callable[[str], None]] = None,
) -> ShrinkResult:
    """Shrink ``spec`` while it keeps violating ``slo``.

    ``spec`` must already be a confirmed violator of ``slo`` (callers pass
    the SLO name from the original run's report).  ``max_trials`` bounds
    total trial executions; on exhaustion the current (still-violating)
    spec is returned — possibly not 1-minimal, which the artifact records.
    """

    def emit(message: str) -> None:
        if log is not None:
            log(message)

    current = spec
    trials = 0
    steps: List[str] = []
    exhausted = False
    progress = True
    while progress and not exhausted:
        progress = False
        for description, candidate in _candidates(current):
            if trials >= max_trials:
                exhausted = True
                break
            trials += 1
            result = run_campaign(candidate, verify_replay=False)
            if result.report.violates(slo):
                emit(f"shrink: kept edit '{description}' ({trials} trials)")
                current = candidate
                steps.append(description)
                progress = True
                break  # restart candidate enumeration from the new spec
            emit(f"shrink: rejected '{description}' (violation vanished)")

    final = run_campaign(current, verify_replay=True)
    return ShrinkResult(
        original=spec,
        minimal=current,
        slo=slo,
        final=final,
        trials=trials,
        steps=steps,
    )
