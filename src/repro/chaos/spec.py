"""The typed campaign space: specs, validation, serialization, sampling.

A *campaign* is one complete chaos experiment: a simulator choice, a run
shape (warmup plus ``n_windows`` measurement windows of ``window_ticks``
each), a composition of fault events, a set of adaptive attacker squads,
and the resilience SLOs the run is judged against.  Campaign specs are

* **typed** — plain frozen dataclasses over primitives and tuples;
* **picklable and JSON-round-trippable** — no callables anywhere, so a
  spec can ride through :mod:`repro.runner` checkpoints and be written
  verbatim into a replay artifact;
* **seed-deterministic** — :func:`sample_campaign` derives every random
  choice from ``sha256(seed, index)``, so a sweep's campaign list is a
  pure function of its seed.

The spec layer never touches a simulator; :mod:`repro.chaos.campaign`
interprets specs, and :mod:`repro.chaos.shrink` edits them.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigError

#: Simulator backends a campaign can target.
SIMULATORS = ("packet", "fluid")

#: Fault kinds available on the packet engine.
PACKET_FAULT_KINDS = (
    "router_restart",
    "link_flap",
    "corrupt_state",
    "clock_jitter",
    "counter_corruption",
)
#: Fault kinds available on the fluid simulator.
FLUID_FAULT_KINDS = ("router_restart", "link_degrade", "counter_corruption")

#: Fault kinds with a down/up window (``duration`` ticks long).
WINDOWED_FAULT_KINDS = ("link_flap", "link_degrade")

#: Silent-corruption kinds: they never recover by themselves, so the
#: default sample space excludes them (the sanitizer-clean SLO would be
#: violated by construction); ``include_silent=True`` opts back in.
SILENT_FAULT_KINDS = ("counter_corruption",)

#: Attacker squad kinds on the packet engine.  ``churn-flood`` is the
#: state-exhaustion adversary (:class:`repro.traffic.PathChurnFloodSource`):
#: it attacks router *memory* by rotating path identifiers, so it only
#: enters the default sample space via :func:`exhaustion_campaign` —
#: adding it to the seed-pinned generic sampler would silently reshuffle
#: every shipped sweep.
PACKET_ATTACKER_KINDS = ("cbr", "shrew", "wave", "churn-flood")
#: The generic sampler's packet squad pool (seed-pinned; see above).
SAMPLED_PACKET_ATTACKER_KINDS = ("cbr", "shrew", "wave")
#: Attacker behaviours on the fluid simulator (one bot population,
#: behaviour toggles only).
FLUID_ATTACKER_KINDS = ("fluid-bots",)

#: Mutations each attacker kind understands (order = sampling order).
#: ``churn-flood`` has none: unconditional cadence churn *is* its whole
#: behaviour (``period_ticks`` is the churn interval).
ATTACKER_MUTATIONS: Dict[str, Tuple[str, ...]] = {
    "cbr": ("rerandomize", "churn"),
    "shrew": ("rephase", "rerandomize"),
    "wave": ("rephase", "rerandomize"),
    "churn-flood": (),
    "fluid-bots": ("rerandomize",),
}

#: Sanitizer handling accepted by :class:`SloSpec`.
SLO_SANITIZE_MODES = ("strict", "record", "off")


def chaos_rng(seed: int, name: str) -> random.Random:
    """Deterministic RNG derivation, same idiom as ``Engine.spawn_rng``."""
    digest = hashlib.sha256(f"chaos:{seed}:{name}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


# ----------------------------------------------------------------------
# spec dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """One fault event in a campaign.

    ``duration`` is only meaningful for the windowed kinds (link flap /
    degrade: the fault clears at ``tick + duration``); ``param`` carries
    the kind-specific scalar — corruption fraction, jitter offset bound,
    or degrade factor.
    """

    kind: str
    tick: int
    duration: int = 0
    param: float = 0.0

    def clear_tick(self) -> int:
        """Tick at which the fault condition itself is gone (recovery of
        the defense's state may take longer; see :mod:`repro.chaos.slo`)."""
        if self.kind in WINDOWED_FAULT_KINDS:
            return self.tick + self.duration
        return self.tick

    def validate(self, simulator: str) -> None:
        kinds = (
            PACKET_FAULT_KINDS if simulator == "packet" else FLUID_FAULT_KINDS
        )
        if self.kind not in kinds:
            raise ConfigError(
                f"fault kind {self.kind!r} is not available on the "
                f"{simulator} simulator; choose one of {kinds}"
            )
        if self.tick < 0:
            raise ConfigError(f"fault tick must be >= 0, got {self.tick}")
        if self.kind in WINDOWED_FAULT_KINDS:
            if self.duration < 1:
                raise ConfigError(
                    f"{self.kind} needs duration >= 1 tick, got "
                    f"{self.duration}"
                )
        elif self.duration != 0:
            raise ConfigError(
                f"{self.kind} is instantaneous; duration must be 0, got "
                f"{self.duration}"
            )
        if self.kind == "corrupt_state" and not 0.0 < self.param <= 1.0:
            raise ConfigError(
                f"corrupt_state param (fraction) must be in (0, 1], got "
                f"{self.param}"
            )
        if self.kind == "clock_jitter" and self.param < 0:
            raise ConfigError(
                f"clock_jitter param (max offset) must be >= 0, got "
                f"{self.param}"
            )
        if self.kind == "link_degrade" and not 0.0 <= self.param < 1.0:
            raise ConfigError(
                f"link_degrade param (capacity factor) must be in [0, 1), "
                f"got {self.param}"
            )


@dataclass(frozen=True)
class AttackerSpec:
    """One squad of adaptive attack bots.

    On the packet engine a squad is ``bots`` sources of ``kind`` placed
    on one attack leaf; on the fluid simulator the single ``fluid-bots``
    squad toggles behaviours of the scenario's whole bot population.
    ``mutations`` lists the adaptive behaviours enabled — an empty tuple
    degrades the squad to its non-adaptive base source, which is exactly
    what the shrinker exploits.
    """

    kind: str
    bots: int = 2
    rate_mbps: float = 2.0
    period_ticks: int = 0  # shrew/wave cycle; fluid re-randomize interval
    on_fraction: float = 0.25  # shrew/wave duty cycle
    mutations: Tuple[str, ...] = ()

    def validate(self, simulator: str) -> None:
        kinds = (
            PACKET_ATTACKER_KINDS
            if simulator == "packet"
            else FLUID_ATTACKER_KINDS
        )
        if self.kind not in kinds:
            raise ConfigError(
                f"attacker kind {self.kind!r} is not available on the "
                f"{simulator} simulator; choose one of {kinds}"
            )
        if self.bots < 1:
            raise ConfigError(f"bots must be >= 1, got {self.bots}")
        if self.rate_mbps <= 0:
            raise ConfigError(
                f"rate_mbps must be > 0, got {self.rate_mbps}"
            )
        if self.kind in ("shrew", "wave"):
            if self.period_ticks < 2:
                raise ConfigError(
                    f"{self.kind} needs period_ticks >= 2, got "
                    f"{self.period_ticks}"
                )
            if not 0.0 < self.on_fraction <= 1.0:
                raise ConfigError(
                    f"on_fraction must be in (0, 1], got {self.on_fraction}"
                )
        if self.kind == "churn-flood" and self.period_ticks < 1:
            raise ConfigError(
                f"churn-flood needs period_ticks >= 1 (the churn "
                f"interval), got {self.period_ticks}"
            )
        allowed = ATTACKER_MUTATIONS[self.kind]
        for name in self.mutations:
            if name not in allowed:
                raise ConfigError(
                    f"mutation {name!r} is not understood by {self.kind!r} "
                    f"attackers; choose a subset of {allowed}"
                )
        if len(set(self.mutations)) != len(self.mutations):
            raise ConfigError(
                f"duplicate mutations in {self.mutations!r}"
            )


@dataclass(frozen=True)
class SloSpec:
    """The resilience guarantees a campaign is judged against.

    * **floor** — in every measurement window not overlapping a fault's
      impact interval, the legitimate flows' share of target-link
      capacity must be at least ``floor``;
    * **recovery** — after the last fault clears, the legitimate share
      must return to within ``epsilon`` of its pre-fault mean no later
      than ``restart_warmup_ticks + recovery_slack_ticks`` (the policy's
      warm-up window is the campaign's ``window_ticks``);
    * **sanitizer-clean** — with ``sanitize="strict"``, any runtime
      invariant violation recorded by :mod:`repro.sanitize` fails the
      campaign (``"record"`` only reports; ``"off"`` skips installation);
    * **replay-identical** — with ``verify_replay=True`` the campaign is
      executed twice from the same spec and the two run digests must be
      byte-identical;
    * **bounded-state** — with ``bounded_floor`` set, the legitimate
      share must stay at or above it in every fault-free window *and*
      the policy's peak tracked-path count must respect the campaign's
      ``max_tracked_paths`` budget — the differential-guarantee floor
      for long-lived legitimate paths under identifier churn at a fixed
      memory budget (``None`` skips the oracle).
    """

    floor: float = 0.2
    epsilon: float = 0.15
    recovery_slack_ticks: int = 150
    sanitize: str = "strict"
    verify_replay: bool = True
    bounded_floor: Optional[float] = None

    def validate(self) -> None:
        if not 0.0 <= self.floor <= 1.0:
            raise ConfigError(
                f"floor must be in [0, 1], got {self.floor}"
            )
        if self.bounded_floor is not None and not (
            0.0 <= self.bounded_floor <= 1.0
        ):
            raise ConfigError(
                f"bounded_floor must be in [0, 1], got {self.bounded_floor}"
            )
        if self.epsilon < 0:
            raise ConfigError(
                f"epsilon must be >= 0, got {self.epsilon}"
            )
        if self.recovery_slack_ticks < 0:
            raise ConfigError(
                f"recovery_slack_ticks must be >= 0, got "
                f"{self.recovery_slack_ticks}"
            )
        if self.sanitize not in SLO_SANITIZE_MODES:
            raise ConfigError(
                f"sanitize must be one of {SLO_SANITIZE_MODES}, got "
                f"{self.sanitize!r}"
            )


@dataclass(frozen=True)
class CampaignSpec:
    """One complete chaos campaign (see module docstring)."""

    seed: int
    simulator: str
    warmup_ticks: int
    window_ticks: int
    n_windows: int
    scale: float = 0.05  # packet scenario scale factor
    faults: Tuple[FaultSpec, ...] = ()
    attackers: Tuple[AttackerSpec, ...] = ()
    slo: SloSpec = field(default_factory=SloSpec)
    #: Router state backend for the campaign's FLoc policy ("exact" or
    #: "sketch"); packet simulator only.
    state_backend: str = "exact"
    #: Hot-tier path budget handed to the policy (``max_tracked_paths``
    #: in exact mode, ``sketch_hot_paths`` in sketch mode); ``None``
    #: keeps the config defaults (exact: unbounded).
    max_tracked_paths: Optional[int] = None

    @property
    def total_ticks(self) -> int:
        return self.warmup_ticks + self.n_windows * self.window_ticks

    def window_bounds(self, index: int) -> Tuple[int, int]:
        """(start, stop) ticks of measurement window ``index``."""
        start = self.warmup_ticks + index * self.window_ticks
        return start, start + self.window_ticks

    def mutation_count(self) -> int:
        return sum(len(a.mutations) for a in self.attackers)

    def validate(self) -> None:
        if self.simulator not in SIMULATORS:
            raise ConfigError(
                f"unknown simulator {self.simulator!r}; choose one of "
                f"{SIMULATORS}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigError(f"seed must be an int, got {self.seed!r}")
        if self.warmup_ticks < 1:
            raise ConfigError(
                f"warmup_ticks must be >= 1, got {self.warmup_ticks}"
            )
        if self.window_ticks < 1:
            raise ConfigError(
                f"window_ticks must be >= 1, got {self.window_ticks}"
            )
        if self.n_windows < 2:
            raise ConfigError(
                f"n_windows must be >= 2, got {self.n_windows}"
            )
        if not self.scale > 0:
            raise ConfigError(f"scale must be > 0, got {self.scale}")
        for fault in self.faults:
            fault.validate(self.simulator)
            if fault.clear_tick() >= self.total_ticks:
                raise ConfigError(
                    f"fault {fault.kind!r} clears at {fault.clear_tick()}, "
                    f"beyond the campaign's {self.total_ticks} ticks"
                )
        for attacker in self.attackers:
            attacker.validate(self.simulator)
        if self.state_backend not in ("exact", "sketch"):
            raise ConfigError(
                f"state_backend must be 'exact' or 'sketch', got "
                f"{self.state_backend!r}"
            )
        if self.max_tracked_paths is not None and self.max_tracked_paths < 1:
            raise ConfigError(
                f"max_tracked_paths must be >= 1, got "
                f"{self.max_tracked_paths}"
            )
        if self.simulator == "fluid" and self.state_backend != "exact":
            raise ConfigError(
                "the fluid simulator's state is bounded by its AS count; "
                "state_backend='sketch' only applies to the packet engine"
            )
        self.slo.validate()

    # ------------------------------------------------------------------
    # serialization (replay artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict that :meth:`from_dict` round-trips exactly.

        Fields added after PR 4 (``state_backend``, ``max_tracked_paths``,
        ``slo.bounded_floor``) are omitted at their defaults: the dict
        feeds :func:`repro.chaos.campaign.run_digest`, so a default spec
        must serialize byte-identically to the shipped replay artifacts.
        """
        out = asdict(self)
        out["faults"] = [asdict(f) for f in self.faults]
        out["attackers"] = [
            dict(asdict(a), mutations=list(a.mutations))
            for a in self.attackers
        ]
        if self.state_backend == "exact":
            del out["state_backend"]
        if self.max_tracked_paths is None:
            del out["max_tracked_paths"]
        if self.slo.bounded_floor is None:
            del out["slo"]["bounded_floor"]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        try:
            faults = tuple(FaultSpec(**f) for f in data["faults"])
            attackers = tuple(
                AttackerSpec(
                    **dict(a, mutations=tuple(a["mutations"]))
                )
                for a in data["attackers"]
            )
            slo = SloSpec(**data["slo"])
            spec = cls(
                seed=data["seed"],
                simulator=data["simulator"],
                warmup_ticks=data["warmup_ticks"],
                window_ticks=data["window_ticks"],
                n_windows=data["n_windows"],
                scale=data["scale"],
                faults=faults,
                attackers=attackers,
                slo=slo,
                state_backend=data.get("state_backend", "exact"),
                max_tracked_paths=data.get("max_tracked_paths"),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed campaign spec: {exc}") from None
        spec.validate()
        return spec


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------
#: Packet campaigns: run shape (tuned so every sampled fault leaves both
#: pre-fault windows and at least one post-recovery-deadline window).
PACKET_SHAPE = {"warmup_ticks": 300, "window_ticks": 150, "n_windows": 8}
#: Fluid campaigns: shorter windows — the fluid model converges faster.
FLUID_SHAPE = {"warmup_ticks": 120, "window_ticks": 60, "n_windows": 8}

#: Floor defaults per simulator (calibrated against FLoc's shipped
#: default scenarios; see tests/chaos/test_campaign.py regression locks).
DEFAULT_FLOORS = {"packet": 0.2, "fluid": 0.3}


def default_slo(simulator: str, **overrides: Any) -> SloSpec:
    """The shipped SLO catalog instance for one simulator."""
    shape = PACKET_SHAPE if simulator == "packet" else FLUID_SHAPE
    base: Dict[str, Any] = {
        "floor": DEFAULT_FLOORS[simulator],
        "recovery_slack_ticks": shape["window_ticks"],
    }
    base.update({k: v for k, v in overrides.items() if v is not None})
    return SloSpec(**base)


def _sample_faults(
    rng: random.Random,
    simulator: str,
    shape: Dict[str, int],
    include_silent: bool,
) -> Tuple[FaultSpec, ...]:
    warmup = shape["warmup_ticks"]
    window = shape["window_ticks"]
    kinds = list(
        PACKET_FAULT_KINDS if simulator == "packet" else FLUID_FAULT_KINDS
    )
    if not include_silent:
        kinds = [k for k in kinds if k not in SILENT_FAULT_KINDS]
    n_faults = rng.randint(1, 2)
    faults: List[FaultSpec] = []
    # fault ticks stay inside [warmup + window, warmup + (n-4)*window] so
    # pre-fault windows and a post-recovery-deadline window always exist
    lo = warmup + window
    hi = warmup + (shape["n_windows"] - 4) * window
    for _ in range(n_faults):
        kind = rng.choice(kinds)
        tick = rng.randrange(lo, hi)
        duration = 0
        param = 0.0
        if kind in WINDOWED_FAULT_KINDS:
            duration = rng.randrange(window // 2, window)
        if kind == "corrupt_state":
            param = rng.uniform(0.25, 0.75)
        elif kind == "clock_jitter":
            param = float(rng.randrange(5, 20))
        elif kind == "link_degrade":
            param = rng.uniform(0.0, 0.5)
        faults.append(
            FaultSpec(kind=kind, tick=tick, duration=duration, param=param)
        )
    faults.sort(key=lambda f: (f.tick, f.kind))
    return tuple(faults)


def _sample_attackers(
    rng: random.Random, simulator: str, shape: Dict[str, int]
) -> Tuple[AttackerSpec, ...]:
    if simulator == "fluid":
        mutations = (
            ("rerandomize",) if rng.random() < 0.75 else ()
        )
        return (
            AttackerSpec(
                kind="fluid-bots",
                bots=1,
                rate_mbps=1.0,
                period_ticks=rng.choice((30, 50)),
                mutations=mutations,
            ),
        )
    squads: List[AttackerSpec] = []
    for _ in range(rng.randint(1, 2)):
        kind = rng.choice(list(SAMPLED_PACKET_ATTACKER_KINDS))
        allowed = ATTACKER_MUTATIONS[kind]
        mutations = tuple(
            name for name in allowed if rng.random() < 0.6
        )
        period = 0
        if kind in ("shrew", "wave"):
            period = rng.choice((10, 20, 40))
        squads.append(
            AttackerSpec(
                kind=kind,
                bots=rng.randint(2, 4),
                rate_mbps=rng.uniform(1.5, 2.5),
                period_ticks=period,
                mutations=mutations,
            )
        )
    return tuple(squads)


def sample_campaign(
    seed: int,
    index: int,
    simulator: str = "both",
    slo: Optional[SloSpec] = None,
    include_silent: bool = False,
) -> CampaignSpec:
    """Sample campaign ``index`` of a sweep, deterministically from
    ``seed``.

    ``simulator`` may be ``"packet"``, ``"fluid"``, or ``"both"`` (the
    backend is then itself a sampled choice, packet-biased).  ``slo``
    overrides the per-simulator default catalog; ``include_silent`` adds
    the silent-corruption fault kinds to the sample space (campaigns
    containing one are *expected* to fail the sanitizer-clean SLO and
    shrink down to exactly that fault).
    """
    if simulator not in SIMULATORS + ("both",):
        raise ConfigError(
            f"simulator must be one of {SIMULATORS + ('both',)}, got "
            f"{simulator!r}"
        )
    rng = chaos_rng(seed, f"campaign-{index}")
    if simulator == "both":
        backend = "fluid" if rng.random() < 0.25 else "packet"
    else:
        backend = simulator
    shape = PACKET_SHAPE if backend == "packet" else FLUID_SHAPE
    spec = CampaignSpec(
        seed=seed * 1_000_003 + index,
        simulator=backend,
        warmup_ticks=shape["warmup_ticks"],
        window_ticks=shape["window_ticks"],
        n_windows=shape["n_windows"],
        faults=_sample_faults(rng, backend, shape, include_silent),
        attackers=_sample_attackers(rng, backend, shape),
        slo=slo if slo is not None else default_slo(backend),
    )
    spec.validate()
    return spec


#: Default differential-guarantee floor for long-lived legitimate paths
#: under identifier churn at a bounded memory budget.  Deliberately
#: below the fault-free ``floor`` default: eviction pressure is allowed
#: to degrade the guarantee, not to collapse it.
DEFAULT_BOUNDED_FLOOR = 0.1

#: Hot-tier budget handed to exhaustion campaigns (small enough that the
#: churn adversary forces sustained evictions at chaos scale).
DEFAULT_EXHAUSTION_BUDGET = 64


def exhaustion_campaign(
    seed: int,
    index: int,
    slo: Optional[SloSpec] = None,
    state_backend: str = "sketch",
    max_tracked_paths: Optional[int] = None,
) -> CampaignSpec:
    """Sample state-exhaustion campaign ``index``, deterministically.

    A separate sampler rather than a new kind in the generic pool so the
    shipped seed-pinned sweeps stay byte-identical.  Every campaign runs
    on the packet engine, fields a ``churn-flood`` squad under a small
    hot-tier budget, and is judged by the ``bounded_state`` oracle (the
    ``bounded_floor`` default is :data:`DEFAULT_BOUNDED_FLOOR`).
    """
    rng = chaos_rng(seed, f"exhaustion-{index}")
    shape = PACKET_SHAPE
    budget = (
        max_tracked_paths
        if max_tracked_paths is not None
        else DEFAULT_EXHAUSTION_BUDGET
    )
    squads = (
        AttackerSpec(
            kind="churn-flood",
            bots=rng.randint(2, 4),
            rate_mbps=rng.uniform(1.5, 2.5),
            period_ticks=rng.choice((25, 50, 75)),
        ),
    )
    base_slo = slo if slo is not None else default_slo("packet")
    if base_slo.bounded_floor is None:
        base_slo = replace(base_slo, bounded_floor=DEFAULT_BOUNDED_FLOOR)
    spec = CampaignSpec(
        seed=seed * 1_000_003 + index,
        simulator="packet",
        warmup_ticks=shape["warmup_ticks"],
        window_ticks=shape["window_ticks"],
        n_windows=shape["n_windows"],
        attackers=squads,
        slo=base_slo,
        state_backend=state_backend,
        max_tracked_paths=budget,
    )
    spec.validate()
    return spec


def with_slo(spec: CampaignSpec, **overrides: Any) -> CampaignSpec:
    """A copy of ``spec`` with SLO fields replaced (None = keep)."""
    kept = {k: v for k, v in overrides.items() if v is not None}
    return replace(spec, slo=replace(spec.slo, **kept))
