"""Campaign execution: interpret a spec on either simulator, judge SLOs.

One :func:`run_campaign` call is the atomic unit of the chaos engine: it
builds a fresh scenario from the spec's seed, installs the spec's faults
(via :mod:`repro.faults` schedules), attacker squads (via
:mod:`repro.traffic.adaptive`), and the runtime invariant sanitizer in
record mode, runs the campaign's full tick count, measures per-window
legitimate shares at the target link, and evaluates the SLO catalog
(:mod:`repro.chaos.slo`).

Determinism is the contract everything else (replay artifacts, the
shrinker's bisection, CI) leans on: a campaign's measurements are a pure
function of its spec, so the sha256 *run digest* over those measurements
is too.  The ``replay`` SLO enforces the contract by executing the spec
twice and comparing digests.

Packet campaigns run FLoc on the Section VI tree (scaled down by
``spec.scale``) with the spec's squads placed on the designated attack
leaves; fluid campaigns run the FLoc strategy on a reduced Internet-scale
scenario with the whole bot population driven by the spec's behaviour
toggles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.config import FLocConfig
from ..core.router import FLocPolicy
from ..errors import ConfigError
from ..faults import FaultSchedule
from ..faults.injectors import (
    FluidCounterCorruption,
    FluidLinkDegrade,
    fluid_restart,
)
from ..inet.scenarios import InternetScenario, build_internet_scenario
from ..inet.simulator import FluidSimulator
from ..net.engine import LinkMonitor
from ..sanitize import install_sanitizer
from ..telemetry import NullTelemetry, Telemetry, current
from ..traffic.adaptive import (
    AdaptiveCbrSource,
    AdaptiveShrewSource,
    FluidRateRandomizer,
)
from ..traffic.churn import PathChurnFloodSource
from ..traffic.scenarios import DST_HUB, ROOT, TreeScenario, build_tree_scenario
from .slo import SloReport, WindowShare, evaluate_slos, settle_ticks
from .spec import AttackerSpec, CampaignSpec

#: FLoc aggregation bound used by every chaos campaign.
CHAOS_S_MAX = 25

#: Fluid scenario size (reduced ratios of the paper's Internet scale so
#: a campaign runs in a second or two; shares are ratio-stable).
FLUID_SCENARIO: Dict[str, Any] = {
    "n_as": 120,
    "n_legit_sources": 400,
    "n_legit_ases": 40,
    "n_bots": 2_000,
    "target_capacity": 300.0,
}


@dataclass
class Measurements:
    """Everything one execution of a spec produces."""

    windows: List[WindowShare] = field(default_factory=list)
    fault_log: List[Tuple[int, str]] = field(default_factory=list)
    sanitizer_violations: int = 0
    digest: str = ""
    #: Traced drop totals by cause (telemetry provenance).  Deliberately
    #: NOT part of the run digest: telemetry is observation-only, and the
    #: digest contract predates it.
    drop_provenance: Dict[str, float] = field(default_factory=dict)
    #: Policy state-pressure measurements for the ``bounded_state``
    #: oracle (packet campaigns).  Like drop provenance, deliberately NOT
    #: part of the run digest — the digest contract predates them, and a
    #: default exact-mode campaign must keep its historical digest.
    eviction_stats: Dict[str, int] = field(default_factory=dict)
    tracked_paths_peak: int = 0


@dataclass
class CampaignResult:
    """One judged campaign: spec, measurements, and the SLO report."""

    spec: CampaignSpec
    measurements: Measurements
    report: SloReport

    @property
    def digest(self) -> str:
        return self.measurements.digest

    @property
    def ok(self) -> bool:
        return self.report.ok


def run_digest(spec: CampaignSpec, measurements: Measurements) -> str:
    """Canonical sha256 over a run's spec and observable outcome."""
    payload = {
        "spec": spec.to_dict(),
        "windows": [
            [w.index, w.start, w.stop, w.legit_share]
            for w in measurements.windows
        ],
        "fault_log": [[tick, name] for tick, name in measurements.fault_log],
        "sanitizer_violations": measurements.sanitizer_violations,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _campaign_telemetry() -> NullTelemetry:
    """Telemetry a campaign records drop provenance into.

    The session's active telemetry when one is enabled (``repro chaos
    --telemetry``); otherwise a private metrics-only instance, so the
    floor oracle always sees cause attribution without the caller having
    to opt in.
    """
    tel = current()
    if tel.enabled:
        return tel
    return Telemetry(mode="metrics")


def _provenance_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Drop totals attributable to one campaign on a shared telemetry."""
    out: Dict[str, float] = {}
    for cause, total in after.items():
        delta = float(total) - float(before.get(cause, 0.0))
        if delta > 0.0:
            out[cause] = delta
    return out


# ----------------------------------------------------------------------
# packet-engine execution
# ----------------------------------------------------------------------
def _packet_fault_schedule(
    spec: CampaignSpec, schedule: FaultSchedule
) -> None:
    target = (ROOT, DST_HUB)
    for fault in spec.faults:
        if fault.kind == "router_restart":
            schedule.router_restart(*target, tick=fault.tick)
        elif fault.kind == "corrupt_state":
            schedule.corrupt_state(
                *target, tick=fault.tick, fraction=fault.param
            )
        elif fault.kind == "clock_jitter":
            schedule.clock_jitter(
                *target, tick=fault.tick, max_offset=int(fault.param)
            )
        elif fault.kind == "counter_corruption":
            schedule.counter_corruption(*target, tick=fault.tick)
        elif fault.kind == "link_flap":
            schedule.link_flap(
                "root.0",
                ROOT,
                down_tick=fault.tick,
                up_tick=fault.tick + fault.duration,
            )
        else:  # pragma: no cover - spec.validate rejects unknown kinds
            raise ConfigError(f"unmapped packet fault kind {fault.kind!r}")


def _add_packet_squad(
    scenario: TreeScenario,
    spec: CampaignSpec,
    squad_index: int,
    squad: AttackerSpec,
    attack_leaves: List[Tuple[int, str]],
) -> None:
    engine = scenario.engine
    leaf_index, leaf = attack_leaves[squad_index % len(attack_leaves)]
    pid = scenario.path_ids[leaf_index]
    rate = scenario.units.mbps_to_pkts_per_tick(squad.rate_mbps)
    # churn pool: the bot's own identifier first, then every other domain
    # identifier it could plausibly spoof
    pool = (pid,) + tuple(p for p in scenario.path_ids if p != pid)
    period = squad.period_ticks
    on_ticks = max(1, round(squad.on_fraction * period)) if period else 0
    for b in range(squad.bots):
        host = f"cb_{squad_index}_{b}"
        scenario.topology.add_duplex_link(host, leaf, capacity=None)
        server = scenario.servers[b % len(scenario.servers)]
        flow = engine.open_flow(host, server, pid, is_attack=True)
        scenario.attack_flows.append(flow)
        if squad.kind == "cbr":
            source: Any = AdaptiveCbrSource(
                flow,
                rate=rate,
                mutations=squad.mutations,
                path_id_pool=pool,
                adapt_interval=max(1, spec.window_ticks // 2),
            )
        elif squad.kind == "churn-flood":
            # state-exhaustion adversary: period_ticks is the churn
            # interval; identifiers are drawn from a large fresh space
            source = PathChurnFloodSource(
                flow,
                rate=rate,
                churn_interval=squad.period_ticks or spec.window_ticks // 2,
                id_space=1_000_000,
            )
        else:
            phase = 0
            if squad.kind == "wave":
                # coordinated on/off wave: bots take turns bursting
                phase = (b * period) // squad.bots
            source = AdaptiveShrewSource(
                flow,
                burst_rate=rate,
                period_ticks=period,
                on_ticks=on_ticks,
                mutations=squad.mutations,
                phase=phase,
            )
        engine.add_source(source)
        scenario.attack_sources.append(source)


def _execute_packet(spec: CampaignSpec) -> Measurements:
    scenario = build_tree_scenario(
        scale_factor=spec.scale,
        attack_kind="none",
        seed=spec.seed,
    )
    # backup path between the root's first two subtrees, idle until a
    # link_flap fault takes the root.0 uplink down (same arrangement as
    # the robustness_faults experiment)
    scenario.topology.add_duplex_link("root.0", "root.1", capacity=None)
    cfg_kwargs: Dict[str, Any] = {}
    if spec.state_backend != "exact":
        cfg_kwargs["state_backend"] = spec.state_backend
    if spec.max_tracked_paths is not None:
        # one budget knob for either backend: the exact mode's LRU bound
        # and the sketch mode's hot-tier size
        cfg_kwargs["max_tracked_paths"] = spec.max_tracked_paths
        cfg_kwargs["sketch_hot_paths"] = spec.max_tracked_paths
    policy = FLocPolicy(
        FLocConfig(
            s_max=CHAOS_S_MAX,
            restart_warmup_ticks=settle_ticks(spec),
            **cfg_kwargs,
        )
    )
    scenario.attach_policy(policy)

    leaves = list(scenario.as_of_leaf)
    attack_pids = set(scenario.attack_path_ids)
    attack_leaves = [
        (i, leaf)
        for i, leaf in enumerate(leaves)
        if scenario.path_ids[i] in attack_pids
    ]
    for squad_index, squad in enumerate(spec.attackers):
        _add_packet_squad(scenario, spec, squad_index, squad, attack_leaves)

    monitors = []
    for index in range(spec.n_windows):
        start, stop = spec.window_bounds(index)
        monitors.append(
            scenario.engine.add_monitor(
                *scenario.target,
                LinkMonitor(start_tick=start, stop_tick=stop),
            )
        )

    schedule = FaultSchedule()
    _packet_fault_schedule(spec, schedule)
    schedule.install(scenario.engine)
    sanitizer = install_sanitizer(
        scenario.engine,
        None if spec.slo.sanitize == "off" else "record",
    )
    tel = _campaign_telemetry()
    scenario.engine.telemetry = tel
    provenance_before = dict(tel.drop_provenance())
    scenario.engine.run(spec.total_ticks)

    legit_ids = {f.flow_id for f in scenario.legit_flows}
    budget = scenario.capacity * spec.window_ticks
    windows = []
    for index, monitor in enumerate(monitors):
        start, stop = spec.window_bounds(index)
        serviced = sum(
            count
            for flow_id, count in monitor.service_counts.items()
            if flow_id in legit_ids
        )
        windows.append(
            WindowShare(
                index=index,
                start=start,
                stop=stop,
                legit_share=serviced / budget,
            )
        )
    measurements = Measurements(
        windows=windows,
        fault_log=list(schedule.log),
        sanitizer_violations=(
            len(sanitizer.report.violations) if sanitizer is not None else 0
        ),
        drop_provenance=_provenance_delta(
            provenance_before, tel.drop_provenance()
        ),
        eviction_stats=dict(policy.eviction_stats),
        tracked_paths_peak=policy.tracked_paths_peak,
    )
    measurements.digest = run_digest(spec, measurements)
    return measurements


# ----------------------------------------------------------------------
# fluid-simulator execution
# ----------------------------------------------------------------------
def _busiest_legit_as(scn: InternetScenario) -> int:
    """The non-attack AS hosting the most legitimate flows (the uplink a
    degrade fault hits, so legitimate traffic feels it most)."""
    counts = np.bincount(
        scn.flow_origin_as[~scn.flow_is_attack], minlength=scn.n_links
    )
    counts[0] = 0  # the target itself hosts no sources
    for asn in scn.attack_ases:
        counts[asn] = 0
    return int(counts.argmax())


def _fluid_fault_schedule(
    spec: CampaignSpec, schedule: FaultSchedule, scn: InternetScenario
) -> None:
    for fault in spec.faults:
        if fault.kind == "router_restart":
            schedule.at(
                fault.tick,
                fluid_restart(warmup_ticks=settle_ticks(spec)),
                name="defense-restart",
            )
        elif fault.kind == "link_degrade":
            degrade = FluidLinkDegrade(
                _busiest_legit_as(scn), factor=fault.param
            )
            schedule.at(fault.tick, degrade.down, name="uplink-degrade")
            schedule.at(
                fault.tick + fault.duration, degrade.up, name="uplink-restore"
            )
        elif fault.kind == "counter_corruption":
            schedule.at(
                fault.tick,
                FluidCounterCorruption(fraction=0.05, skew=5.0),
                name="counter-corrupt",
            )
        else:  # pragma: no cover - spec.validate rejects unknown kinds
            raise ConfigError(f"unmapped fluid fault kind {fault.kind!r}")


def _execute_fluid(spec: CampaignSpec) -> Measurements:
    scn = build_internet_scenario(seed=spec.seed, **FLUID_SCENARIO)
    sim = FluidSimulator(
        scn, strategy="floc", s_max=CHAOS_S_MAX, seed=spec.seed
    )
    for squad in spec.attackers:
        if "rerandomize" in squad.mutations:
            sim.add_tick_hook(
                FluidRateRandomizer(
                    interval=squad.period_ticks or 50, spread=0.5
                )
            )
    schedule = FaultSchedule()
    _fluid_fault_schedule(spec, schedule, scn)
    schedule.install(sim)
    sanitizer = install_sanitizer(
        sim, None if spec.slo.sanitize == "off" else "record"
    )
    tel = _campaign_telemetry()
    sim.telemetry = tel
    provenance_before = dict(tel.drop_provenance())
    result = sim.run(
        ticks=spec.total_ticks, warmup=spec.warmup_ticks, record_series=True
    )

    by_tick = {tick: ll + la for tick, ll, la, _ in result.series}
    windows = []
    for index in range(spec.n_windows):
        start, stop = spec.window_bounds(index)
        shares = [by_tick[t] for t in range(start, stop) if t in by_tick]
        windows.append(
            WindowShare(
                index=index,
                start=start,
                stop=stop,
                legit_share=sum(shares) / len(shares) if shares else 0.0,
            )
        )
    measurements = Measurements(
        windows=windows,
        fault_log=list(schedule.log),
        sanitizer_violations=(
            len(sanitizer.report.violations) if sanitizer is not None else 0
        ),
        drop_provenance=_provenance_delta(
            provenance_before, tel.drop_provenance()
        ),
    )
    measurements.digest = run_digest(spec, measurements)
    return measurements


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def execute_campaign(spec: CampaignSpec) -> Measurements:
    """One deterministic execution of a validated spec (no SLO verdicts)."""
    spec.validate()
    if spec.simulator == "packet":
        return _execute_packet(spec)
    return _execute_fluid(spec)


def run_campaign(
    spec: CampaignSpec, verify_replay: Optional[bool] = None
) -> CampaignResult:
    """Execute a campaign and judge it against its SLO catalog.

    ``verify_replay`` overrides the spec's ``slo.verify_replay`` (the
    shrinker disables it on bisection trials: one execution per trial).
    """
    measurements = execute_campaign(spec)
    do_replay = (
        spec.slo.verify_replay if verify_replay is None else verify_replay
    )
    replay_matched: Optional[bool] = None
    if do_replay:
        replay_matched = execute_campaign(spec).digest == measurements.digest
    report = evaluate_slos(
        spec,
        measurements.windows,
        measurements.sanitizer_violations,
        replay_matched,
        drop_provenance=measurements.drop_provenance or None,
        eviction_stats=measurements.eviction_stats or None,
        tracked_paths_peak=measurements.tracked_paths_peak,
    )
    return CampaignResult(spec=spec, measurements=measurements, report=report)
