"""A Reno-style AIMD TCP source.

The source implements the congestion-control behaviour FLoc's model relies
on (paper Section IV-A): slow start, congestion avoidance (+1 window per
RTT), multiplicative decrease (at most one halving per RTT of losses),
duplicate-ACK loss detection with retransmission, and retransmission
timeouts.  Connections start with a SYN / SYN-ACK exchange — the handshake
is what lets a FLoc router issue capabilities and measure per-flow RTT
(Section V-A), so it is modelled explicitly.

The sender is ACK-clocked: new segments are emitted while the in-flight
count is below the congestion window, and ACK arrivals (engine delivery
phase) update the window before the emission phase of the same tick.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from ..net.engine import Engine, FlowInfo
from ..net.packet import DATA, SYN, Packet
from ..net.source import TrafficSource

#: Duplicate-ACK threshold for fast-retransmit-style loss detection.
DUPACK_THRESHOLD = 3

#: Lower bound on the retransmission timeout, in ticks.
MIN_RTO_TICKS = 20

#: Initial slow-start threshold (packets) — effectively "no threshold".
INITIAL_SSTHRESH = 1 << 20


class TcpSource(TrafficSource):
    """One TCP connection (one flow).

    Parameters
    ----------
    flow:
        The engine flow this source drives.
    total_packets:
        Number of data packets to transfer; ``None`` means a persistent
        flow that never finishes (the paper's long-FTP reference model).
    start_tick:
        Tick at which the SYN is sent.
    initial_cwnd:
        Congestion window right after connection establishment.
    """

    def __init__(
        self,
        flow: FlowInfo,
        total_packets: Optional[int] = None,
        start_tick: int = 0,
        initial_cwnd: float = 2.0,
    ) -> None:
        self.flow = flow
        self.total_packets = total_packets
        self.start_tick = start_tick
        self.initial_cwnd = initial_cwnd

        self.established = False
        self.finished = False
        self.cwnd = initial_cwnd
        self.ssthresh = float(INITIAL_SSTHRESH)
        self.srtt: Optional[float] = None
        self.capability: Optional[bytes] = None

        self._syn_sent_tick: Optional[int] = None
        self._first_syn_tick: Optional[int] = None
        self._syn_retransmits = 0
        self._next_seq = 0
        self._acked = 0
        # outstanding segment metadata: seq -> [send_tick, dup_count]
        self._meta: dict = {}
        # send-order queue of outstanding seqs (lazily cleaned)
        self._order: deque = deque()
        self._retransmit: deque = deque()
        # Karn's algorithm: never take RTT samples from segments that were
        # retransmitted — the ACK may belong to either transmission
        self._retransmitted: set = set()
        self._recovery_until = -1
        self._rto_backoff = 1
        # statistics
        self.packets_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.loss_events = 0

    # ------------------------------------------------------------------
    # TrafficSource interface
    # ------------------------------------------------------------------
    def flows(self) -> Iterable[FlowInfo]:
        return (self.flow,)

    def on_tick(self, engine: Engine, tick: int) -> None:
        if self.finished or tick < self.start_tick:
            return
        if not self.established:
            self._handshake(engine, tick)
            return
        self._check_rto(engine, tick)
        self._send_window(engine, tick)

    def on_synack(
        self, engine: Engine, flow: FlowInfo, pkt: Packet, tick: int
    ) -> None:
        if self.established:
            return
        self.established = True
        self.capability = pkt.capability
        if self._syn_retransmits == 0 and self._syn_sent_tick is not None:
            self._rtt_sample(max(1, tick - self._syn_sent_tick))
        elif self._first_syn_tick is not None:
            # Karn: ambiguous which SYN this answers — take the elapsed
            # time since the *first* SYN as a safe RTT upper bound
            self._rtt_sample(max(1, tick - self._first_syn_tick))

    def on_ack(self, engine: Engine, flow: FlowInfo, pkt: Packet, tick: int) -> None:
        seq = pkt.seq
        meta = self._meta
        entry = meta.pop(seq, None)
        if entry is not None:
            self._acked += 1
            if seq not in self._retransmitted:
                self._rtt_sample(max(1, tick - entry[0]))
                # only a fresh segment's timely ACK proves the timer is
                # long enough; ACKs of retransmits must not reset backoff
                self._rto_backoff = 1
            else:
                self._retransmitted.discard(seq)
            self._grow_window()
            if self.total_packets is not None and self._acked >= self.total_packets:
                self.finished = True
                return
        # duplicate-ACK accounting: outstanding segments older than the
        # acknowledged one have been "passed" by this ACK.
        order = self._order
        while order and order[0] not in meta:
            order.popleft()
        lost = None
        for pending in order:
            if pending >= seq:
                break
            pending_entry = meta.get(pending)
            if pending_entry is None:
                continue
            pending_entry[1] += 1
            if pending_entry[1] >= DUPACK_THRESHOLD:
                if lost is None:
                    lost = []
                lost.append(pending)
        if lost:
            for seq_lost in lost:
                meta.pop(seq_lost, None)
                self._retransmit.append(seq_lost)
                self._retransmitted.add(seq_lost)
                self.retransmissions += 1
            self._loss_event(tick)

    # ------------------------------------------------------------------
    # congestion control internals
    # ------------------------------------------------------------------
    def rtt_estimate(self, default: float = 10.0) -> float:
        """Smoothed RTT in ticks (``default`` before the first sample)."""
        return self.srtt if self.srtt is not None else default

    def _rtt_sample(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = float(sample)
        else:
            self.srtt += 0.125 * (sample - self.srtt)

    def _grow_window(self) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0  # slow start
        else:
            self.cwnd += 1.0 / self.cwnd  # congestion avoidance
        # cap in-flight work for finite transfers
        if self.total_packets is not None:
            remaining = self.total_packets - self._acked
            if self.cwnd > remaining + 1:
                self.cwnd = float(remaining + 1)

    def _loss_event(self, tick: int) -> None:
        """Multiplicative decrease, at most once per RTT of losses."""
        if tick < self._recovery_until:
            return
        self.loss_events += 1
        self.cwnd = max(1.0, self.cwnd / 2.0)
        self.ssthresh = max(2.0, self.cwnd)
        self._recovery_until = tick + int(round(self.rtt_estimate()))

    def _rto_ticks(self) -> int:
        rtt = self.rtt_estimate()
        return max(MIN_RTO_TICKS, int(round(2.0 * rtt))) * self._rto_backoff

    def _check_rto(self, engine: Engine, tick: int) -> None:
        meta = self._meta
        if not meta:
            return
        order = self._order
        while order and order[0] not in meta:
            order.popleft()
        if not order:
            return
        oldest = order[0]
        if tick - meta[oldest][0] <= self._rto_ticks():
            return
        # timeout: everything outstanding is presumed lost
        self.timeouts += 1
        for seq in list(order):
            if meta.pop(seq, None) is not None:
                self._retransmit.append(seq)
                self._retransmitted.add(seq)
        order.clear()
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = 1.0
        self._recovery_until = tick + int(round(self.rtt_estimate()))
        self._rto_backoff = min(self._rto_backoff * 2, 64)
        self.loss_events += 1

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _handshake(self, engine: Engine, tick: int) -> None:
        resend_after = self._rto_ticks()
        if (
            self._syn_sent_tick is not None
            and tick - self._syn_sent_tick <= resend_after
        ):
            return
        if self._syn_sent_tick is not None:
            self._rto_backoff = min(self._rto_backoff * 2, 64)
            self._syn_retransmits += 1
        else:
            self._first_syn_tick = tick
        self._syn_sent_tick = tick
        engine.emit(self._packet(SYN, 0, tick))

    def _send_window(self, engine: Engine, tick: int) -> None:
        meta = self._meta
        can_send = int(self.cwnd) - len(meta)
        while can_send > 0:
            if self._retransmit:
                seq = self._retransmit.popleft()
            elif self.total_packets is None or self._next_seq < self.total_packets:
                seq = self._next_seq
                self._next_seq += 1
            else:
                break
            meta[seq] = [tick, 0]
            self._order.append(seq)
            self.packets_sent += 1
            engine.emit(self._packet(DATA, seq, tick))
            can_send -= 1

    def _packet(self, kind: int, seq: int, tick: int) -> Packet:
        flow = self.flow
        return Packet(
            flow_id=flow.flow_id,
            kind=kind,
            seq=seq,
            path_id=flow.path_id,
            route=flow.route,
            src_addr=flow.src_host,
            dst_addr=flow.dst_host,
            sent_tick=tick,
            capability=self.capability,
        )
