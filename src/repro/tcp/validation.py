"""Validation of the packet-level TCP substrate against the analytic model.

FLoc's entire parameterisation (Eqs. IV.1-IV.3, the MTD reference, the
Section V-B.1 estimator) assumes the classic TCP model: window uniform on
``[W/2, W]``, throughput ``(3/4) W / RTT``, one drop per congestion epoch,
and the inverse square-root law ``rate ~ (1/RTT) * sqrt(2/p)``.  This
module runs controlled single-bottleneck experiments on the packet engine
and reports model-vs-measured ratios, so the substrate's fidelity is a
*measured* quantity (see ``tests/tcp/test_validation.py`` and the
``test_model_validation`` benchmark) rather than an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..net.engine import Engine
from ..net.topology import Topology
from .source import TcpSource
from . import model


@dataclass
class ValidationPoint:
    """One controlled experiment: n flows through a known bottleneck."""

    n_flows: int
    capacity: float  # packets/tick at the bottleneck
    rtt_ticks: float  # propagation RTT
    measured_rate: float  # aggregate serviced packets/tick
    measured_drop_rate: float  # drops/tick at the bottleneck
    model_drop_rate: float  # Eq. from Section V-B.1 at the same operating point
    estimated_flows: float  # Section V-B.1 inversion from measured values

    @property
    def utilization(self) -> float:
        return self.measured_rate / self.capacity

    @property
    def drop_rate_ratio(self) -> float:
        """measured / model drop rate; 1.0 = perfect agreement."""
        if self.model_drop_rate <= 0:
            return float("inf")
        return self.measured_drop_rate / self.model_drop_rate

    @property
    def flow_count_ratio(self) -> float:
        """estimated / true flow count; 1.0 = perfect estimator."""
        return self.estimated_flows / self.n_flows


def run_validation_point(
    n_flows: int,
    capacity: float = 10.0,
    hops: int = 3,
    buffer_factor: float = 1.0,
    warmup_ticks: int = 800,
    measure_ticks: int = 2_000,
    seed: int = 1,
) -> ValidationPoint:
    """Run ``n_flows`` persistent TCP flows through one drop-tail bottleneck.

    The bottleneck buffer defaults to one bandwidth-delay product
    (``buffer_factor = 1.0``), the regime the analytic model describes.
    """
    topo = Topology()
    nodes = [f"r{i}" for i in range(hops)] + ["srv"]
    for i in range(n_flows):
        topo.add_duplex_link(f"h{i}", nodes[0], capacity=None)
    for a, b in zip(nodes, nodes[1:]):
        topo.add_duplex_link(a, b, capacity=None)
    rtt = 2.0 * (hops + 1)
    buffer = max(8, int(buffer_factor * capacity * rtt))
    topo.add_link(nodes[0], nodes[1], capacity=capacity, buffer=buffer)

    engine = Engine(topo, seed=seed)
    for i in range(n_flows):
        flow = engine.open_flow(f"h{i}", "srv", path_id=(1,))
        engine.add_source(TcpSource(flow, start_tick=(7 * i) % 100))
    monitor = engine.add_monitor(nodes[0], nodes[1])
    engine.run(warmup_ticks)
    base_serviced = monitor.total_serviced
    base_dropped = monitor.total_dropped
    engine.run(measure_ticks)

    measured_rate = (monitor.total_serviced - base_serviced) / measure_ticks
    measured_drops = (monitor.total_dropped - base_dropped) / measure_ticks

    # model operating point: n flows fairly share the *measured* service
    # rate at the effective RTT (propagation + standing queue delay)
    queue_delay = len(topo.link(nodes[0], nodes[1]).queue) / capacity
    effective_rtt = rtt + queue_delay
    w = model.peak_window(max(measured_rate, 1e-9), effective_rtt, n_flows)
    model_drops = model.drop_rate(measured_rate, w)
    estimated = (
        model.flows_from_drop_rate(measured_rate, effective_rtt,
                                   measured_drops)
        if measured_drops > 0
        else 0.0
    )
    return ValidationPoint(
        n_flows=n_flows,
        capacity=capacity,
        rtt_ticks=rtt,
        measured_rate=measured_rate,
        measured_drop_rate=measured_drops,
        model_drop_rate=model_drops,
        estimated_flows=estimated,
    )


def run_validation_sweep(
    flow_counts=(4, 8, 16, 32),
    capacity: float = 10.0,
    seed: int = 1,
) -> List[ValidationPoint]:
    """Validation points across flow counts (drop rates spanning decades)."""
    return [
        run_validation_point(n, capacity=capacity, seed=seed)
        for n in flow_counts
    ]
