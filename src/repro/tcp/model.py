"""Analytic TCP flow model (paper Sections IV-A and V-B.1).

The FLoc router derives its token-bucket parameters from the idealized
persistent-TCP model: a source's congestion window is uniform on
``[W/2, W]`` where ``W`` is the peak window, so

* the average window is ``3W/4`` and a flow's bandwidth is
  ``bw = (3/4) W / RTT``,
* a flow experiences one drop per congestion epoch of ``W/2`` RTTs, i.e.
  its *mean time to drop* is ``MTD = (W/2) RTT``,
* with ``n`` flows fairly sharing a guaranteed bandwidth ``C``, the peak
  window is ``W = 4 C RTT / (3 n)``.

From these follow the paper's equations:

* Eq. (IV.1)  token generation period
  ``T = (W/2) RTT / n = (2/3) C RTT^2 / n^2``,
* Eq. (IV.2)  base bucket size ``N = C T = (2/3) C^2 RTT^2 / n^2``,
* Eq. (IV.3)  increased bucket size
  ``N' = (1 + eps * sigma/mu) N = (1 + 2 / (3 sqrt(n))) N`` for i.i.d.
  flows with ``eps = sqrt(12)`` (bounds peak aggregate requests with
  probability 99.77 %),
* worst case (fully synchronised flows) bucket ``N_sync = (4/3) N``,
* Section V-B.1: the drop *ratio* of a path's aggregate is
  ``gamma = 8 / (3 W (W + 2))`` and the drop *rate* is
  ``delta = gamma * C``, which lets a router estimate the number of
  competing TCP flows from observable quantities only.

All times are in the caller's unit (ticks or seconds) as long as bandwidth
uses the matching unit (packets per tick or per second).
"""

from __future__ import annotations

import math

from ..errors import ConfigError

#: Increase factor for the i.i.d. bucket (paper: sqrt(12) bounds the peak
#: aggregate token request with probability 99.77 %).
EPSILON = math.sqrt(12.0)


def _require_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ConfigError(f"{name} must be positive, got {value}")


# ----------------------------------------------------------------------
# single-flow model
# ----------------------------------------------------------------------
def mean_window(peak_window: float) -> float:
    """Average congestion window for a peak window ``W`` (uniform model)."""
    _require_positive(peak_window=peak_window)
    return 0.75 * peak_window


def window_std(peak_window: float) -> float:
    """Standard deviation of the window, uniform on ``[W/2, W]``."""
    _require_positive(peak_window=peak_window)
    return (peak_window / 2.0) / math.sqrt(12.0)


def flow_bandwidth(peak_window: float, rtt: float) -> float:
    """Long-run bandwidth of one flow: ``(3/4) W / RTT``."""
    _require_positive(peak_window=peak_window, rtt=rtt)
    return mean_window(peak_window) / rtt


def peak_window(bandwidth: float, rtt: float, n_flows: float = 1.0) -> float:
    """Peak window when ``n`` flows fairly share bandwidth ``C``.

    Inverse of :func:`flow_bandwidth` applied to the per-flow share:
    ``W = 4 C RTT / (3 n)``.
    """
    _require_positive(bandwidth=bandwidth, rtt=rtt, n_flows=n_flows)
    return 4.0 * bandwidth * rtt / (3.0 * n_flows)


def mtd(peak_window_size: float, rtt: float) -> float:
    """Mean time to drop of one flow: one drop per ``(W/2) RTT``."""
    _require_positive(peak_window_size=peak_window_size, rtt=rtt)
    return 0.5 * peak_window_size * rtt


# ----------------------------------------------------------------------
# token-bucket parameters (Eqs. IV.1-IV.3)
# ----------------------------------------------------------------------
def token_period(bandwidth: float, rtt: float, n_flows: float) -> float:
    """Eq. (IV.1): ``T = MTD(f) / n = (2/3) C RTT^2 / n^2``."""
    _require_positive(bandwidth=bandwidth, rtt=rtt, n_flows=n_flows)
    return (2.0 / 3.0) * bandwidth * rtt * rtt / (n_flows * n_flows)


def bucket_size(bandwidth: float, rtt: float, n_flows: float) -> float:
    """Eq. (IV.2): ``N = C T = (2/3) C^2 RTT^2 / n^2``."""
    return bandwidth * token_period(bandwidth, rtt, n_flows)


def increased_bucket_size(bandwidth: float, rtt: float, n_flows: float) -> float:
    """Eq. (IV.3): the i.i.d.-flow bucket ``N' = (1 + 2/(3 sqrt(n))) N``.

    Derivation: for ``n`` i.i.d. windows uniform on ``[W/2, W]``,
    ``sigma_S = window_std(W) * sqrt(n)`` and ``mu_S = n * (3/4) W``, so
    ``eps * sigma_S / mu_S = 2 / (3 sqrt(n))`` with ``eps = sqrt(12)``.
    """
    base = bucket_size(bandwidth, rtt, n_flows)
    return (1.0 + 2.0 / (3.0 * math.sqrt(n_flows))) * base


def synchronized_bucket_size(bandwidth: float, rtt: float, n_flows: float) -> float:
    """Worst-case (fully synchronised) bucket ``(4/3) N`` (Section IV-A)."""
    return (4.0 / 3.0) * bucket_size(bandwidth, rtt, n_flows)


def aggregate_request_stats(peak_window_size: float, n_flows: float):
    """Mean and std of the aggregate token request of ``n`` i.i.d. flows."""
    _require_positive(peak_window_size=peak_window_size, n_flows=n_flows)
    mu = n_flows * mean_window(peak_window_size)
    sigma = window_std(peak_window_size) * math.sqrt(n_flows)
    return mu, sigma


def reference_mtd(token_period_value: float, n_flows: float) -> float:
    """Reference MTD of a flow on path ``S_i``: ``n_i * T_Si`` (Sec. IV-B)."""
    _require_positive(token_period_value=token_period_value, n_flows=n_flows)
    return n_flows * token_period_value


# ----------------------------------------------------------------------
# drop-ratio model (Section V-B.1)
# ----------------------------------------------------------------------
def drop_ratio(peak_window_size: float) -> float:
    """Aggregate drop ratio ``gamma = 8 / (3 W (W + 2))``.

    One drop per congestion epoch; an epoch delivers
    ``sum_{w=W/2}^{W} w ~= (3/8) W (W + 2)`` packets.
    """
    _require_positive(peak_window_size=peak_window_size)
    return 8.0 / (3.0 * peak_window_size * (peak_window_size + 2.0))


def drop_rate(bandwidth: float, peak_window_size: float) -> float:
    """Aggregate drop rate ``delta = gamma * C`` (drops per time unit)."""
    _require_positive(bandwidth=bandwidth)
    return drop_ratio(peak_window_size) * bandwidth


def window_from_drop_ratio(gamma: float) -> float:
    """Invert :func:`drop_ratio`: ``W`` such that ``8/(3 W (W+2)) = gamma``.

    Solves ``W^2 + 2 W - 8/(3 gamma) = 0`` for the positive root.
    """
    _require_positive(gamma=gamma)
    return -1.0 + math.sqrt(1.0 + 8.0 / (3.0 * gamma))


def flows_from_drop_rate(bandwidth: float, rtt: float, delta: float) -> float:
    """Estimate the number of competing TCP flows from observables.

    Given the serviced bandwidth ``C``, path RTT and measured drop rate
    ``delta`` of a path aggregate, recover ``W`` from
    ``delta = 8 C / (3 W (W + 2))`` and then
    ``n = 4 C RTT / (3 W)``.  This is the router-side flow-count
    estimator of Section V-B.1 (no per-flow state needed).
    """
    _require_positive(bandwidth=bandwidth, rtt=rtt, delta=delta)
    gamma = delta / bandwidth
    w = window_from_drop_ratio(gamma)
    return 4.0 * bandwidth * rtt / (3.0 * w)
