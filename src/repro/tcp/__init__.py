"""TCP substrate: an AIMD packet-level source and the analytic flow model.

:class:`~repro.tcp.source.TcpSource` is a Reno-style congestion-controlled
sender used for all legitimate traffic in the evaluation (and for the
"high-population TCP attack", which is simply more of them).

:mod:`repro.tcp.model` implements the analytic model of paper Section IV-A
(window distribution, mean time to drop, token-bucket parameter equations
IV.1-IV.3) and Section V-B.1 (drop-ratio/flow-count estimation), which the
FLoc router uses to derive its parameters.
"""

from .source import TcpSource
from . import model, validation

__all__ = ["TcpSource", "model", "validation"]
