"""Internet-scale scenario assembly (paper Section VII-A).

A scenario combines a skitter-like route tree, a CBL-like bot placement,
and population-proportional legitimate-source placement into flow tables
ready for the fluid simulator:

* **localized** attacks: bots in 100 ASes (paper Fig. 11),
* **dispersed** attacks: bots in 300 ASes (paper Fig. 12),
* **separated**: no intentional placement of legitimate sources inside
  attack ASes (the paper's final experiment).

Link capacities: the target link is the bottleneck (the paper uses 16,000
packets/tick ~ 40 Gbps at 5 ms ticks); interior links are provisioned
per-subscriber — ``headroom x legit_rate`` per host (bots are subscribers
too) — so most attack traffic reaches the target while the uplinks of
heavily contaminated subtrees clog, the effect the paper notes ("high
priority attack packets from highly contaminated ASs are dropped on the
way to the target as they clog some other links").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ConfigError
from .botlist import place_bots, place_legitimate
from .skitter import SkitterLikeMap, generate_route_tree

PLACEMENTS = ("localized", "dispersed", "separated")


@dataclass
class InternetScenario:
    """Flow tables and link arrays for one Internet-scale simulation."""

    topology: SkitterLikeMap
    placement: str
    target_capacity: float  # packets per tick at the flooded link
    # links: index 0 is the target link; link i>0 carries AS i -> parent
    link_capacity: np.ndarray
    # flows
    flow_origin_as: np.ndarray  # int, per flow
    flow_is_attack: np.ndarray  # bool, per flow
    flow_links: List[np.ndarray] = field(default_factory=list)  # link ids per flow
    attack_ases: List[int] = field(default_factory=list)
    legit_rate: float = 0.5  # max packets/tick per legitimate flow (cap)
    attack_rate: float = 1.0  # packets/tick per bot

    @property
    def n_flows(self) -> int:
        return len(self.flow_origin_as)

    @property
    def n_links(self) -> int:
        return len(self.link_capacity)

    def path_id_of_flow(self, flow: int) -> Tuple[int, ...]:
        """FLoc path identifier (origin-first AS path) of a flow."""
        return self.topology.path_of(int(self.flow_origin_as[flow]))

    def categories(self) -> np.ndarray:
        """0 = legit in legit AS, 1 = legit in attack AS, 2 = attack."""
        attack_as = np.zeros(self.topology.n_as, dtype=bool)
        for asn in self.attack_ases:
            attack_as[asn] = True
        cats = np.zeros(self.n_flows, dtype=np.int8)
        in_attack_as = attack_as[self.flow_origin_as]
        cats[in_attack_as & ~self.flow_is_attack] = 1
        cats[self.flow_is_attack] = 2
        return cats


def build_internet_scenario(
    variant: str = "f-root",
    placement: str = "localized",
    n_as: int = 500,
    n_legit_sources: int = 2_000,
    n_legit_ases: int = 100,
    n_bots: int = 20_000,
    n_attack_ases: int = None,
    target_capacity: float = 1_000.0,
    headroom: float = 1.5,
    attack_rate: float = 1.0,
    legit_rate: float = 1.0,
    seed: int = 7,
    build_flow_links: bool = True,
) -> InternetScenario:
    """Assemble one scenario.

    The paper's full size (10 k legit / 100 k bots / 16 k pkts-per-tick
    target) is reached with ``n_legit_sources=10_000, n_bots=100_000,
    n_as=2000, n_legit_ases=200, target_capacity=16_000``; defaults are a
    5x reduction with identical ratios so the benches run in seconds.

    ``build_flow_links=False`` skips the per-flow link-chain table — the
    only O(flows) Python loop in assembly.  The fluid simulator never
    reads ``flow_links`` (it works on per-AS aggregates), so 10^6-flow
    shard benches turn it off; anything that walks per-flow paths needs
    the default.
    """
    if placement not in PLACEMENTS:
        raise ConfigError(f"unknown placement {placement!r}; choose {PLACEMENTS}")
    if n_attack_ases is None:
        # paper: 100 ASes localized, 300 dispersed; scale with the AS count
        base = 100 if placement == "localized" else 300
        n_attack_ases = max(2, round(base * n_as / 2000))

    topo = generate_route_tree(n_as=n_as, variant=variant)
    rng = random.Random(seed)
    non_root = list(range(1, n_as))

    bots = place_bots(non_root, n_bots, n_attack_ases, rng)
    if placement == "separated":
        # Fig. 15 topologies: legitimate ASes are kept apart from attack
        # ASes (no intentional placement, and sampling avoids them)
        candidates = [a for a in non_root if a not in set(bots.attack_ases)]
        overlap = 0.0
    else:
        candidates = non_root
        overlap = 0.30  # paper: 30 % of legit sources inside attack ASes
    legit = place_legitimate(
        candidates,
        n_legit_sources,
        min(n_legit_ases, len(candidates)),
        rng,
        attack_ases=bots.attack_ases,
        overlap_fraction=overlap,
    )

    # --- flows -----------------------------------------------------------
    origins: List[int] = []
    is_attack: List[bool] = []
    for asn, count in sorted(legit.items()):
        origins.extend([asn] * count)
        is_attack.extend([False] * count)
    for asn, count in sorted(bots.bots_per_as.items()):
        origins.extend([asn] * count)
        is_attack.extend([True] * count)
    flow_origin_as = np.asarray(origins, dtype=np.int64)
    flow_is_attack = np.asarray(is_attack, dtype=bool)

    # --- links ------------------------------------------------------------
    # link 0: the target link (root AS -> destination); link asn (>0):
    # asn -> parent[asn].  Interior links are provisioned per subscriber
    # (hosts below, bots included) at headroom x the legitimate rate.
    hosts_below = np.zeros(n_as, dtype=np.float64)
    all_hosts: Dict[int, int] = dict(legit)
    for asn, count in bots.bots_per_as.items():
        all_hosts[asn] = all_hosts.get(asn, 0) + count
    for asn, count in all_hosts.items():
        node = asn
        while True:
            hosts_below[node] += count
            if node == 0:
                break
            node = topo.parent[node]
    link_capacity = np.empty(n_as, dtype=np.float64)
    link_capacity[0] = target_capacity
    for asn in range(1, n_as):
        link_capacity[asn] = max(
            legit_rate * 10.0, headroom * legit_rate * hosts_below[asn]
        )

    flow_links: List[np.ndarray] = []
    if build_flow_links:
        path_cache: Dict[int, np.ndarray] = {}
        for asn in flow_origin_as:
            links = path_cache.get(asn)
            if links is None:
                chain = []
                node = int(asn)
                while node != 0:
                    chain.append(node)  # link id == AS id for asn -> parent
                    node = topo.parent[node]
                chain.append(0)  # the target link
                links = np.asarray(chain, dtype=np.int64)
                path_cache[int(asn)] = links
            flow_links.append(links)

    return InternetScenario(
        topology=topo,
        placement=placement,
        target_capacity=target_capacity,
        link_capacity=link_capacity,
        flow_origin_as=flow_origin_as,
        flow_is_attack=flow_is_attack,
        flow_links=flow_links,
        attack_ases=list(bots.attack_ases),
        legit_rate=legit_rate,
        attack_rate=attack_rate,
    )
