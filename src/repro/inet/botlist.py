"""CBL-like bot placement and GeoLite-like AS populations.

The paper's measured facts that we reproduce synthetically:

* bot contamination is highly non-uniform — in the Composite Blocking
  List, "95% of the IP addresses belong to 1.7% of active ASs"
  (Section I); within the contaminated ASes the counts are heavy-tailed;
* legitimate hosts are placed "randomly in proportion to AS population"
  (Section VII-A), with AS populations heavy-tailed (GeoLite ASN).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import ConfigError


@dataclass
class BotPlacement:
    """Bots per AS plus the set of contaminated (attack) ASes."""

    bots_per_as: Dict[int, int]
    attack_ases: List[int]

    @property
    def total_bots(self) -> int:
        return sum(self.bots_per_as.values())

    def concentration(self, top_fraction: float = 0.017) -> float:
        """Fraction of bots inside the top ``top_fraction`` of attack ASes.

        With the CBL-calibrated default this should come out near 0.95
        when the AS universe is large enough.
        """
        counts = sorted(self.bots_per_as.values(), reverse=True)
        top = max(1, round(top_fraction * len(counts)))
        return sum(counts[:top]) / max(1, self.total_bots)


def heavy_tailed_populations(
    n_as: int, rng: random.Random, alpha: float = 1.2
) -> List[float]:
    """Zipf-like AS population weights (GeoLite-style heavy tail)."""
    ranks = list(range(1, n_as + 1))
    rng.shuffle(ranks)
    return [1.0 / (rank ** alpha) for rank in ranks]


def place_bots(
    candidate_ases: Sequence[int],
    n_bots: int,
    n_attack_ases: int,
    rng: random.Random,
    core_fraction: float = 0.95,
    core_as_fraction: float = 0.10,
) -> BotPlacement:
    """Distribute ``n_bots`` over ``n_attack_ases`` contaminated ASes.

    A ``core_as_fraction`` of the attack ASes (at least one) receives
    ``core_fraction`` of the bots Zipf-style; the rest are spread thinly —
    matching CBL's extreme concentration.
    """
    if n_attack_ases < 1:
        raise ConfigError(f"n_attack_ases must be >= 1, got {n_attack_ases}")
    if n_attack_ases > len(candidate_ases):
        raise ConfigError(
            f"need {n_attack_ases} attack ASes but only "
            f"{len(candidate_ases)} candidates"
        )
    attack_ases = rng.sample(list(candidate_ases), n_attack_ases)
    n_core = max(1, round(core_as_fraction * n_attack_ases))
    core, fringe = attack_ases[:n_core], attack_ases[n_core:]

    bots_per_as: Dict[int, int] = {asn: 0 for asn in attack_ases}
    core_bots = round(core_fraction * n_bots) if fringe else n_bots
    weights = [1.0 / (i + 1) for i in range(len(core))]
    total_w = sum(weights)
    assigned = 0
    for asn, w in zip(core, weights):
        share = round(core_bots * w / total_w)
        bots_per_as[asn] += share
        assigned += share
    fringe_bots = n_bots - assigned
    if fringe:
        for i in range(max(0, fringe_bots)):
            bots_per_as[fringe[i % len(fringe)]] += 1
    else:
        bots_per_as[core[0]] += max(0, fringe_bots)
    return BotPlacement(bots_per_as=bots_per_as, attack_ases=attack_ases)


def place_legitimate(
    candidate_ases: Sequence[int],
    n_sources: int,
    n_legit_ases: int,
    rng: random.Random,
    attack_ases: Sequence[int] = (),
    overlap_fraction: float = 0.0,
) -> Dict[int, int]:
    """Place legitimate sources proportionally to AS population.

    ``overlap_fraction`` of the sources are deliberately attached to
    attack ASes (the paper places 30 % there "in order to observe
    differential guarantees", Section VII-A).
    """
    if n_legit_ases > len(candidate_ases):
        raise ConfigError(
            f"need {n_legit_ases} legit ASes but only "
            f"{len(candidate_ases)} candidates"
        )
    chosen = rng.sample(list(candidate_ases), n_legit_ases)
    populations = heavy_tailed_populations(len(chosen), rng)
    total_pop = sum(populations)

    overlap = round(overlap_fraction * n_sources) if attack_ases else 0
    normal = n_sources - overlap

    sources_per_as: Dict[int, int] = {}
    assigned = 0
    for asn, pop in zip(chosen, populations):
        count = int(normal * pop / total_pop)
        if count:
            sources_per_as[asn] = sources_per_as.get(asn, 0) + count
            assigned += count
    # distribute rounding remainder
    remainder = normal - assigned
    for i in range(remainder):
        asn = chosen[i % len(chosen)]
        sources_per_as[asn] = sources_per_as.get(asn, 0) + 1

    if overlap:
        attack_list = list(attack_ases)
        for i in range(overlap):
            asn = attack_list[rng.randrange(len(attack_list))]
            sources_per_as[asn] = sources_per_as.get(asn, 0) + 1
    return sources_per_as
