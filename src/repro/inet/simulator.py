"""Vectorised fluid simulator for Internet-scale experiments.

This is the Section VII-B simulator re-expressed at flow-aggregate
granularity: time advances in ticks, every link passes
``min(offered, capacity)`` with a uniform (random-drop) loss fraction, and
per-flow TCP behaviour follows the standard AIMD fluid model
(``dw/dt = 1/RTT - (w/2) * p * r``), which is the continuous limit of the
paper's per-packet window dynamics.  With 10^5 flows this runs in seconds
where per-packet simulation would take hours, and — as the paper itself
argues for its own coarse simulator — bandwidth *shares* at the target
link are insensitive to the abstraction level.

The tree structure makes upstream propagation exact and cheap: a link's
offered load is its own AS's source rate plus its children's admitted
output, computed root-ward in one pass per tick.

Three target-link strategies reproduce the paper's comparisons:

* ``nd`` — no defense: uniform random drop at the target;
* ``ff`` — per-flow fairness with oracle priority for legitimate flows
  (Section VII-C's description, exactly);
* ``floc`` — per-path-identifier allocation with MTD-equivalent attack
  flagging, Eq.-(IV.5)-equivalent preferential caps, conformance tracking
  and the *same* aggregation code (Algorithm 1 and Eq. IV.8) used by the
  packet-level router.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.aggregation import build_plan
from ..core.conformance import ConformanceTracker
from ..errors import ConfigError
from ..telemetry import NullTelemetry, current
from .scenarios import InternetScenario

STRATEGIES = ("nd", "ff", "floc")

CATEGORY_NAMES = ("legit_in_legit", "legit_in_attack", "attack")


@dataclass
class FluidResult:
    """Bandwidth shares at the target link over the measurement window."""

    strategy: str
    s_max: Optional[int]
    shares: Dict[str, float]  # category -> fraction of target capacity
    utilization: float
    per_flow_mean: Dict[str, float]  # category -> mean rate, pkts/tick
    n_flows: Dict[str, int]
    n_groups: int = 0
    series: List[Tuple[int, float, float, float]] = field(default_factory=list)

    @property
    def legit_total(self) -> float:
        return self.shares["legit_in_legit"] + self.shares["legit_in_attack"]


class FluidSimulator:
    """Runs one scenario under one target-link strategy."""

    def __init__(
        self,
        scenario: InternetScenario,
        strategy: str = "floc",
        s_max: Optional[int] = None,
        attack_flag_factor: float = 1.5,
        aggregation_interval: int = 50,
        seed: int = 11,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ConfigError(f"unknown strategy {strategy!r}; choose {STRATEGIES}")
        self.scn = scenario
        self.strategy = strategy
        self.s_max = s_max
        self.attack_flag_factor = attack_flag_factor
        self.aggregation_interval = aggregation_interval
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        # fault support: per-tick hooks (same interface as Engine, so a
        # repro.faults.FaultSchedule installs on either simulator) and the
        # post-restart warm-up window of the target defense
        self._tick_hooks: List[Callable[["FluidSimulator", int], None]] = []
        self._hook_labels: List[str] = []
        self._warmup_until: Optional[int] = None
        # observation only: the current telemetry facade (NULL_TELEMETRY
        # unless the simulator is built inside a repro.telemetry.use block)
        self.telemetry: NullTelemetry = current()

        scn = scenario
        self.n_flows = scn.n_flows
        self.origin = scn.flow_origin_as
        self.is_attack = scn.flow_is_attack
        self.cats = scn.categories()
        # RTT: two ticks per AS hop plus destination handling
        depth = np.asarray(scn.topology.depth, dtype=np.float64)
        self.rtt = 2.0 * (depth[self.origin] + 2.0)
        self.w_max = scn.legit_rate * self.rtt
        self.w = np.minimum(2.0, self.w_max)
        # per-AS topology helpers
        self.parent = np.asarray(scn.topology.parent, dtype=np.int64)
        order = np.argsort(-depth)  # deepest first: children before parents
        self.as_order = order
        # per-flow group assignment: start with identity (one group per
        # origin-AS path)
        self.pid_of_as = {
            asn: scn.topology.path_of(asn) for asn in set(self.origin.tolist())
        }
        self.conformance = ConformanceTracker(beta=0.2)
        self._plan = None
        self._group_index: Optional[np.ndarray] = None
        self._group_shares: Optional[np.ndarray] = None
        self._flagged = np.zeros(self.n_flows, dtype=bool)
        # smoothed send rate: the fluid analogue of the MTD measurement
        # window (Eq. IV.4 averages drops over k periods; drops are
        # proportional to send rate, so a smoothed rate carries the same
        # signal)
        self._rate_ewma = np.zeros(self.n_flows, dtype=np.float64)
        self.n_groups = 0

    # ------------------------------------------------------------------
    # fault support (used by repro.faults injectors)
    # ------------------------------------------------------------------
    def spawn_rng(self, name: str) -> random.Random:
        """Derive a deterministic, independent RNG from the master seed
        (mirrors :meth:`repro.net.engine.Engine.spawn_rng`)."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def add_tick_hook(
        self, hook: Callable[["FluidSimulator", int], None]
    ) -> None:
        """Run ``hook(sim, tick)`` at the start of every tick."""
        self._tick_hooks.append(hook)
        label = (
            getattr(hook, "telemetry_label", None)
            or getattr(hook, "__name__", None)
            or type(hook).__name__
        )
        self._hook_labels.append(str(label))

    def restart_defense(self, now: int, warmup_ticks: int = 50) -> None:
        """Simulate a restart of the target router's defense.

        Conformance, aggregation plan, flags, and the smoothed rates (the
        MTD analogue) are wiped; until ``now + warmup_ticks`` the target
        admits neutrally (uniform random drop, like ``nd``), after which
        FLoc resumes from cold estimates.  No-op effect for the stateless
        ``nd``/``ff`` strategies beyond clearing the FLoc-only arrays.
        """
        self.conformance = ConformanceTracker(beta=0.2)
        self._plan = None
        self._group_index = None
        self._group_shares = None
        self._flagged[:] = False
        self._rate_ewma[:] = 0.0
        self.n_groups = 0
        self._warmup_until = now + warmup_ticks

    # ------------------------------------------------------------------
    # per-tick pieces
    # ------------------------------------------------------------------
    def _send_rates(self) -> np.ndarray:
        rates = np.where(
            self.is_attack, self.scn.attack_rate, self.w / self.rtt
        )
        return rates

    def _upstream_survival(self, rates: np.ndarray) -> np.ndarray:
        """Per-AS survival fraction from origin to (not including) the
        target link, plus the per-link pass fractions."""
        scn = self.scn
        n_as = scn.topology.n_as
        own = np.zeros(n_as, dtype=np.float64)
        np.add.at(own, self.origin, rates)
        admitted = np.zeros(n_as, dtype=np.float64)
        passfrac = np.ones(n_as, dtype=np.float64)
        inflow = own.copy()
        for asn in self.as_order:
            if asn == 0:
                continue
            offered = inflow[asn]
            cap = scn.link_capacity[asn]
            if offered > cap > 0:
                passfrac[asn] = cap / offered
                admitted[asn] = cap
            else:
                admitted[asn] = offered
            inflow[self.parent[asn]] += admitted[asn]
        # survival per AS = product of passfrac along the chain to root
        surv = np.ones(n_as, dtype=np.float64)
        for asn in self.as_order[::-1]:  # shallow first: parents before kids
            if asn == 0:
                continue
            surv[asn] = surv[self.parent[asn]] * passfrac[asn]
        return surv

    # -- target-link strategies ------------------------------------------
    def _admit_nd(self, arrivals: np.ndarray) -> np.ndarray:
        total = arrivals.sum()
        cap = self.scn.target_capacity
        if total <= cap:
            return arrivals
        return arrivals * (cap / total)

    def _admit_ff(self, arrivals: np.ndarray) -> np.ndarray:
        """Section VII-C, verbatim: one high-priority pool holds all
        legitimate packets plus attack packets up to their fair bandwidth;
        normal-priority (excess attack) packets are serviced only from
        whatever capacity the pool leaves idle."""
        cap = self.scn.target_capacity
        fair = cap / max(1, self.n_flows)
        legit = ~self.is_attack
        hp = np.where(legit, arrivals, np.minimum(arrivals, fair))
        hp_total = hp.sum()
        if hp_total >= cap:
            return hp * (cap / hp_total)
        admitted = hp.copy()
        remaining = cap - hp_total
        lp = np.where(self.is_attack, arrivals - hp, 0.0)
        lp_total = lp.sum()
        if lp_total > 0:
            admitted += lp * min(1.0, remaining / lp_total)
        return admitted

    def _rebuild_groups(self) -> None:
        """Run conformance partition + aggregation, rebuild group arrays."""
        ases = sorted(self.pid_of_as)
        pids = [self.pid_of_as[a] for a in ases]
        counts_by_as = np.bincount(self.origin, minlength=self.scn.topology.n_as)
        flow_counts = {
            self.pid_of_as[asn]: int(counts_by_as[asn]) for asn in ases
        }
        legit, attack = self.conformance.partition(pids, threshold=0.5)
        s_max = self.s_max
        self._plan = build_plan(
            legit,
            attack,
            self.conformance.values(),
            {pid: float(c) for pid, c in flow_counts.items()},
            s_max,
        )
        group_keys = {}
        group_of_as = np.zeros(self.scn.topology.n_as, dtype=np.int64)
        shares: List[float] = []
        for asn in ases:
            key = self._plan.group(self.pid_of_as[asn])
            if key not in group_keys:
                group_keys[key] = len(shares)
                shares.append(self._plan.shares.get(key, 1.0))
            group_of_as[asn] = group_keys[key]
        self._group_index = group_of_as[self.origin]
        self._group_shares = np.asarray(shares, dtype=np.float64)
        self.n_groups = len(shares)

    def _admit_floc(self, arrivals: np.ndarray, tick: int) -> np.ndarray:
        if self._warmup_until is not None:
            if tick >= self._warmup_until:
                self._warmup_until = None
            else:
                # post-restart warm-up: no per-path state to allocate by,
                # so degrade to neutral admission while rates re-smooth
                admitted = self._admit_nd(arrivals)
                tel = self.telemetry
                if tel.enabled:
                    tel.record_fluid_drop_volumes(
                        tick, neutral=float(arrivals.sum() - admitted.sum())
                    )
                return admitted
        cap = self.scn.target_capacity
        tel = self.telemetry
        if self._group_index is None or (
            tick > 0 and tick % self.aggregation_interval == 0
        ):
            previous_groups = self.n_groups
            self._rebuild_groups()
            if tel.enabled:
                tel.registry.gauge("fluid_groups_count").set(float(self.n_groups))
                if tel.trace_enabled and self.n_groups != previous_groups:
                    tel.emit_event(
                        tick, "fluid_regroup", "aggregation",
                        n_groups=self.n_groups,
                        previous_count=previous_groups,
                    )
        gidx = self._group_index
        shares = self._group_shares
        n_groups = self.n_groups
        alloc = cap * shares / shares.sum()

        group_arrival = np.bincount(gidx, weights=arrivals, minlength=n_groups)
        group_flows = np.bincount(gidx, minlength=n_groups).astype(np.float64)
        fair = alloc / np.maximum(group_flows, 1.0)

        # MTD-equivalent flagging: a flow whose *smoothed* send rate stays
        # above the flag factor times its fair share, inside an
        # over-subscribed group, is an attack flow (its drop rate — and so
        # its MTD — tracks that sustained rate; adaptive TCP flows decay
        # below the bar within an RTT or two).
        oversub = group_arrival > alloc
        # the AIMD fluid model bottoms out at w = sqrt(2) (timeouts are not
        # modelled), so a conformant-but-starved TCP flow cannot send
        # slower than ~sqrt(2)/RTT; rates at or below that floor are what
        # the MTD reference classifies as responsive, so they never flag.
        tcp_floor = 2.5 / self.rtt
        bar = np.maximum(self.attack_flag_factor * fair[gidx], tcp_floor)
        previously_flagged = self._flagged
        self._flagged = (self._rate_ewma > bar) & oversub[gidx]
        if tel.enabled:
            newly = int(np.count_nonzero(self._flagged & ~previously_flagged))
            cleared = int(np.count_nonzero(previously_flagged & ~self._flagged))
            if newly or cleared:
                tel.registry.counter("fluid_flag_transitions_count").inc(
                    float(newly + cleared)
                )
                if tel.trace_enabled:
                    tel.emit_event(
                        tick, "fluid_flag", "mtd",
                        newly_flagged=newly, cleared=cleared,
                        flagged_total=int(np.count_nonzero(self._flagged)),
                    )
        # Eq.-(IV.5) preferential cap: flagged flows get at most fair share
        capped = np.where(self._flagged, np.minimum(arrivals, fair[gidx]), arrivals)

        group_demand = np.bincount(gidx, weights=capped, minlength=n_groups)
        scale = np.minimum(1.0, alloc / np.maximum(group_demand, 1e-12))
        admitted = capped * scale[gidx]

        # work conservation (congested-mode random drop admits without
        # tokens): leftover capacity goes to *unflagged* flows' unmet
        # demand first — flagged flows are still preferentially dropped —
        # and only then to flagged flows.
        leftover = cap - admitted.sum()
        if leftover > 1e-9:
            unmet = arrivals - admitted
            for mask in (~self._flagged, self._flagged):
                pool = np.where(mask, unmet, 0.0)
                pool_total = pool.sum()
                if pool_total > 1e-9:
                    grant = pool * min(1.0, leftover / pool_total)
                    admitted = admitted + grant
                    leftover -= grant.sum()
                if leftover <= 1e-9:
                    break
        if tel.enabled:
            # drop provenance, fluid analogue: a flagged flow's unmet
            # demand is the Eq.-(IV.5) preferential cap; an unflagged
            # flow's is the group allocation limit (the token-bucket
            # stage of the packet engine)
            deficit = np.maximum(arrivals - admitted, 0.0)
            tel.record_fluid_drop_volumes(
                tick,
                preferential=float(deficit[self._flagged].sum()),
                token=float(deficit[~self._flagged].sum()),
            )
        return admitted

    # ------------------------------------------------------------------
    # stepwise run interface (crash-safe checkpointing: repro.runner
    # pickles the simulator between step_run calls, so every piece of run
    # state lives on self rather than in loop locals)
    # ------------------------------------------------------------------
    def begin_run(
        self,
        ticks: int = 400,
        warmup: int = 100,
        record_series: bool = False,
    ) -> None:
        """Initialise accumulators for a ``ticks``-long measured run."""
        if ticks < 0:
            raise ConfigError(f"cannot run a negative tick count, got {ticks}")
        self._run_ticks = ticks
        self._run_warmup = warmup
        self._run_record_series = record_series
        self._run_tick = 0
        self._acc = np.zeros(self.n_flows, dtype=np.float64)
        self._measured_ticks = 0
        self._series: List[Tuple[int, float, float, float]] = []
        self._conf_interval = max(10, self.aggregation_interval // 2)
        self._last_admitted: Optional[np.ndarray] = None

    def step_run(self) -> bool:
        """Advance one tick; returns ``False`` once the run is complete."""
        if self._run_tick >= self._run_ticks:
            return False
        tick = self._run_tick
        cap = self.scn.target_capacity
        tel = self.telemetry
        prof = tel.profiler if tel.profile_enabled else None
        clock = prof.start() if prof is not None else 0.0
        if prof is None:
            for hook in self._tick_hooks:
                hook(self, tick)
        else:
            for hook, label in zip(self._tick_hooks, self._hook_labels):
                hook(self, tick)
                clock = prof.lap(label, clock)
        rates = self._send_rates()
        self._rate_ewma += 0.1 * (rates - self._rate_ewma)
        if prof is not None:
            clock = prof.lap("sources", clock)
        surv = self._upstream_survival(rates)
        arrivals = rates * surv[self.origin]
        if prof is not None:
            clock = prof.lap("queueing", clock)
        if self.strategy == "nd":
            admitted = self._admit_nd(arrivals)
        elif self.strategy == "ff":
            admitted = self._admit_ff(arrivals)
        else:
            admitted = self._admit_floc(arrivals, tick)
            if tick % self._conf_interval == 0:
                self._update_conformance()
        if prof is not None:
            clock = prof.lap("policy", clock)
        if tel.enabled and tick % tel.sample_interval_ticks == 0:
            tel.registry.series("fluid_admitted_pkts_per_tick").sample(
                tick, float(admitted.sum())
            )
        # TCP fluid update for legitimate flows
        p_drop = 1.0 - np.divide(
            admitted, rates, out=np.ones_like(rates), where=rates > 1e-12
        )
        p_drop = np.clip(p_drop, 0.0, 1.0)
        legit = ~self.is_attack
        w = self.w
        dw = 1.0 / self.rtt - 0.5 * w * p_drop * rates
        w = np.where(legit, np.clip(w + dw, 0.5, self.w_max), w)
        self.w = w
        self._last_admitted = admitted
        if tick >= self._run_warmup:
            self._acc += admitted
            self._measured_ticks += 1
            if self._run_record_series:
                self._series.append(
                    (
                        tick,
                        float(admitted[self.cats == 0].sum() / cap),
                        float(admitted[self.cats == 1].sum() / cap),
                        float(admitted[self.cats == 2].sum() / cap),
                    )
                )
        if prof is not None:
            prof.lap("tcp", clock)
            prof.tick_done()
        self._run_tick = tick + 1
        return self._run_tick < self._run_ticks

    def finish_run(self) -> FluidResult:
        """Assemble the :class:`FluidResult` for a completed (or salvaged
        partial) run."""
        if self.telemetry.enabled:
            self.telemetry.scrape_fluid(self)
        cap = self.scn.target_capacity
        acc = self._acc
        measured_ticks = self._measured_ticks
        budget = cap * max(1, measured_ticks)
        shares = {}
        per_flow_mean = {}
        n_flows = {}
        for idx, name in enumerate(CATEGORY_NAMES):
            mask = self.cats == idx
            total = float(acc[mask].sum())
            shares[name] = total / budget
            count = int(mask.sum())
            n_flows[name] = count
            per_flow_mean[name] = (
                total / (count * max(1, measured_ticks)) if count else 0.0
            )
        return FluidResult(
            strategy=self.strategy,
            s_max=self.s_max,
            shares=shares,
            utilization=float(acc.sum()) / budget,
            per_flow_mean=per_flow_mean,
            n_flows=n_flows,
            n_groups=self.n_groups,
            series=self._series,
        )

    def run(
        self,
        ticks: int = 400,
        warmup: int = 100,
        record_series: bool = False,
    ) -> FluidResult:
        """Simulate and return bandwidth shares at the target link."""
        self.begin_run(ticks, warmup, record_series)
        while self.step_run():
            pass
        return self.finish_run()

    def _update_conformance(self) -> None:
        """Fold the current flagging into per-path conformance."""
        n_as = self.scn.topology.n_as
        totals = np.bincount(self.origin, minlength=n_as)
        flagged = np.bincount(
            self.origin, weights=self._flagged.astype(np.float64), minlength=n_as
        )
        for asn, pid in self.pid_of_as.items():
            self.conformance.update(pid, int(totals[asn]), int(flagged[asn]))
