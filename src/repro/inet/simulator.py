"""Vectorised fluid simulator for Internet-scale experiments.

This is the Section VII-B simulator re-expressed at flow-aggregate
granularity: time advances in ticks, every link passes
``min(offered, capacity)`` with a uniform (random-drop) loss fraction, and
per-flow TCP behaviour follows the standard AIMD fluid model
(``dw/dt = 1/RTT - (w/2) * p * r``), which is the continuous limit of the
paper's per-packet window dynamics.  With 10^5 flows this runs in seconds
where per-packet simulation would take hours, and — as the paper itself
argues for its own coarse simulator — bandwidth *shares* at the target
link are insensitive to the abstraction level.

The tree structure makes upstream propagation exact and cheap: a link's
offered load is its own AS's source rate plus its children's admitted
output, computed root-ward in one pass per tick.

Three target-link strategies reproduce the paper's comparisons:

* ``nd`` — no defense: uniform random drop at the target;
* ``ff`` — per-flow fairness with oracle priority for legitimate flows
  (Section VII-C's description, exactly);
* ``floc`` — per-path-identifier allocation with MTD-equivalent attack
  flagging, Eq.-(IV.5)-equivalent preferential caps, conformance tracking
  and the *same* aggregation code (Algorithm 1 and Eq. IV.8) used by the
  packet-level router.

Shard mode
----------

The simulator can run a *partition* of the flow population (one origin-AS
shard of the path-identifier space, see :mod:`repro.inet.shard`) while
remaining bit-identical to the serial run.  The trick is that **every
cross-flow reduction goes through full-length per-AS vectors**: each
shard bincounts its local flows per origin AS (all flows of an AS live in
exactly one shard, in the same relative order as serially, so every
per-AS partial sum is the bit-exact serial value), shards exchange the
per-AS partials through a barrier exchange that rebuilds the full vector
by *assignment* from the owning shard (never addition), and all global
scalars are reduced from that identical full vector with identical numpy
operations.  A serial simulator is simply the degenerate case where the
local bincount already *is* the full vector and the exchange is a
pass-through.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.aggregation import build_plan
from ..core.conformance import ConformanceTracker
from ..errors import ConfigError
from ..telemetry import NullTelemetry, current
from .scenarios import InternetScenario

STRATEGIES = ("nd", "ff", "floc")

CATEGORY_NAMES = ("legit_in_legit", "legit_in_attack", "attack")


@dataclass
class FluidResult:
    """Bandwidth shares at the target link over the measurement window."""

    strategy: str
    s_max: Optional[int]
    shares: Dict[str, float]  # category -> fraction of target capacity
    utilization: float
    per_flow_mean: Dict[str, float]  # category -> mean rate, pkts/tick
    n_flows: Dict[str, int]
    n_groups: int = 0
    series: List[Tuple[int, float, float, float]] = field(default_factory=list)

    @property
    def legit_total(self) -> float:
        return self.shares["legit_in_legit"] + self.shares["legit_in_attack"]


def result_from_matrix(
    *,
    strategy: str,
    s_max: Optional[int],
    n_groups: int,
    matrix: np.ndarray,
    measured_ticks: int,
    target_capacity: float,
    n_flows_by_cat: Dict[str, int],
    series: List[Tuple[int, float, float, float]],
) -> FluidResult:
    """Assemble a :class:`FluidResult` from the canonical per-(category,
    origin-AS) admitted-volume matrix.

    Serial ``finish_run`` and the shard merge (:func:`repro.inet.shard.
    merge_shard_results`) both build their result through this one
    function, from bit-identical matrices — which is what makes a merged
    shard run byte-identical to the serial run by construction.
    """
    budget = target_capacity * max(1, measured_ticks)
    shares: Dict[str, float] = {}
    per_flow_mean: Dict[str, float] = {}
    n_flows: Dict[str, int] = {}
    for idx, name in enumerate(CATEGORY_NAMES):
        total = float(np.sum(matrix[idx]))
        shares[name] = total / budget
        count = int(n_flows_by_cat[name])
        n_flows[name] = count
        per_flow_mean[name] = (
            total / (count * max(1, measured_ticks)) if count else 0.0
        )
    return FluidResult(
        strategy=strategy,
        s_max=s_max,
        shares=shares,
        utilization=float(np.sum(matrix)) / budget,
        per_flow_mean=per_flow_mean,
        n_flows=n_flows,
        n_groups=n_groups,
        series=list(series),
    )


class FluidSimulator:
    """Runs one scenario under one target-link strategy.

    With ``shard`` set (a :class:`repro.inet.shard.ShardSpec`), the
    simulator keeps only the flows whose origin AS the shard owns, and
    every cross-flow reduction goes through the attached barrier
    exchange (see the module docstring).  Global, deterministic state —
    per-AS flow counts, the path-id map, conformance, the aggregation
    plan — is replicated identically on every shard.
    """

    def __init__(
        self,
        scenario: InternetScenario,
        strategy: str = "floc",
        s_max: Optional[int] = None,
        attack_flag_factor: float = 1.5,
        aggregation_interval: int = 50,
        seed: int = 11,
        shard: Optional[Any] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ConfigError(f"unknown strategy {strategy!r}; choose {STRATEGIES}")
        self.scn = scenario
        self.strategy = strategy
        self.s_max = s_max
        self.attack_flag_factor = attack_flag_factor
        self.aggregation_interval = aggregation_interval
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        # fault support: per-tick hooks (same interface as Engine, so a
        # repro.faults.FaultSchedule installs on either simulator) and the
        # post-restart warm-up window of the target defense
        self._tick_hooks: List[Callable[["FluidSimulator", int], None]] = []
        self._hook_labels: List[str] = []
        self._warmup_until: Optional[int] = None
        # observation only: the current telemetry facade (NULL_TELEMETRY
        # unless the simulator is built inside a repro.telemetry.use block)
        self.telemetry: NullTelemetry = current()

        scn = scenario
        n_as = scn.topology.n_as
        origin_all = scn.flow_origin_as
        cats_all = scn.categories()
        # global (scenario-wide) statistics, identical on every shard:
        # group plans, conformance totals, fair shares, and result
        # denominators must never depend on which flows are local
        self.n_flows_total = scn.n_flows
        self._counts_by_as = np.bincount(origin_all, minlength=n_as)
        self._n_flows_by_cat = {
            name: int(np.count_nonzero(cats_all == idx))
            for idx, name in enumerate(CATEGORY_NAMES)
        }
        self.pid_of_as = {
            asn: scn.topology.path_of(asn) for asn in set(origin_all.tolist())
        }
        self._shard = shard
        self._exchange: Optional[Any] = None
        if shard is None:
            self.origin = origin_all
            self.is_attack = scn.flow_is_attack
            self.cats = cats_all
        else:
            keep = shard.shard_of_as[origin_all] == shard.shard
            self.origin = origin_all[keep]
            self.is_attack = scn.flow_is_attack[keep]
            self.cats = cats_all[keep]
        self.n_flows = int(self.origin.shape[0])
        # RTT: two ticks per AS hop plus destination handling
        depth = np.asarray(scn.topology.depth, dtype=np.float64)
        self.rtt = 2.0 * (depth[self.origin] + 2.0)
        self.w_max = scn.legit_rate * self.rtt
        self.w = np.minimum(2.0, self.w_max)
        # per-AS topology helpers
        self.parent = np.asarray(scn.topology.parent, dtype=np.int64)
        order = np.argsort(-depth)  # deepest first: children before parents
        self.as_order = order
        self.conformance = ConformanceTracker(beta=0.2)
        self._plan = None
        self._group_index: Optional[np.ndarray] = None
        self._group_of_as: Optional[np.ndarray] = None
        self._group_shares: Optional[np.ndarray] = None
        self._flagged = np.zeros(self.n_flows, dtype=bool)
        # smoothed send rate: the fluid analogue of the MTD measurement
        # window (Eq. IV.4 averages drops over k periods; drops are
        # proportional to send rate, so a smoothed rate carries the same
        # signal)
        self._rate_ewma = np.zeros(self.n_flows, dtype=np.float64)
        self.n_groups = 0

    # ------------------------------------------------------------------
    # shard support
    # ------------------------------------------------------------------
    def attach_exchange(self, exchange: Any) -> None:
        """Attach the barrier exchange a shard-mode simulator reduces
        through.  Must be (re)called after every checkpoint load — the
        exchange is deliberately dropped from pickled state."""
        if self._shard is None:
            raise ConfigError(
                "attach_exchange() on a non-sharded simulator; pass a "
                "ShardSpec to the constructor first"
            )
        self._exchange = exchange

    def __getstate__(self) -> Dict[str, Any]:
        # the exchange may hold an injected poll hook (a bound watchdog
        # method); checkpoints must never carry it, and a fresh exchange
        # is attached after load anyway (see ShardUnitTask.run)
        state = dict(self.__dict__)
        state["_exchange"] = None
        return state

    def _allreduce(
        self,
        tick: int,
        round_key: str,
        vectors: Dict[str, np.ndarray],
        counts: Optional[Dict[str, int]] = None,
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        """Resolve per-AS partial vectors into full (global) vectors.

        Serial runs pass through untouched: a lone simulator's bincounts
        over all flows *are* the global vectors.  Shard-mode simulators
        delegate to the attached exchange, which assembles each full
        vector column-by-column from the owning shard — by assignment,
        never addition, so the result is bit-identical to serial.
        Integer ``counts`` are summed across shards (exact in any order).
        """
        if self._shard is None:
            return vectors, dict(counts or {})
        if self._exchange is None:
            raise ConfigError(
                "shard-mode FluidSimulator has no exchange attached; "
                "call attach_exchange() before stepping"
            )
        return self._exchange.allreduce(
            tick, round_key, vectors, dict(counts or {})
        )

    # ------------------------------------------------------------------
    # fault support (used by repro.faults injectors)
    # ------------------------------------------------------------------
    def spawn_rng(self, name: str) -> random.Random:
        """Derive a deterministic, independent RNG from the master seed
        (mirrors :meth:`repro.net.engine.Engine.spawn_rng`)."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def add_tick_hook(
        self, hook: Callable[["FluidSimulator", int], None]
    ) -> None:
        """Run ``hook(sim, tick)`` at the start of every tick."""
        self._tick_hooks.append(hook)
        label = (
            getattr(hook, "telemetry_label", None)
            or getattr(hook, "__name__", None)
            or type(hook).__name__
        )
        self._hook_labels.append(str(label))

    def restart_defense(self, now: int, warmup_ticks: int = 50) -> None:
        """Simulate a restart of the target router's defense.

        Conformance, aggregation plan, flags, and the smoothed rates (the
        MTD analogue) are wiped; until ``now + warmup_ticks`` the target
        admits neutrally (uniform random drop, like ``nd``), after which
        FLoc resumes from cold estimates.  No-op effect for the stateless
        ``nd``/``ff`` strategies beyond clearing the FLoc-only arrays.

        Unlike the packet router, fluid per-AS state is bounded by the
        scenario's AS count, so restart is the only eviction cause here;
        it reports through the same telemetry channel as the packet
        policy's ``path_evict`` for cross-simulator comparison.
        """
        lost = len(self.conformance)
        tel = self.telemetry
        if tel.enabled and lost:
            tel.registry.labeled("path_evictions_by_cause_count").inc(
                "restart", lost
            )
            if tel.trace_enabled:
                tel.emit_event(
                    now, "path_evict", "policy",
                    cause="restart", count=lost, backend="fluid",
                )
        self.conformance = ConformanceTracker(beta=0.2)
        self._plan = None
        self._group_index = None
        self._group_of_as = None
        self._group_shares = None
        self._flagged[:] = False
        self._rate_ewma[:] = 0.0
        self.n_groups = 0
        self._warmup_until = now + warmup_ticks

    # ------------------------------------------------------------------
    # per-tick pieces
    # ------------------------------------------------------------------
    def _send_rates(self) -> np.ndarray:
        rates = np.where(
            self.is_attack, self.scn.attack_rate, self.w / self.rtt
        )
        return rates

    def _loads_by_as(self, rates: np.ndarray) -> np.ndarray:
        """Per-origin-AS source load, reduced over *local* flows.

        ``np.bincount`` accumulates in input order, and a shard holds
        every flow of its owned ASes in serial relative order, so each
        owned entry is the bit-exact serial partial sum.
        """
        return np.bincount(
            self.origin, weights=rates, minlength=self.scn.topology.n_as
        )

    def _survival_from_loads(self, own: np.ndarray) -> np.ndarray:
        """Per-AS survival fraction from origin to (not including) the
        target link, given the *full* per-AS source-load vector."""
        scn = self.scn
        n_as = scn.topology.n_as
        admitted = np.zeros(n_as, dtype=np.float64)
        passfrac = np.ones(n_as, dtype=np.float64)
        inflow = own.copy()
        for asn in self.as_order:
            if asn == 0:
                continue
            offered = inflow[asn]
            cap = scn.link_capacity[asn]
            if offered > cap > 0:
                passfrac[asn] = cap / offered
                admitted[asn] = cap
            else:
                admitted[asn] = offered
            inflow[self.parent[asn]] += admitted[asn]
        # survival per AS = product of passfrac along the chain to root
        surv = np.ones(n_as, dtype=np.float64)
        for asn in self.as_order[::-1]:  # shallow first: parents before kids
            if asn == 0:
                continue
            surv[asn] = surv[self.parent[asn]] * passfrac[asn]
        return surv

    def _upstream_survival(self, rates: np.ndarray) -> np.ndarray:
        """Serial convenience wrapper: reduce local rates per AS and
        propagate.  Shard-mode ``step_run`` exchanges the load vector
        through the barrier before calling ``_survival_from_loads``."""
        return self._survival_from_loads(self._loads_by_as(rates))

    # -- target-link strategies ------------------------------------------
    def _admit_nd(
        self, arrivals: np.ndarray, arr_by_as: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Uniform random-drop admission.

        The arrival total is always reduced from the canonical per-AS
        vector — never from the local flow array — so every shard
        computes the bit-identical global scalar.  Direct callers (tests,
        warm-up) may omit ``arr_by_as`` and get the local reduction.
        """
        if arr_by_as is None:
            arr_by_as = np.bincount(
                self.origin, weights=arrivals, minlength=self.scn.topology.n_as
            )
        total = float(np.sum(arr_by_as))
        cap = self.scn.target_capacity
        if total <= cap:
            self._admitted_total = total
            return arrivals
        factor = cap / total
        self._admitted_total = total * factor
        return arrivals * factor

    def _admit_ff(self, arrivals: np.ndarray, tick: int = 0) -> np.ndarray:
        """Section VII-C, verbatim: one high-priority pool holds all
        legitimate packets plus attack packets up to their fair bandwidth;
        normal-priority (excess attack) packets are serviced only from
        whatever capacity the pool leaves idle.  Pool totals are reduced
        per origin AS and exchanged so every shard sees the global pools.
        """
        cap = self.scn.target_capacity
        fair = cap / max(1, self.n_flows_total)
        legit = ~self.is_attack
        hp = np.where(legit, arrivals, np.minimum(arrivals, fair))
        lp = np.where(self.is_attack, arrivals - hp, 0.0)
        n_as = self.scn.topology.n_as
        vectors, _ = self._allreduce(
            tick,
            "admit",
            {
                "hp": np.bincount(self.origin, weights=hp, minlength=n_as),
                "lp": np.bincount(self.origin, weights=lp, minlength=n_as),
            },
        )
        hp_total = float(np.sum(vectors["hp"]))
        if hp_total >= cap:
            self._admitted_total = hp_total * (cap / hp_total)
            return hp * (cap / hp_total)
        admitted = hp.copy()
        remaining = cap - hp_total
        lp_total = float(np.sum(vectors["lp"]))
        granted = 0.0
        if lp_total > 0:
            factor = min(1.0, remaining / lp_total)
            admitted += lp * factor
            granted = lp_total * factor
        self._admitted_total = hp_total + granted
        return admitted

    def _rebuild_groups(self) -> None:
        """Run conformance partition + aggregation, rebuild group arrays.

        Every input is replicated global state (the path-id map, the
        static per-AS flow counts, the conformance tracker fed from
        exchanged flag counts), so all shards rebuild the identical plan.
        """
        ases = sorted(self.pid_of_as)
        pids = [self.pid_of_as[a] for a in ases]
        counts_by_as = self._counts_by_as
        flow_counts = {
            self.pid_of_as[asn]: int(counts_by_as[asn]) for asn in ases
        }
        legit, attack = self.conformance.partition(pids, threshold=0.5)
        s_max = self.s_max
        self._plan = build_plan(
            legit,
            attack,
            self.conformance.values(),
            {pid: float(c) for pid, c in flow_counts.items()},
            s_max,
        )
        group_keys = {}
        group_of_as = np.zeros(self.scn.topology.n_as, dtype=np.int64)
        shares: List[float] = []
        for asn in ases:
            key = self._plan.group(self.pid_of_as[asn])
            if key not in group_keys:
                group_keys[key] = len(shares)
                shares.append(self._plan.shares.get(key, 1.0))
            group_of_as[asn] = group_keys[key]
        self._group_of_as = group_of_as
        self._group_index = group_of_as[self.origin]
        self._group_shares = np.asarray(shares, dtype=np.float64)
        self.n_groups = len(shares)

    def _admit_floc(
        self,
        arrivals: np.ndarray,
        tick: int,
        arr_by_as: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n_as = self.scn.topology.n_as
        if arr_by_as is None:
            arr_by_as = np.bincount(
                self.origin, weights=arrivals, minlength=n_as
            )
        if self._warmup_until is not None:
            if tick >= self._warmup_until:
                self._warmup_until = None
            else:
                # post-restart warm-up: no per-path state to allocate by,
                # so degrade to neutral admission while rates re-smooth
                admitted = self._admit_nd(arrivals, arr_by_as)
                tel = self.telemetry
                if tel.enabled:
                    tel.record_fluid_drop_volumes(
                        tick,
                        neutral=float(np.sum(arr_by_as)) - self._admitted_total,
                    )
                return admitted
        cap = self.scn.target_capacity
        tel = self.telemetry
        if self._group_index is None or (
            tick > 0 and tick % self.aggregation_interval == 0
        ):
            previous_groups = self.n_groups
            self._rebuild_groups()
            if tel.enabled:
                tel.registry.gauge("fluid_groups_count").set(float(self.n_groups))
                if tel.trace_enabled and self.n_groups != previous_groups:
                    tel.emit_event(
                        tick, "fluid_regroup", "aggregation",
                        n_groups=self.n_groups,
                        previous_count=previous_groups,
                    )
        gidx = self._group_index
        gidx_as = self._group_of_as
        shares = self._group_shares
        n_groups = self.n_groups
        alloc = cap * shares / shares.sum()

        # group demand/size from the canonical per-AS vectors (group
        # membership is per origin AS, so AS-level bincounts are exact)
        group_arrival = np.bincount(
            gidx_as, weights=arr_by_as, minlength=n_groups
        )
        group_flows = np.bincount(
            gidx_as,
            weights=self._counts_by_as.astype(np.float64),
            minlength=n_groups,
        )
        fair = alloc / np.maximum(group_flows, 1.0)

        # MTD-equivalent flagging: a flow whose *smoothed* send rate stays
        # above the flag factor times its fair share, inside an
        # over-subscribed group, is an attack flow (its drop rate — and so
        # its MTD — tracks that sustained rate; adaptive TCP flows decay
        # below the bar within an RTT or two).
        oversub = group_arrival > alloc
        # the AIMD fluid model bottoms out at w = sqrt(2) (timeouts are not
        # modelled), so a conformant-but-starved TCP flow cannot send
        # slower than ~sqrt(2)/RTT; rates at or below that floor are what
        # the MTD reference classifies as responsive, so they never flag.
        tcp_floor = 2.5 / self.rtt
        bar = np.maximum(self.attack_flag_factor * fair[gidx], tcp_floor)
        previously_flagged = self._flagged
        self._flagged = (self._rate_ewma > bar) & oversub[gidx]
        flagged = self._flagged
        # Eq.-(IV.5) preferential cap: flagged flows get at most fair share
        capped = np.where(flagged, np.minimum(arrivals, fair[gidx]), arrivals)

        # exchange the flag-split arrival decomposition so the scale
        # factors, the work-conservation pools, and the flag telemetry are
        # computed from identical global values on every shard
        vectors, xcounts = self._allreduce(
            tick,
            "admit",
            {
                "arr_unflagged": np.bincount(
                    self.origin,
                    weights=np.where(flagged, 0.0, arrivals),
                    minlength=n_as,
                ),
                "arr_flagged": np.bincount(
                    self.origin,
                    weights=np.where(flagged, arrivals, 0.0),
                    minlength=n_as,
                ),
                "capped_flagged": np.bincount(
                    self.origin,
                    weights=np.where(flagged, capped, 0.0),
                    minlength=n_as,
                ),
            },
            {
                "newly": int(np.count_nonzero(flagged & ~previously_flagged)),
                "cleared": int(np.count_nonzero(previously_flagged & ~flagged)),
                "flagged": int(np.count_nonzero(flagged)),
            },
        )
        arr_unflagged = vectors["arr_unflagged"]
        arr_flagged = vectors["arr_flagged"]
        capped_flagged = vectors["capped_flagged"]
        if tel.enabled:
            newly = xcounts["newly"]
            cleared = xcounts["cleared"]
            if newly or cleared:
                tel.registry.counter("fluid_flag_transitions_count").inc(
                    float(newly + cleared)
                )
                if tel.trace_enabled:
                    tel.emit_event(
                        tick, "fluid_flag", "mtd",
                        newly_flagged=newly, cleared=cleared,
                        flagged_total=xcounts["flagged"],
                    )

        capped_by_as = arr_unflagged + capped_flagged
        group_demand = np.bincount(
            gidx_as, weights=capped_by_as, minlength=n_groups
        )
        scale = np.minimum(1.0, alloc / np.maximum(group_demand, 1e-12))
        scale_as = scale[gidx_as]
        admitted = capped * scale[gidx]
        admitted_total = float(np.sum(capped_by_as * scale_as))

        # work conservation (congested-mode random drop admits without
        # tokens): leftover capacity goes to *unflagged* flows' unmet
        # demand first — flagged flows are still preferentially dropped —
        # and only then to flagged flows.  The pool totals decompose per
        # AS (unmet = arrivals - capped*scale), so they reduce from the
        # exchanged vectors and every shard grants the same fractions.
        pool_unflagged = float(np.sum(arr_unflagged - arr_unflagged * scale_as))
        pool_flagged = float(np.sum(arr_flagged - capped_flagged * scale_as))
        grant_unflagged = 0.0
        grant_flagged = 0.0
        leftover = cap - admitted_total
        if leftover > 1e-9:
            if pool_unflagged > 1e-9:
                grant_unflagged = min(1.0, leftover / pool_unflagged)
                leftover -= pool_unflagged * grant_unflagged
            if leftover > 1e-9 and pool_flagged > 1e-9:
                grant_flagged = min(1.0, leftover / pool_flagged)
            unmet = arrivals - admitted
            admitted = admitted + np.where(
                flagged, unmet * grant_flagged, unmet * grant_unflagged
            )
        self._admitted_total = (
            admitted_total
            + pool_unflagged * grant_unflagged
            + pool_flagged * grant_flagged
        )
        if tel.enabled:
            # drop provenance, fluid analogue: a flagged flow's unmet
            # demand is the Eq.-(IV.5) preferential cap; an unflagged
            # flow's is the group allocation limit (the token-bucket
            # stage of the packet engine)
            tel.record_fluid_drop_volumes(
                tick,
                preferential=pool_flagged * (1.0 - grant_flagged),
                token=pool_unflagged * (1.0 - grant_unflagged),
            )
        return admitted

    # ------------------------------------------------------------------
    # stepwise run interface (crash-safe checkpointing: repro.runner
    # pickles the simulator between step_run calls, so every piece of run
    # state lives on self rather than in loop locals)
    # ------------------------------------------------------------------
    def begin_run(
        self,
        ticks: int = 400,
        warmup: int = 100,
        record_series: bool = False,
    ) -> None:
        """Initialise accumulators for a ``ticks``-long measured run."""
        if ticks < 0:
            raise ConfigError(f"cannot run a negative tick count, got {ticks}")
        self._run_ticks = ticks
        self._run_warmup = warmup
        self._run_record_series = record_series
        self._run_tick = 0
        self._acc = np.zeros(self.n_flows, dtype=np.float64)
        self._measured_ticks = 0
        self._series: List[Tuple[int, float, float, float]] = []
        self._conf_interval = max(10, self.aggregation_interval // 2)
        self._last_admitted: Optional[np.ndarray] = None
        self._admitted_total = 0.0

    def step_run(self) -> bool:
        """Advance one tick; returns ``False`` once the run is complete."""
        if self._run_tick >= self._run_ticks:
            return False
        tick = self._run_tick
        tel = self.telemetry
        prof = tel.profiler if tel.profile_enabled else None
        clock = prof.start() if prof is not None else 0.0
        if prof is None:
            for hook in self._tick_hooks:
                hook(self, tick)
        else:
            for hook, label in zip(self._tick_hooks, self._hook_labels):
                hook(self, tick)
                clock = prof.lap(label, clock)
        rates = self._send_rates()
        self._rate_ewma += 0.1 * (rates - self._rate_ewma)
        if prof is not None:
            clock = prof.lap("sources", clock)
        vectors, _ = self._allreduce(tick, "load", {"own": self._loads_by_as(rates)})
        own = vectors["own"]
        surv = self._survival_from_loads(own)
        arrivals = rates * surv[self.origin]
        arr_by_as = own * surv
        if prof is not None:
            clock = prof.lap("queueing", clock)
        if self.strategy == "nd":
            admitted = self._admit_nd(arrivals, arr_by_as)
        elif self.strategy == "ff":
            admitted = self._admit_ff(arrivals, tick)
        else:
            admitted = self._admit_floc(arrivals, tick, arr_by_as)
            if tick % self._conf_interval == 0:
                self._update_conformance(tick)
        if prof is not None:
            clock = prof.lap("policy", clock)
        if tel.enabled and tick % tel.sample_interval_ticks == 0:
            tel.registry.series("fluid_admitted_pkts_per_tick").sample(
                tick, self._admitted_total
            )
        # TCP fluid update for legitimate flows
        p_drop = 1.0 - np.divide(
            admitted, rates, out=np.ones_like(rates), where=rates > 1e-12
        )
        p_drop = np.clip(p_drop, 0.0, 1.0)
        legit = ~self.is_attack
        w = self.w
        dw = 1.0 / self.rtt - 0.5 * w * p_drop * rates
        w = np.where(legit, np.clip(w + dw, 0.5, self.w_max), w)
        self.w = w
        self._last_admitted = admitted
        if tick >= self._run_warmup:
            self._acc += admitted
            self._measured_ticks += 1
            if self._run_record_series:
                self._series.append(self._series_point(tick, admitted))
        if prof is not None:
            prof.lap("tcp", clock)
            prof.tick_done()
        self._run_tick = tick + 1
        return self._run_tick < self._run_ticks

    def _series_point(
        self, tick: int, admitted: np.ndarray
    ) -> Tuple[int, float, float, float]:
        """One canonical series sample: per-category admitted volume at
        the target, reduced through the per-AS vectors so every shard
        records the identical point."""
        n_as = self.scn.topology.n_as
        parts = {
            name: np.bincount(
                self.origin,
                weights=np.where(self.cats == idx, admitted, 0.0),
                minlength=n_as,
            )
            for idx, name in enumerate(CATEGORY_NAMES)
        }
        vectors, _ = self._allreduce(tick, "series", parts)
        cap = self.scn.target_capacity
        return (
            tick,
            float(np.sum(vectors["legit_in_legit"]) / cap),
            float(np.sum(vectors["legit_in_attack"]) / cap),
            float(np.sum(vectors["attack"]) / cap),
        )

    def acc_matrix(self) -> np.ndarray:
        """Per-(category, origin-AS) admitted volume over the measured
        window.  In shard mode only the owned columns are populated; the
        shard merge reassembles the full matrix by assignment."""
        n_as = self.scn.topology.n_as
        rows = [
            np.bincount(
                self.origin,
                weights=np.where(self.cats == idx, self._acc, 0.0),
                minlength=n_as,
            )
            for idx in range(len(CATEGORY_NAMES))
        ]
        return np.stack(rows)

    def finish_run(self) -> FluidResult:
        """Assemble the :class:`FluidResult` for a completed (or salvaged
        partial) run."""
        if self.telemetry.enabled:
            self.telemetry.scrape_fluid(self)
        return result_from_matrix(
            strategy=self.strategy,
            s_max=self.s_max,
            n_groups=self.n_groups,
            matrix=self.acc_matrix(),
            measured_ticks=self._measured_ticks,
            target_capacity=self.scn.target_capacity,
            n_flows_by_cat=self._n_flows_by_cat,
            series=self._series,
        )

    def run(
        self,
        ticks: int = 400,
        warmup: int = 100,
        record_series: bool = False,
    ) -> FluidResult:
        """Simulate and return bandwidth shares at the target link."""
        self.begin_run(ticks, warmup, record_series)
        while self.step_run():
            pass
        return self.finish_run()

    def _update_conformance(self, tick: int = 0) -> None:
        """Fold the current flagging into per-path conformance.

        Flag counts are reduced per origin AS and exchanged; totals come
        from the static global per-AS flow counts — so every shard feeds
        its (replicated) conformance tracker the identical observations.
        """
        n_as = self.scn.topology.n_as
        flagged_local = np.bincount(
            self.origin, weights=self._flagged.astype(np.float64), minlength=n_as
        )
        vectors, _ = self._allreduce(tick, "conf", {"flagged": flagged_local})
        flagged = vectors["flagged"]
        totals = self._counts_by_as
        for asn, pid in self.pid_of_as.items():
            self.conformance.update(pid, int(totals[asn]), int(flagged[asn]))
