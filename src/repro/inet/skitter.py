"""Skitter-map-like route-tree generation.

A CAIDA Skitter map is a set of traceroute paths from one vantage point
(a root DNS server) to 300-400 k hosts; collapsing it to AS level gives,
for each origin AS, the AS path towards the vantage point — a tree rooted
at the vantage AS.  The paper uses three maps (f-root, h-root, JPN) whose
differences are essentially branching structure and how far attack ASes
sit from the target.

We synthesise such trees directly: a random recursive tree over ASes with
preferential attachment (hub-biased, like AS peering) and a depth cap, so
AS-path lengths land in the observed 3-8 AS-hop range.  The three named
variants are seeds plus mild parameter shifts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ConfigError

#: Named variants standing in for the paper's three skitter maps.
VARIANTS: Dict[str, dict] = {
    "f-root": {"seed": 101, "hub_bias": 1.0, "max_depth": 6},
    "h-root": {"seed": 202, "hub_bias": 1.4, "max_depth": 7},
    "jpn": {"seed": 303, "hub_bias": 0.7, "max_depth": 8},
}


@dataclass
class SkitterLikeMap:
    """An AS-level route tree rooted at the target's AS (AS 0).

    Attributes
    ----------
    parent:
        ``parent[asn]`` is the next AS towards the target (root's parent
        is itself).
    depth:
        AS-hop distance to the target.
    paths:
        ``paths[asn]`` is the origin-first AS path ``(asn, ..., root)`` —
        exactly the FLoc path identifier stamped for traffic from ``asn``.
    """

    variant: str
    parent: List[int]
    depth: List[int]
    paths: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def n_as(self) -> int:
        return len(self.parent)

    def path_of(self, asn: int) -> Tuple[int, ...]:
        return self.paths[asn]

    def children_of(self) -> Dict[int, List[int]]:
        """Reverse adjacency (towards the origins)."""
        children: Dict[int, List[int]] = {}
        for asn, par in enumerate(self.parent):
            if asn != par:
                children.setdefault(par, []).append(asn)
        return children

    def depth_histogram(self) -> Dict[int, int]:
        """AS count per distance-to-target (the Fig. 11/12 x-axis)."""
        hist: Dict[int, int] = {}
        for d in self.depth:
            hist[d] = hist.get(d, 0) + 1
        return hist


def generate_route_tree(
    n_as: int = 500,
    variant: str = "f-root",
    seed: int = None,
) -> SkitterLikeMap:
    """Generate a skitter-like AS route tree.

    The root (AS 0) is the target's AS.  New ASes attach to an existing AS
    chosen with probability proportional to ``(degree + 1)^hub_bias``
    among ASes below the depth cap — heavy-tailed degrees, bounded path
    lengths.
    """
    if n_as < 2:
        raise ConfigError(f"n_as must be >= 2, got {n_as}")
    if variant not in VARIANTS:
        raise ConfigError(f"unknown variant {variant!r}; choose {list(VARIANTS)}")
    params = VARIANTS[variant]
    rng = random.Random(seed if seed is not None else params["seed"])
    hub_bias = params["hub_bias"]
    max_depth = params["max_depth"]

    parent = [0]
    depth = [0]
    degree = [1.0]
    eligible = [0]  # ASes that can still take children
    for asn in range(1, n_as):
        weights = [(degree[a] + 1.0) ** hub_bias for a in eligible]
        total = sum(weights)
        pick = rng.random() * total
        acc = 0.0
        chosen = eligible[-1]
        for a, w in zip(eligible, weights):
            acc += w
            if pick <= acc:
                chosen = a
                break
        parent.append(chosen)
        depth.append(depth[chosen] + 1)
        degree.append(1.0)
        degree[chosen] += 1.0
        if depth[-1] < max_depth:
            eligible.append(asn)

    paths: Dict[int, Tuple[int, ...]] = {}
    for asn in range(n_as):
        chain = [asn]
        while chain[-1] != 0:
            chain.append(parent[chain[-1]])
        paths[asn] = tuple(chain)
    return SkitterLikeMap(variant=variant, parent=parent, depth=depth, paths=paths)
