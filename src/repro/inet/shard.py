"""Shard-parallel protocol for the fluid simulator.

Partitions the path-identifier space (equivalently: the origin-AS space —
the fluid model keys every per-path quantity by origin AS) into N shards
so one :class:`~repro.inet.simulator.FluidSimulator` per fleet worker can
advance a partition of the flow population in lock-step with its peers.

Three pieces:

* **Partitioner** — :func:`shard_of_path` hashes a path identifier to a
  shard with seeded SHA-256: a total, stable partition (every path id
  lands in exactly one shard, independent of iteration order,
  deterministic per ``(seed, n_shards)``).  :func:`partition_scenario`
  applies it to every AS of a scenario topology.

* **Barrier exchange** — :class:`BarrierExchange` is the on-disk
  per-tick allreduce.  Each shard atomically publishes its per-AS
  partial vectors for a ``(tick, round)`` key, then polls for its peers'
  files; the full vector is rebuilt **by assignment from the owning
  shard** (never addition), which is what keeps sharded runs
  bit-identical to serial.  A peer that never shows up (dead, stalled,
  quarantined) trips :class:`~repro.errors.ShardBarrierTimeout` — a
  *retryable* error, so the fleet's retry policy restarts the straggler
  from its last barrier checkpoint instead of deadlocking or silently
  dropping the shard.  Writes are idempotent (skip-if-exists): a
  salvaged shard deterministically replays the identical bytes, so
  re-publishing is a no-op and peers that already read the old file are
  unaffected.

* **Merge** — :func:`merge_shard_results` reassembles the per-shard
  accumulator matrices into the serial
  :class:`~repro.inet.simulator.FluidResult` through the same
  ``result_from_matrix`` code path serial ``finish_run`` uses.

Epochs: every ``epoch_ticks`` ticks each shard checkpoints (the fleet
task drives ``run_checkpointed`` with that interval) and garbage-collects
its *own* exchange files older than two epochs.  Lock-step bounds peer
skew to one tick, and a salvaged peer resumes from at most one epoch
back, so everything a resurrected shard can still need is retained; the
final epoch's files outlive run completion (collection happens only at
epoch crossings), letting a lagging salvaged shard finish solo against
the retained files of already-finished peers.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, ShardBarrierTimeout
from ..trace import NULL_TRACER, current_tracer
from .scenarios import InternetScenario
from .simulator import FluidResult, result_from_matrix


def shard_of_path(
    path_id: Sequence[int], n_shards: int, seed: int
) -> int:
    """Owning shard of one path identifier.

    Seeded SHA-256 over the path-id tuple: a pure function of
    ``(path_id, n_shards, seed)``, so the assignment is deterministic,
    independent of enumeration order, and stable across processes
    (unlike ``hash()``, which is salted per interpreter).
    """
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    key = f"{seed}:{','.join(str(hop) for hop in path_id)}"
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


def partition_scenario(
    scenario: InternetScenario, n_shards: int, seed: int
) -> np.ndarray:
    """Owning shard per AS number, over the whole topology.

    Keyed by each AS's path identifier, so the partition is a statement
    about the path-id space; ASes without flows get owners too (their
    vector entries are zero everywhere — owned zeros assign as zeros).
    """
    topo = scenario.topology
    owners = np.zeros(topo.n_as, dtype=np.int64)
    for asn in range(topo.n_as):
        owners[asn] = shard_of_path(topo.path_of(asn), n_shards, seed)
    return owners


@dataclass(eq=False)
class ShardSpec:
    """One shard's identity within a partition plan."""

    shard: int
    n_shards: int
    shard_of_as: np.ndarray  # int64, owning shard per AS number

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {self.n_shards}")
        if not 0 <= self.shard < self.n_shards:
            raise ConfigError(
                f"shard index {self.shard} outside [0, {self.n_shards})"
            )
        owners = np.asarray(self.shard_of_as)
        if owners.size and (owners.min() < 0 or owners.max() >= self.n_shards):
            raise ConfigError(
                "shard_of_as names shards outside the partition plan"
            )

    @property
    def owned_mask(self) -> np.ndarray:
        return self.shard_of_as == self.shard


class BarrierExchange:
    """On-disk per-tick allreduce between the shards of one unit.

    One file per ``(tick, round, shard)``, written atomically (tmp +
    ``os.replace``) under a directory obtained from
    ``CheckpointStore.exchange_dir(unit)``.  The clock and sleep are
    injected (defaults reference ``time.monotonic``/``time.sleep``
    without calling them here) so the straggler deadline is testable and
    the simulation packages stay free of wall-clock reads; ``poll_hook``
    (typically a heartbeat pulse or watchdog check) runs once per poll
    iteration and is excluded from pickled state.
    """

    def __init__(
        self,
        directory: str,
        spec: ShardSpec,
        epoch_ticks: int = 50,
        timeout_seconds: float = 120.0,
        poll_seconds: float = 0.005,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if epoch_ticks < 1:
            raise ConfigError(f"epoch_ticks must be >= 1, got {epoch_ticks}")
        if timeout_seconds <= 0:
            raise ConfigError(
                f"timeout_seconds must be > 0, got {timeout_seconds}"
            )
        self.directory = directory
        self.spec = spec
        self.epoch_ticks = epoch_ticks
        self.timeout_seconds = timeout_seconds
        self.poll_seconds = poll_seconds
        self._clock = clock
        self._sleep = sleep
        self.poll_hook: Optional[Callable[[], None]] = None
        # bound at construction (the owning task rebuilds the exchange in
        # prepare() on every (re)start, inside the worker's tracer scope);
        # barrier publish/collect spans are how straggler waits show up
        # on the merged timeline
        self.tracer = current_tracer()
        os.makedirs(directory, exist_ok=True)

    def __getstate__(self) -> Dict[str, Any]:
        # the poll hook is a live supervisor object (heartbeat pulse /
        # watchdog bound method) and the tracer holds an open span sink
        # with wall-clock state; neither may ride through checkpoints —
        # the owning task re-attaches both by rebuilding the exchange
        # after load
        state = dict(self.__dict__)
        state["poll_hook"] = None
        state["tracer"] = NULL_TRACER
        return state

    # -- file layout ---------------------------------------------------
    def _path(self, tick: int, round_key: str, shard: int) -> str:
        return os.path.join(
            self.directory, f"t{tick:08d}-{round_key}.s{shard}.pkl"
        )

    def _publish(self, tick: int, round_key: str, payload: Dict[str, Any]) -> None:
        path = self._path(tick, round_key, self.spec.shard)
        if os.path.exists(path):
            # salvaged replay: the run is deterministic from the loaded
            # checkpoint, so the bytes would be identical — skip
            return
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(prefix=".x-", dir=self.directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _collect(self, tick: int, round_key: str) -> Dict[int, Dict[str, Any]]:
        """Block until every peer's round file exists, then load them."""
        payloads: Dict[int, Dict[str, Any]] = {}
        pending = set(range(self.spec.n_shards)) - {self.spec.shard}
        deadline = self._clock() + self.timeout_seconds
        while pending:
            for shard in sorted(pending):
                path = self._path(tick, round_key, shard)
                try:
                    with open(path, "rb") as handle:
                        payloads[shard] = pickle.loads(handle.read())
                except FileNotFoundError:
                    continue
                pending.discard(shard)
            if not pending:
                break
            if self.poll_hook is not None:
                self.poll_hook()
            if self._clock() >= deadline:
                raise ShardBarrierTimeout(
                    f"shard {self.spec.shard} waited "
                    f"{self.timeout_seconds:.1f}s at tick {tick} round "
                    f"{round_key!r} for shard(s) {sorted(pending)}; peers "
                    "are dead or stalled — retrying from the last barrier "
                    "checkpoint"
                )
            self._sleep(self.poll_seconds)
        return payloads

    def _collect_garbage(self, tick: int) -> None:
        """Drop this shard's own round files older than two epochs.

        Lock-step bounds peer skew to one tick and a salvaged peer
        resumes at most ``epoch_ticks`` back, so nothing below
        ``tick - 2 * epoch_ticks`` can ever be read again.
        """
        floor = tick - 2 * self.epoch_ticks
        if floor <= 0:
            return
        suffix = f".s{self.spec.shard}.pkl"
        for fname in os.listdir(self.directory):
            if not fname.startswith("t") or not fname.endswith(suffix):
                continue
            try:
                file_tick = int(fname[1:9])
            except ValueError:
                continue
            if file_tick < floor:
                try:
                    os.unlink(os.path.join(self.directory, fname))
                except OSError:
                    pass

    # -- the allreduce itself -------------------------------------------
    def allreduce(
        self,
        tick: int,
        round_key: str,
        vectors: Dict[str, np.ndarray],
        counts: Dict[str, int],
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        """Publish local partials, await peers, rebuild global values.

        Vectors are reassembled column-by-column from the owning shard
        (assignment, never addition — bit-identical to serial).  Counts
        must be integers: they are summed across shards, which is exact
        in any order.
        """
        with self.tracer.span(
            "barrier.publish", cat="barrier",
            tick=tick, round=round_key, shard=self.spec.shard,
        ):
            self._publish(
                tick, round_key, {"vectors": vectors, "counts": counts}
            )
        if round_key == "load" and tick % self.epoch_ticks == 0:
            self._collect_garbage(tick)
        # the collect span *is* the barrier wait: its duration is how
        # long this shard idled for its slowest peer this round
        with self.tracer.span(
            "barrier.collect", cat="barrier",
            tick=tick, round=round_key, shard=self.spec.shard,
        ):
            peers = self._collect(tick, round_key)

        spec = self.spec
        full_vectors: Dict[str, np.ndarray] = {}
        for name, mine in vectors.items():
            full = np.zeros_like(mine)
            for shard in range(spec.n_shards):
                part = (
                    mine if shard == spec.shard
                    else peers[shard]["vectors"][name]
                )
                mask = spec.shard_of_as == shard
                full[mask] = part[mask]
            full_vectors[name] = full
        full_counts: Dict[str, int] = {}
        for name, value in counts.items():
            total = int(value)
            for shard in sorted(peers):
                total += int(peers[shard]["counts"][name])
            full_counts[name] = total
        return full_vectors, full_counts


@dataclass
class ShardResult:
    """One shard's contribution to a unit's merged :class:`FluidResult`.

    ``acc_by_as_cat`` has shape ``(3, n_as)`` with only the owned
    columns populated; everything else is replicated global state, kept
    per shard so the merge can cross-check consistency.
    """

    unit: str
    shard: int
    n_shards: int
    strategy: str
    s_max: Optional[int]
    n_groups: int
    measured_ticks: int
    target_capacity: float
    n_flows_by_cat: Dict[str, int]
    owned_mask: np.ndarray
    acc_by_as_cat: np.ndarray
    series: List[Tuple[int, float, float, float]]


def shard_result(sim: Any, unit: str) -> ShardResult:
    """Snapshot a completed shard-mode simulator into its merge piece."""
    spec = sim._shard
    if spec is None:
        raise ConfigError("shard_result() on a non-sharded simulator")
    if sim.telemetry.enabled:
        sim.telemetry.scrape_fluid(sim)
    return ShardResult(
        unit=unit,
        shard=spec.shard,
        n_shards=spec.n_shards,
        strategy=sim.strategy,
        s_max=sim.s_max,
        n_groups=sim.n_groups,
        measured_ticks=sim._measured_ticks,
        target_capacity=sim.scn.target_capacity,
        n_flows_by_cat=dict(sim._n_flows_by_cat),
        owned_mask=spec.owned_mask,
        acc_by_as_cat=sim.acc_matrix(),
        series=list(sim._series),
    )


def merge_shard_results(pieces: Sequence[ShardResult]) -> FluidResult:
    """Deterministic canonical-order merge of a unit's shard results.

    Validates the set is complete and mutually consistent, reassembles
    the full accumulator matrix by assignment from each owning shard,
    and builds the result through the same ``result_from_matrix`` code
    path serial ``finish_run`` uses — so merged output is byte-identical
    to a serial run of the same unit.
    """
    if not pieces:
        raise ConfigError("merge_shard_results() needs at least one piece")
    ordered = sorted(pieces, key=lambda piece: piece.shard)
    first = ordered[0]
    seen = set()
    for piece in ordered:
        if piece.unit != first.unit:
            raise ConfigError(
                f"shard results from different units: {piece.unit!r} "
                f"vs {first.unit!r}"
            )
        if piece.n_shards != first.n_shards:
            raise ConfigError(
                f"{piece.unit}: inconsistent shard counts "
                f"({piece.n_shards} vs {first.n_shards})"
            )
        if piece.shard in seen:
            raise ConfigError(
                f"{piece.unit}: duplicate result for shard {piece.shard}"
            )
        if piece.measured_ticks != first.measured_ticks:
            raise ConfigError(
                f"{piece.unit}: shard {piece.shard} measured "
                f"{piece.measured_ticks} ticks, shard {first.shard} "
                f"measured {first.measured_ticks} — shards desynchronized"
            )
        if piece.n_groups != first.n_groups:
            raise ConfigError(
                f"{piece.unit}: shard {piece.shard} ended with "
                f"{piece.n_groups} groups, shard {first.shard} with "
                f"{first.n_groups} — replicated plans diverged"
            )
        seen.add(piece.shard)
    missing = set(range(first.n_shards)) - seen
    if missing:
        raise ConfigError(
            f"{first.unit}: missing shard result(s) {sorted(missing)} of "
            f"{first.n_shards}; refusing to merge a partial run"
        )
    matrix = np.zeros_like(first.acc_by_as_cat)
    for piece in ordered:
        matrix[:, piece.owned_mask] = piece.acc_by_as_cat[:, piece.owned_mask]
    return result_from_matrix(
        strategy=first.strategy,
        s_max=first.s_max,
        n_groups=first.n_groups,
        matrix=matrix,
        measured_ticks=first.measured_ticks,
        target_capacity=first.target_capacity,
        n_flows_by_cat=first.n_flows_by_cat,
        series=first.series,
    )


__all__ = [
    "BarrierExchange",
    "ShardResult",
    "ShardSpec",
    "merge_shard_results",
    "partition_scenario",
    "shard_of_path",
    "shard_result",
]
