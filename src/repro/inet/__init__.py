"""Internet-scale simulation (paper Section VII).

The paper evaluates FLoc on topologies derived from CAIDA Skitter maps,
the Composite Blocking List (CBL) and GeoLite ASN data, with 10,000
legitimate sources in 200 ASes and 100,000 bots, against a 40 Gbps target
link, using a custom discrete-time simulator (5 ms ticks, one router hop
per tick, random drop among a tick's queued packets).

None of those datasets are redistributable, so this package synthesises
equivalents with matched statistics (see DESIGN.md substitutions):

* :mod:`~repro.inet.skitter` — route-tree generation with skitter-like
  AS-path-length and branching distributions; three seeded variants stand
  in for the f-root / h-root / JPN maps.
* :mod:`~repro.inet.botlist` — CBL-like bot placement (95 % of bots in
  1.7 % of ASes) and GeoLite-like AS population model.
* :mod:`~repro.inet.scenarios` — localized (100 attack ASes), dispersed
  (300) and separated host placements, with the paper's intentional 30 %
  legitimate-source overlap into attack ASes.
* :mod:`~repro.inet.simulator` — a vectorised *fluid* version of the
  paper's tick simulator: per-tick aggregate rates instead of individual
  packets, which preserves the bandwidth-share results while scaling to
  10^5 flows in pure Python.  FLoc's aggregation logic is the exact same
  code used by the packet-level router (:mod:`repro.core.aggregation`).
"""

from .skitter import SkitterLikeMap, generate_route_tree
from .botlist import BotPlacement, place_bots, place_legitimate
from .scenarios import InternetScenario, build_internet_scenario
from .shard import (
    BarrierExchange,
    ShardResult,
    ShardSpec,
    merge_shard_results,
    partition_scenario,
    shard_of_path,
    shard_result,
)
from .simulator import FluidSimulator, FluidResult

__all__ = [
    "SkitterLikeMap",
    "generate_route_tree",
    "BotPlacement",
    "place_bots",
    "place_legitimate",
    "InternetScenario",
    "build_internet_scenario",
    "BarrierExchange",
    "ShardResult",
    "ShardSpec",
    "merge_shard_results",
    "partition_scenario",
    "shard_of_path",
    "shard_result",
    "FluidSimulator",
    "FluidResult",
]
