"""Runtime invariant sanitizer (see :mod:`repro.sanitize.invariants`)."""

from .invariants import (
    MODES,
    EngineSanitizer,
    FluidSanitizer,
    SanitizerReport,
    Violation,
    install_sanitizer,
)

__all__ = [
    "MODES",
    "EngineSanitizer",
    "FluidSanitizer",
    "SanitizerReport",
    "Violation",
    "install_sanitizer",
]
