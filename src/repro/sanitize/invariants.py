"""Runtime invariant sanitizer for both simulators.

A *sanitizer* is an invariant layer installed on a simulator through its
tick-hook interface (``add_tick_hook``), the same protocol the fault
schedules use.  Every ``check_interval`` ticks it sweeps a catalog of
invariants that a silent accounting bug would break long before the
figure-level output looks wrong:

Packet engine (:class:`EngineSanitizer`)
    * **conservation** — packets emitted = delivered + dropped + in
      flight, across every link, scheduled hop and delivery buffer;
    * **queue-bounds** — no link queue is longer than its buffer;
    * **capacity** — no link serviced more than ``capacity * elapsed``
      packets (plus one tick of banked credit) since the sanitizer was
      installed;
    * **token-nonnegative** — no FLoc token bucket holds negative tokens
      or more than its current size;
    * **monitor-counters** — per-flow service/drop counters never go
      negative;
    * **mtd-monotonic** — per-unit MTD drop records are non-decreasing in
      time (the tracker appends ticks; corruption reorders or negates
      them);
    * **aggregation-size** — the aggregation plan keeps the guaranteed
      identifier set within ``max(s_max, n_legit + 1)`` (Algorithm 1's
      feasibility bound) and attack aggregates hold exactly one share.

Fluid simulator (:class:`FluidSanitizer`)
    * **capacity** — the last tick's admitted volume at the target link
      does not exceed its capacity;
    * **admitted-nonnegative** / **rate-nonnegative** — no negative
      admitted volumes, send rates, or smoothed rates;
    * **window-bounds** — TCP fluid windows stay within ``[0.5, w_max]``;
    * **link-capacity-nonnegative** — no AS uplink has negative capacity
      (a degradation injector gone wrong);
    * **aggregation-size** — same plan bound as the packet side (the two
      simulators share ``build_plan``).

Two modes: ``strict`` raises :class:`~repro.errors.InvariantViolation`
with a tick-stamped diagnostic at the first failed check; ``record``
collects every violation into the :class:`SanitizerReport` for post-run
inspection.  Detection latency is at most one tick: hooks run at the
start of each tick, so state corrupted during tick *t* is caught at the
start of tick *t + 1*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigError, InvariantViolation

#: Accepted sanitizer modes (``None``/"off" disables installation).
MODES = ("strict", "record")

#: Absolute slack for floating-point token/credit comparisons.
_EPS = 1e-6


@dataclass
class Violation:
    """One failed invariant check."""

    tick: int
    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[tick {self.tick}] {self.invariant}: {self.detail}"


@dataclass
class SanitizerReport:
    """Accumulated outcome of a sanitizer's checks over one run."""

    mode: str
    violations: List[Violation] = field(default_factory=list)
    checks_run: int = 0
    last_checked_tick: int = -1

    @property
    def ok(self) -> bool:
        return not self.violations

    def rows(self) -> List[Tuple[int, str, str]]:
        """(tick, invariant, detail) rows for table/CSV output."""
        return [(v.tick, v.invariant, v.detail) for v in self.violations]

    def summary(self) -> str:
        if self.ok:
            return (
                f"sanitizer ok: {self.checks_run} sweeps, "
                f"0 violations (mode={self.mode})"
            )
        head = self.violations[0]
        return (
            f"sanitizer FAILED: {len(self.violations)} violation(s) over "
            f"{self.checks_run} sweeps; first: {head}"
        )


class _BaseSanitizer:
    """Mode handling and violation bookkeeping shared by both layers."""

    def __init__(self, mode: str = "strict", check_interval: int = 1) -> None:
        if mode not in MODES:
            raise ConfigError(
                f"unknown sanitizer mode {mode!r}; expected one of {MODES}"
            )
        if check_interval < 1:
            raise ConfigError(
                f"check_interval must be >= 1 tick, got {check_interval}"
            )
        self.mode = mode
        self.check_interval = check_interval
        self.report = SanitizerReport(mode=mode)

    def _flag(self, tick: int, invariant: str, detail: str) -> None:
        self.report.violations.append(Violation(tick, invariant, detail))
        if self.mode == "strict":
            raise InvariantViolation(invariant, tick, detail)

    def _due(self, tick: int) -> bool:
        if tick % self.check_interval != 0:
            return False
        self.report.checks_run += 1
        self.report.last_checked_tick = tick
        return True


class EngineSanitizer(_BaseSanitizer):
    """Invariant layer for :class:`~repro.net.engine.Engine`.

    Install with :meth:`install` (or :func:`install_sanitizer`); the
    sanitizer registers itself as a tick hook and snapshots per-link
    service baselines so the capacity invariant measures only the
    supervised window.  The object is picklable and travels with a
    checkpointed engine.
    """

    telemetry_label = "sanitizer"

    def __init__(self, mode: str = "strict", check_interval: int = 1) -> None:
        super().__init__(mode, check_interval)
        self._baselines: dict = {}  # (src, dst) -> (serviced_total, tick)

    def install(self, engine) -> "EngineSanitizer":
        for link in engine.topology.links():
            self._baselines[link.ends] = (link.serviced_total, engine.tick)
        engine.add_tick_hook(self)
        return self

    # -- the hook -------------------------------------------------------
    def __call__(self, engine, tick: int) -> None:
        if not self._due(tick):
            return
        self._check_conservation(engine, tick)
        self._check_links(engine, tick)
        self._check_policies(engine, tick)

    # -- invariants -----------------------------------------------------
    def _check_conservation(self, engine, tick: int) -> None:
        emitted = engine.packets_emitted
        delivered = engine.packets_delivered
        dropped = engine.total_link_drops()
        in_flight = engine.in_flight_count()
        if emitted != delivered + dropped + in_flight:
            self._flag(
                tick,
                "conservation",
                f"created={emitted} != delivered={delivered} + "
                f"dropped={dropped} + in-flight={in_flight} "
                f"(leak of {emitted - delivered - dropped - in_flight})",
            )

    def _check_links(self, engine, tick: int) -> None:
        for link in engine.topology.links():
            q = len(link.queue)
            if link.buffer is not None and q > link.buffer:
                self._flag(
                    tick,
                    "queue-bounds",
                    f"link {link.src!r}->{link.dst!r} queue {q} exceeds "
                    f"buffer {link.buffer}",
                )
            if link.serviced_total < 0 or link.dropped_total < 0:
                self._flag(
                    tick,
                    "monitor-counters",
                    f"link {link.src!r}->{link.dst!r} has negative totals "
                    f"(serviced={link.serviced_total}, "
                    f"dropped={link.dropped_total})",
                )
            if link.capacity is not None:
                base_serviced, base_tick = self._baselines.get(
                    link.ends, (0, 0)
                )
                elapsed = max(0, tick - base_tick)
                allowed = link.capacity * elapsed + link.capacity + 1.0
                used = link.serviced_total - base_serviced
                if used > allowed + _EPS:
                    self._flag(
                        tick,
                        "capacity",
                        f"link {link.src!r}->{link.dst!r} serviced {used} "
                        f"packets in {elapsed} ticks, above capacity "
                        f"{link.capacity}/tick (allowed {allowed:.1f})",
                    )
            for mon in link.monitors:
                for counts, kind in (
                    (mon.service_counts, "service"),
                    (mon.drop_counts, "drop"),
                ):
                    for flow_id, count in counts.items():
                        if count < 0:
                            self._flag(
                                tick,
                                "monitor-counters",
                                f"monitor on {link.src!r}->{link.dst!r} has "
                                f"negative {kind} count {count} for flow "
                                f"{flow_id}",
                            )

    def _check_policies(self, engine, tick: int) -> None:
        for link in engine.topology.links():
            policy = link.policy
            if policy is None:
                continue
            for group in getattr(policy, "groups", {}).values():
                bucket = group.bucket
                # no upper-bound check: a mid-period set_params may shrink
                # the size below the tokens already granted, legitimately
                if bucket.tokens < -_EPS:
                    self._flag(
                        tick,
                        "token-nonnegative",
                        f"group {group.key!r} bucket holds {bucket.tokens} "
                        f"tokens",
                    )
            tracker = getattr(policy, "tracker", None)
            if tracker is not None:
                for key, ticks in tracker._drops.items():
                    prev = None
                    for t in ticks:
                        if t < 0 or (prev is not None and t < prev):
                            self._flag(
                                tick,
                                "mtd-monotonic",
                                f"drop record of unit {key!r} is not "
                                f"monotonic: {list(ticks)[:8]}...",
                            )
                            break
                        prev = t
            plan = getattr(policy, "plan", None)
            if plan is not None:
                _check_plan(self, plan, tick)


def _check_plan(sanitizer: _BaseSanitizer, plan, tick: int) -> None:
    """Shared aggregation-plan invariants (both simulators use build_plan)."""
    s_max = getattr(plan, "s_max", None)
    n_legit = getattr(plan, "n_legit_inputs", None)
    if s_max is not None and n_legit is not None and plan.n_groups:
        bound = max(s_max, n_legit + 1)
        if plan.n_groups > bound:
            sanitizer._flag(
                tick,
                "aggregation-size",
                f"plan holds {plan.n_groups} guaranteed identifiers, above "
                f"the feasibility bound max(s_max={s_max}, "
                f"n_legit+1={n_legit + 1})",
            )
    for key, share in plan.shares.items():
        if isinstance(key, tuple) and key and key[0] == "AGG-A":
            if abs(share - 1.0) > _EPS:
                sanitizer._flag(
                    tick,
                    "aggregation-size",
                    f"attack aggregate {key!r} holds {share} shares instead "
                    f"of the single punitive share",
                )
        if share <= 0:
            sanitizer._flag(
                tick,
                "aggregation-size",
                f"group {key!r} holds non-positive share {share}",
            )


class FluidSanitizer(_BaseSanitizer):
    """Invariant layer for :class:`~repro.inet.simulator.FluidSimulator`.

    Installed via the simulator's tick-hook interface.  The admitted-rate
    invariants examine ``sim._last_admitted`` — the volume the target link
    admitted on the *previous* tick — so a corrupted allocation is caught
    at the start of the next tick.
    """

    telemetry_label = "sanitizer"

    def install(self, sim) -> "FluidSanitizer":
        sim.add_tick_hook(self)
        return self

    def __call__(self, sim, tick: int) -> None:
        if not self._due(tick):
            return
        import numpy as np

        cap = sim.scn.target_capacity
        if cap < 0:
            self._flag(tick, "link-capacity-nonnegative",
                       f"target capacity is {cap}")
        if np.any(sim.scn.link_capacity < 0):
            bad = int(np.argmin(sim.scn.link_capacity))
            self._flag(
                tick,
                "link-capacity-nonnegative",
                f"AS {bad} uplink capacity is "
                f"{float(sim.scn.link_capacity[bad])}",
            )
        admitted = getattr(sim, "_last_admitted", None)
        if admitted is not None:
            total = float(admitted.sum())
            if total > cap * (1.0 + 1e-9) + _EPS:
                self._flag(
                    tick,
                    "capacity",
                    f"target link admitted {total:.6f} pkts/tick above "
                    f"capacity {cap}",
                )
            if admitted.size and float(admitted.min()) < -_EPS:
                bad = int(np.argmin(admitted))
                self._flag(
                    tick,
                    "admitted-nonnegative",
                    f"flow {bad} admitted {float(admitted[bad])} < 0",
                )
        if sim._rate_ewma.size and float(sim._rate_ewma.min()) < -_EPS:
            bad = int(np.argmin(sim._rate_ewma))
            self._flag(
                tick,
                "rate-nonnegative",
                f"flow {bad} smoothed rate is {float(sim._rate_ewma[bad])}",
            )
        w = sim.w
        legit = ~sim.is_attack
        if np.any(legit):
            w_legit = w[legit]
            w_max = sim.w_max[legit] if hasattr(sim.w_max, "__len__") else sim.w_max
            if float(w_legit.min()) < 0.5 - _EPS or np.any(
                w_legit > w_max + _EPS
            ):
                self._flag(
                    tick,
                    "window-bounds",
                    f"legit TCP window outside [0.5, w_max]: "
                    f"min={float(w_legit.min())}, max={float(w_legit.max())}",
                )
        plan = getattr(sim, "_plan", None)
        if plan is not None:
            _check_plan(self, plan, tick)


def install_sanitizer(
    host, mode: Optional[str], check_interval: int = 1
):
    """Install the right sanitizer flavour on ``host`` and return it.

    ``host`` is a packet :class:`~repro.net.engine.Engine` or a
    :class:`~repro.inet.simulator.FluidSimulator`; ``mode`` is ``"strict"``
    or ``"record"`` (``None``/``"off"`` returns ``None`` without
    installing anything, so call sites can pass a CLI flag straight
    through).
    """
    if mode is None or mode == "off":
        return None
    if hasattr(host, "topology"):
        return EngineSanitizer(mode, check_interval).install(host)
    return FluidSanitizer(mode, check_interval).install(host)
