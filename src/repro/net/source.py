"""Base class for traffic sources.

A traffic source owns one or more flows and is driven by the engine:
:meth:`TrafficSource.on_tick` is called once per tick (emission phase), and
:meth:`on_ack` / :meth:`on_synack` are called when acknowledgements reach
the source host.
"""

from __future__ import annotations

from typing import Iterable

from .engine import Engine, FlowInfo
from .packet import Packet


class TrafficSource:
    """Abstract traffic source; subclasses emit packets in :meth:`on_tick`."""

    def flows(self) -> Iterable[FlowInfo]:
        """The flows this source owns (used by the engine to route ACKs)."""
        raise NotImplementedError

    def on_tick(self, engine: Engine, tick: int) -> None:
        """Emit packets for this tick."""
        raise NotImplementedError

    def on_ack(self, engine: Engine, flow: FlowInfo, pkt: Packet, tick: int) -> None:
        """An ACK for ``pkt.seq`` reached the source host (default: ignore)."""

    def on_synack(
        self, engine: Engine, flow: FlowInfo, pkt: Packet, tick: int
    ) -> None:
        """A SYN-ACK reached the source host (default: ignore)."""
