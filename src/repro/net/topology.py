"""Network topology: nodes, directed links, and static routing.

A topology is a directed multigraph of named nodes.  Nodes need no explicit
objects: hosts are the nodes that terminate flows, routers are everything
else.  Each directed :class:`Link` carries a capacity (packets per tick,
``None`` meaning unbounded), a finite FIFO buffer, and an admission policy
(:class:`~repro.net.policy.LinkPolicy`).

Routing is static: flows carry their full node route, computed here with a
breadth-first shortest path.  That matches the paper's setting — BGP-stable
domain paths stamped at the origin (Section III-A) — while still letting
scenarios define arbitrary routes explicitly.
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import LinkMonitor
    from .packet import Packet
    from .policy import LinkPolicy

NodeId = Hashable


class Link:
    """One directed link ``src -> dst``.

    The per-tick service loop lives in the engine; the link only holds its
    configuration and mutable queue state.

    Attributes
    ----------
    capacity:
        Packets serviced per tick (may be fractional; the engine accumulates
        service credit).  ``None`` means unbounded (never congested).
    buffer:
        Maximum queue length in packets.  ``None`` means unbounded.
    delay:
        Propagation delay in ticks (>= 1).  The baseline model is one hop
        per tick; larger values model long-haul links and give scenarios
        heterogeneous RTTs (which FLoc's per-path estimation must handle).
    policy:
        Admission policy consulted for every arrival; ``None`` behaves like
        an unbounded-buffer drop-tail.
    up:
        Whether the link is operational.  Down links drop every packet
        handed to them and are invisible to route computation; fault
        injectors toggle this through :meth:`Engine.fail_link` /
        :meth:`Engine.restore_link` so queued packets are accounted for.
    """

    __slots__ = (
        "src",
        "dst",
        "capacity",
        "buffer",
        "delay",
        "policy",
        "up",
        "queue",
        "arrivals",
        "arrivals_next",
        "credit",
        "serviced_total",
        "dropped_total",
        "monitors",
    )

    def __init__(
        self,
        src: NodeId,
        dst: NodeId,
        capacity: Optional[float] = None,
        buffer: Optional[int] = None,
        delay: int = 1,
    ) -> None:
        if delay < 1:
            raise TopologyError(f"link delay must be >= 1 tick, got {delay}")
        if capacity is not None and capacity <= 0:
            raise TopologyError(
                f"link capacity must be positive (or None for unbounded), "
                f"got {capacity} for {src!r} -> {dst!r}"
            )
        if buffer is not None and buffer < 1:
            raise TopologyError(
                f"link buffer must be >= 1 packet (or None for unbounded), "
                f"got {buffer} for {src!r} -> {dst!r}"
            )
        self.src = src
        self.dst = dst
        self.capacity = capacity
        self.buffer = buffer
        self.delay = delay
        self.policy: Optional["LinkPolicy"] = None
        self.up = True
        self.queue: Deque["Packet"] = deque()
        self.arrivals: List["Packet"] = []
        self.arrivals_next: List["Packet"] = []
        self.credit = 0.0
        self.serviced_total = 0
        self.dropped_total = 0
        self.monitors: List["LinkMonitor"] = []

    @property
    def ends(self) -> Tuple[NodeId, NodeId]:
        """The ``(src, dst)`` node pair of this link."""
        return (self.src, self.dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.src}->{self.dst}, cap={self.capacity}, buf={self.buffer})"


class Topology:
    """A directed graph of links with helpers for routing.

    Examples
    --------
    >>> topo = Topology()
    >>> topo.add_duplex_link("a", "r", capacity=None)
    >>> topo.add_duplex_link("r", "b", capacity=10.0, buffer=50)
    >>> topo.shortest_route("a", "b")
    ['a', 'r', 'b']
    """

    def __init__(self) -> None:
        self._links: Dict[Tuple[NodeId, NodeId], Link] = {}
        self._out: Dict[NodeId, List[NodeId]] = {}
        self._in: Dict[NodeId, List[NodeId]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_link(
        self,
        src: NodeId,
        dst: NodeId,
        capacity: Optional[float] = None,
        buffer: Optional[int] = None,
        delay: int = 1,
    ) -> Link:
        """Add a directed link; replaces any existing ``src -> dst`` link."""
        if src == dst:
            raise TopologyError(f"self-loop link at node {src!r}")
        link = Link(src, dst, capacity=capacity, buffer=buffer, delay=delay)
        if (src, dst) not in self._links:
            self._out.setdefault(src, []).append(dst)
            self._in.setdefault(dst, []).append(src)
            self._out.setdefault(dst, [])
            self._in.setdefault(src, [])
        self._links[(src, dst)] = link
        return link

    def add_duplex_link(
        self,
        a: NodeId,
        b: NodeId,
        capacity: Optional[float] = None,
        buffer: Optional[int] = None,
        reverse_capacity: Optional[float] = None,
        delay: int = 1,
    ) -> Tuple[Link, Link]:
        """Add both directions; the reverse defaults to unbounded.

        Flooding scenarios congest one direction only; the reverse path must
        carry ACKs unhindered (the paper's evaluation does the same).
        """
        fwd = self.add_link(a, b, capacity=capacity, buffer=buffer, delay=delay)
        rev = self.add_link(b, a, capacity=reverse_capacity, buffer=None,
                            delay=delay)
        return fwd, rev

    def set_policy(self, src: NodeId, dst: NodeId, policy: "LinkPolicy") -> None:
        """Attach an admission policy to the ``src -> dst`` link."""
        self.link(src, dst).policy = policy

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def link(self, src: NodeId, dst: NodeId) -> Link:
        """Return the ``src -> dst`` link, raising if absent."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link {src!r} -> {dst!r}") from None

    def has_link(self, src: NodeId, dst: NodeId) -> bool:
        """Whether a ``src -> dst`` link exists."""
        return (src, dst) in self._links

    def links(self) -> Iterable[Link]:
        """All links in insertion order."""
        return self._links.values()

    def nodes(self) -> List[NodeId]:
        """All node ids."""
        return list(self._out.keys())

    def successors(self, node: NodeId) -> List[NodeId]:
        """Nodes reachable over one outgoing link of ``node``."""
        return list(self._out.get(node, ()))

    def predecessors(self, node: NodeId) -> List[NodeId]:
        """Nodes with a link into ``node`` (used by Pushback propagation)."""
        return list(self._in.get(node, ()))

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shortest_route(self, src: NodeId, dst: NodeId) -> List[NodeId]:
        """Breadth-first shortest node route from ``src`` to ``dst``.

        Down links are skipped, so recomputing a failed flow's route
        automatically steers it around injected link failures.
        """
        if src == dst:
            return [src]
        if src not in self._out:
            raise TopologyError(f"unknown node {src!r}")
        parent: Dict[NodeId, NodeId] = {src: src}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            for nxt in self._out.get(node, ()):
                if nxt in parent or not self._links[(node, nxt)].up:
                    continue
                parent[nxt] = node
                if nxt == dst:
                    route = [dst]
                    while route[-1] != src:
                        route.append(parent[route[-1]])
                    route.reverse()
                    return route
                frontier.append(nxt)
        raise TopologyError(f"no route {src!r} -> {dst!r}")

    def validate_route(self, route: List[NodeId]) -> None:
        """Raise :class:`TopologyError` unless every hop of ``route`` exists."""
        if len(route) < 2:
            raise TopologyError(f"route must have at least two nodes, got {route!r}")
        for u, v in zip(route, route[1:]):
            if (u, v) not in self._links:
                raise TopologyError(f"route uses missing link {u!r} -> {v!r}")
            if not self._links[(u, v)].up:
                raise TopologyError(f"route uses down link {u!r} -> {v!r}")
