"""Link admission policies.

A :class:`LinkPolicy` decides, for every packet arriving at a link during a
tick, whether the packet is enqueued or dropped.  The engine then services
the FIFO queue at the link's capacity.  FLoc, RED, RED-PD and Pushback are
all implemented as policies over this interface (see
:mod:`repro.core.router` and :mod:`repro.baselines`).

Two reference policies live here:

* :class:`DropTailPolicy` — admit until the buffer is full (classic FIFO).
* :class:`RandomDropPolicy` — when the tick's arrivals plus backlog exceed
  what the link can hold, drop uniformly at random among this tick's
  arrivals.  This is the paper's Internet-scale simulator behaviour
  ("a router randomly selects a packet from the all queued packets during a
  time tick", Section VII-B).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional

from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Engine
    from .topology import Link


class LinkPolicy:
    """Base class for per-link admission policies.

    Subclasses may override any subset of the hooks.  The engine guarantees
    the calling order per tick: :meth:`on_tick` once, then :meth:`admit` for
    each arrival (in arrival order), then :meth:`on_drop` for every packet
    dropped on this link this tick (both policy drops and buffer-overflow
    tail drops), then the queue is serviced.
    """

    link: "Link"
    engine: "Engine"

    def attach(self, link: "Link", engine: "Engine") -> None:
        """Called once when the engine starts; stores back-references."""
        self.link = link
        self.engine = engine

    def on_tick(self, tick: int) -> None:
        """Per-tick bookkeeping before any arrival is examined."""

    def admit(self, pkt: Packet, tick: int) -> bool:
        """Return ``True`` to enqueue ``pkt``, ``False`` to drop it."""
        return True

    def on_drop(self, pkt: Packet, tick: int) -> None:
        """Notification that ``pkt`` was dropped on this link."""

    def pending_drop_cause(self) -> Optional[str]:
        """Cause label for the drop about to be reported via :meth:`on_drop`.

        The engine peeks this (telemetry drop provenance) immediately
        before calling :meth:`on_drop` for a packet the policy rejected.
        Policies that attribute their drops return one of
        :data:`repro.telemetry.DROP_CAUSES`; the base class returns
        ``None``, which the engine records as the terminal ``overflow``
        stage.
        """
        return None

    def batch_admit(
        self, arrivals: List[Packet], tick: int
    ) -> Optional[List[Packet]]:
        """Optional whole-tick admission.

        Return a list of admitted packets to bypass per-packet
        :meth:`admit` calls (the engine treats the rest as drops), or
        ``None`` to use per-packet admission.  Policies that need to see a
        tick's arrivals together (random selection among arrivals) use this.
        """
        return None

    # ------------------------------------------------------------------
    # fault-injection hooks (see repro.faults)
    # ------------------------------------------------------------------
    def restart(self, tick: int) -> None:
        """Simulate a router crash/restart: wipe volatile policy state.

        The base policy is stateless, so this is a no-op; stateful
        policies (FLoc) override it and enter a warm-up mode until their
        estimates re-converge.
        """

    def corrupt_state(self, fraction: float, rng: random.Random) -> None:
        """Simulate partial state loss (e.g. a failed line card): forget a
        random ``fraction`` of volatile records.  No-op for stateless
        policies."""

    def jitter_clock(self, offset: int) -> None:
        """Shift the policy's measurement-interval phase by ``offset``
        ticks (clock skew after an NTP step or a VM pause).  No-op for
        policies without periodic measurement."""


class DropTailPolicy(LinkPolicy):
    """Classic FIFO drop-tail: admit while the buffer has room."""

    def admit(self, pkt: Packet, tick: int) -> bool:
        buffer = self.link.buffer
        return buffer is None or len(self.link.queue) < buffer


class RandomDropPolicy(LinkPolicy):
    """Random drop among a tick's arrivals when the buffer would overflow.

    Matches the coarse queue approximation of the paper's Internet-scale
    simulator: when more packets arrive in a tick than the link can buffer
    and serve, the overflow victims are picked uniformly at random from the
    arrivals rather than strictly from the tail.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng

    def attach(self, link: "Link", engine: "Engine") -> None:
        super().attach(link, engine)
        if self._rng is None:
            self._rng = engine.spawn_rng("random-drop")

    def pending_drop_cause(self) -> Optional[str]:
        return "random"

    def batch_admit(self, arrivals: List[Packet], tick: int) -> List[Packet]:
        link = self.link
        if link.buffer is None:
            return list(arrivals)
        room = link.buffer - len(link.queue)
        if room >= len(arrivals):
            return list(arrivals)
        if room <= 0:
            return []
        assert self._rng is not None  # attach() installs one
        return self._rng.sample(arrivals, room)
