"""Discrete-time, packet-level network simulation substrate.

This package implements the simulation model described in Section VII-B of
the FLoc paper, generalized so it also supports the functional evaluation of
Section VI (which the authors ran on ns2):

* time advances in integer ticks,
* a packet advances one router hop per tick,
* each directed link has a capacity in packets per tick, a finite FIFO
  buffer, and a pluggable admission policy (drop-tail, RED, RED-PD,
  Pushback, per-flow fairness, or FLoc),
* whenever a drop is necessary the policy picks the victim; the default
  matches the paper's random selection among queued packets.

The key classes are :class:`~repro.net.topology.Topology`,
:class:`~repro.net.engine.Engine`, :class:`~repro.net.packet.Packet` and
:class:`~repro.net.policy.LinkPolicy`.
"""

from .packet import ACK, DATA, SYN, SYNACK, Packet, kind_name
from .topology import Link, Topology
from .policy import DropTailPolicy, LinkPolicy, RandomDropPolicy
from .engine import Engine, FlowInfo, LinkMonitor
from .source import TrafficSource

__all__ = [
    "ACK",
    "DATA",
    "SYN",
    "SYNACK",
    "Packet",
    "kind_name",
    "Link",
    "Topology",
    "LinkPolicy",
    "DropTailPolicy",
    "RandomDropPolicy",
    "Engine",
    "FlowInfo",
    "LinkMonitor",
    "TrafficSource",
]
