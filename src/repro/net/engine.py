"""The discrete-time simulation engine.

Timing model (paper Section VII-B): packets advance one router hop per
tick.  A tick proceeds in phases:

1. packets serviced on the previous tick arrive at their next node; packets
   whose route is complete are *delivered* (data/SYN to the destination
   host, which replies with ACK/SYN-ACK; ACK/SYN-ACK to the source's
   traffic generator),
2. traffic sources emit new packets into their access links,
3. every active link runs its admission policy over this tick's arrivals,
   enqueues survivors (FIFO, bounded buffer), and services up to
   ``capacity`` packets, which will arrive at the next hop on tick + 1.

Reproducibility: the engine owns a master seed; every stochastic component
derives its own :class:`random.Random` via :meth:`Engine.spawn_rng`, so
simulations are deterministic given (scenario, seed).
"""

from __future__ import annotations

import hashlib
import random
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import SimulationError
from ..telemetry import LabeledCounter, NullTelemetry, TickSeries, current
from ..units import DEFAULT_SCALE, UnitScale
from .packet import ACK, DATA, SYN, SYNACK, Packet
from .topology import Link, Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .source import TrafficSource


class FlowInfo:
    """Engine-side record of one flow (a source/destination/path triple)."""

    __slots__ = (
        "flow_id",
        "src_host",
        "dst_host",
        "route",
        "reverse_route",
        "path_id",
        "is_attack",
        "source",
    )

    def __init__(
        self,
        flow_id: int,
        src_host: Hashable,
        dst_host: Hashable,
        route: Tuple[Hashable, ...],
        reverse_route: Tuple[Hashable, ...],
        path_id: Tuple[int, ...],
        is_attack: bool,
        source: Optional["TrafficSource"] = None,
    ) -> None:
        self.flow_id = flow_id
        self.src_host = src_host
        self.dst_host = dst_host
        self.route = route
        self.reverse_route = reverse_route
        self.path_id = path_id
        self.is_attack = is_attack
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "attack" if self.is_attack else "legit"
        return f"FlowInfo({self.flow_id}, {self.src_host}->{self.dst_host}, {tag})"


class LinkMonitor:
    """Records per-flow service and drop counts on one link.

    ``service_counts[flow_id]`` and ``drop_counts[flow_id]`` accumulate only
    while ``start_tick <= tick < stop_tick`` (both optional), which is how
    the paper measures bandwidth "in a 20 to 80 second interval"
    (Section VI-B).  ``per_tick_service`` optionally keeps a full time
    series for figure-style output.

    The containers are :mod:`repro.telemetry` primitives —
    :class:`~repro.telemetry.LabeledCounter` (a ``dict`` subclass) and
    :class:`~repro.telemetry.TickSeries` (a ``list`` subclass) — so the
    monitor doubles as a registry adapter while keeping the historical
    dict/list public API, equality, and flush semantics bit-identical.
    """

    def __init__(
        self,
        start_tick: int = 0,
        stop_tick: Optional[int] = None,
        record_series: bool = False,
    ) -> None:
        self.start_tick = start_tick
        self.stop_tick = stop_tick
        self.record_series = record_series
        self.service_counts: LabeledCounter = LabeledCounter()
        self.drop_counts: LabeledCounter = LabeledCounter()
        self.series: TickSeries = TickSeries()  # (tick, serviced-count)

    def _in_window(self, tick: int) -> bool:
        if tick < self.start_tick:
            return False
        return self.stop_tick is None or tick < self.stop_tick

    def on_service(self, pkt: Packet, tick: int) -> None:
        """Called by the engine when ``pkt`` is serviced on the link."""
        if not self._in_window(tick):
            return
        self.service_counts.inc(pkt.flow_id)
        if self.record_series:
            self.series.observe(tick)

    def on_drop(self, pkt: Packet, tick: int) -> None:
        """Called by the engine when ``pkt`` is dropped on the link."""
        if not self._in_window(tick):
            return
        self.drop_counts.inc(pkt.flow_id)

    def flush(self) -> None:
        """Finalise the in-progress series point.

        ``on_service`` only appends a ``(tick, count)`` pair once a *later*
        serviced tick arrives, so without this the last measurement tick of
        a run would be silently lost.  The engine calls it whenever a
        :meth:`Engine.run` segment completes; it is idempotent, and safe
        across segmented runs because ticks are monotonic.
        """
        self.series.flush()

    @property
    def _series_tick(self) -> int:
        return self.series.pending_tick

    @property
    def _tick_serviced(self) -> int:
        return self.series.pending_value

    @property
    def total_serviced(self) -> int:
        """Total packets serviced in the measurement window."""
        return sum(self.service_counts.values())

    @property
    def total_dropped(self) -> int:
        """Total packets dropped in the measurement window."""
        return sum(self.drop_counts.values())


class Engine:
    """Drives a :class:`~repro.net.topology.Topology` tick by tick."""

    def __init__(
        self,
        topology: Topology,
        scale: UnitScale = DEFAULT_SCALE,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.scale = scale
        self.seed = seed
        self.tick = 0
        self.flows: Dict[int, FlowInfo] = {}
        self._sources: List["TrafficSource"] = []
        self._next_flow_id = 0
        # insertion-ordered (dict-as-set) so link processing order — and
        # therefore FIFO interleaving and drop victims — is deterministic
        # given (scenario, seed), independent of object hashes
        self._active: Dict[Link, None] = {}
        self._touched_next: Dict[Link, None] = {}
        self._deliveries: List[Packet] = []
        self._deliveries_next: List[Packet] = []
        # packets in flight on links with delay > 1 tick:
        # arrival tick -> [(next_link_or_None, packet), ...]
        self._scheduled: Dict[int, List[Tuple[Optional[Link], Packet]]] = {}
        self._started = False
        self._hooks_per_tick: List[Callable[["Engine", int], None]] = []
        self._hook_labels: List[str] = []
        # observation only: the current telemetry facade (NULL_TELEMETRY
        # unless the engine is built inside a repro.telemetry.use block)
        self.telemetry: NullTelemetry = current()
        # conservation ledger (see repro.sanitize): every packet handed to
        # emit() must eventually be delivered or counted in some link's
        # dropped_total, with the difference in flight
        self.packets_emitted = 0
        self.packets_delivered = 0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def spawn_rng(self, name: str) -> random.Random:
        """Derive a deterministic, independent RNG from the master seed."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def open_flow(
        self,
        src_host: Hashable,
        dst_host: Hashable,
        path_id: Tuple[int, ...],
        route: Optional[Sequence[Hashable]] = None,
        reverse_route: Optional[Sequence[Hashable]] = None,
        is_attack: bool = False,
    ) -> FlowInfo:
        """Register a flow and return its :class:`FlowInfo`.

        ``path_id`` is the FLoc domain-path identifier, origin AS first.
        Routes default to the topology's shortest paths.
        """
        if route is None:
            route = self.topology.shortest_route(src_host, dst_host)
        else:
            route = list(route)
            if len(route) < 2:
                raise SimulationError(
                    f"flow {src_host!r} -> {dst_host!r} needs a route of at "
                    f"least two nodes, got {route!r}"
                )
            self.topology.validate_route(route)
        if len(route) < 2:
            raise SimulationError(
                f"flow {src_host!r} -> {dst_host!r} has a degenerate "
                f"single-node route; source and destination must differ"
            )
        if reverse_route is None:
            reverse_route = self.topology.shortest_route(dst_host, src_host)
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        info = FlowInfo(
            flow_id,
            src_host,
            dst_host,
            tuple(route),
            tuple(reverse_route),
            tuple(path_id),
            is_attack,
        )
        self.flows[flow_id] = info
        return info

    def add_source(self, source: "TrafficSource") -> None:
        """Register a traffic source; it owns one or more flows."""
        if self._started:
            raise SimulationError(
                "add_source after the simulation started; register every "
                "source before the first Engine.run call"
            )
        self._sources.append(source)
        for flow in source.flows():
            flow.source = source

    def add_monitor(
        self,
        src: Hashable,
        dst: Hashable,
        monitor: Optional[LinkMonitor] = None,
    ) -> LinkMonitor:
        """Attach a :class:`LinkMonitor` to the ``src -> dst`` link."""
        if monitor is None:
            monitor = LinkMonitor()
        self.topology.link(src, dst).monitors.append(monitor)
        return monitor

    def add_tick_hook(self, hook: Callable[["Engine", int], None]) -> None:
        """Run ``hook(engine, tick)`` at the start of every tick."""
        self._hooks_per_tick.append(hook)
        label = (
            getattr(hook, "telemetry_label", None)
            or getattr(hook, "__name__", None)
            or type(hook).__name__
        )
        self._hook_labels.append(str(label))

    # ------------------------------------------------------------------
    # packet movement
    # ------------------------------------------------------------------
    def emit(self, pkt: Packet) -> None:
        """Inject ``pkt`` at the first link of its route (current tick)."""
        self.packets_emitted += 1
        route = pkt.route
        link = self.topology.link(route[pkt.hop], route[pkt.hop + 1])
        if not link.up:
            self._dead_drop(link, pkt)
            return
        link.arrivals.append(pkt)
        self._active[link] = None

    def _schedule_next_hop(self, pkt: Packet, link: Link) -> None:
        # next-tick buffer: a packet advances at most one hop per tick,
        # regardless of the order links are processed in
        link.arrivals_next.append(pkt)
        self._touched_next[link] = None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, ticks: int) -> None:
        """Advance the simulation by ``ticks`` ticks."""
        if ticks < 0:
            raise SimulationError(
                f"cannot run a negative number of ticks, got {ticks}"
            )
        if not self._started:
            self._start()
        for _ in range(ticks):
            self._step()
        for link in self.topology.links():
            for mon in link.monitors:
                mon.flush()
        if self.telemetry.enabled:
            self.telemetry.scrape_engine(self)

    def run_seconds(self, seconds: float) -> None:
        """Advance the simulation by a wall-clock duration in sim time."""
        self.run(self.scale.seconds_to_ticks(seconds))

    def _start(self) -> None:
        self._started = True
        self._interleave_rng = self.spawn_rng("arrival-interleave")
        self._policy_links = []
        for link in self.topology.links():
            if link.policy is not None:
                link.policy.attach(link, self)
                self._policy_links.append(link)

    def _step(self) -> None:
        tick = self.tick
        tel = self.telemetry
        prof = tel.profiler if tel.profile_enabled else None
        clock = prof.start() if prof is not None else 0.0
        # phase 0: arrivals scheduled last tick become this tick's work.
        for link in self._touched_next:
            if link.arrivals_next:
                link.arrivals.extend(link.arrivals_next)
                link.arrivals_next.clear()
        self._active.update(self._touched_next)
        self._touched_next = {}
        self._deliveries, self._deliveries_next = self._deliveries_next, []
        # long-haul (delay > 1) packets arriving now
        for dest, pkt in self._scheduled.pop(tick, ()):
            if dest is None:
                self._deliveries.append(pkt)
            else:
                dest.arrivals.append(pkt)
                self._active[dest] = None
        if prof is not None:
            clock = prof.lap("arrivals", clock)

        if prof is None:
            for hook in self._hooks_per_tick:
                hook(self, tick)
        else:
            # attribute each hook (sanitizer, fault schedule, ...) its own
            # wall-time bucket
            for hook, label in zip(self._hooks_per_tick, self._hook_labels):
                hook(self, tick)
                clock = prof.lap(label, clock)

        # policies tick even when their link is idle (timers, state expiry)
        for link in self._policy_links:
            link.policy.on_tick(tick)
        if prof is not None:
            clock = prof.lap("policy", clock)

        # phase 1: deliveries (end hosts react: sinks ACK, sources absorb).
        for pkt in self._deliveries:
            self._deliver(pkt, tick)
        if prof is not None:
            clock = prof.lap("delivery", clock)

        # phase 2: source emissions.
        for source in self._sources:
            source.on_tick(self, tick)
        if prof is not None:
            clock = prof.lap("sources", clock)

        # phase 3: link processing.
        active = self._active
        self._active = {}
        for link in active:
            self._process_link(link, tick)
        if prof is not None:
            prof.lap("queueing", clock)
            prof.tick_done()
        if tel.enabled:
            tel.sample_engine(self, tick)

        self.tick = tick + 1

    def _process_link(self, link: Link, tick: int) -> None:
        if not link.up:
            # packets handed to a failed link are lost in transit; the
            # policy is not consulted (the router behind it is unreachable)
            arrivals = link.arrivals
            link.arrivals = []
            for pkt in arrivals:
                self._dead_drop(link, pkt)
            return
        policy = link.policy
        arrivals = link.arrivals
        link.arrivals = []
        queue = link.queue
        monitors = link.monitors

        if policy is not None:
            # a tick's arrivals come from many upstream sources; real
            # routers see them interleaved, not in source-registration
            # order — without this, the same flows always sit at the
            # tick's tail and absorb every token-exhaustion drop
            if len(arrivals) > 1:
                arrivals = self._interleave(arrivals)
            admitted = policy.batch_admit(arrivals, tick)
            if admitted is None:
                admitted = []
                for pkt in arrivals:
                    # drop notification happens immediately after a failed
                    # admit so policies can attribute the drop's cause
                    if policy.admit(pkt, tick):
                        admitted.append(pkt)
                    else:
                        self._drop(link, pkt, tick)
            elif len(admitted) != len(arrivals):
                kept = set(map(id, admitted))
                for pkt in arrivals:
                    if id(pkt) not in kept:
                        self._drop(link, pkt, tick)
            buffer = link.buffer
            for pkt in admitted:
                if buffer is not None and len(queue) >= buffer:
                    self._drop(link, pkt, tick)
                else:
                    queue.append(pkt)
        else:
            buffer = link.buffer
            if buffer is None:
                queue.extend(arrivals)
            else:
                for pkt in arrivals:
                    if len(queue) >= buffer:
                        self._drop(link, pkt, tick)
                    else:
                        queue.append(pkt)

        # service
        if link.capacity is None:
            n_service = len(queue)
        else:
            link.credit += link.capacity
            n_service = int(link.credit)
            if n_service > len(queue):
                n_service = len(queue)
            link.credit -= n_service
            if link.credit > link.capacity:  # do not bank idle capacity
                link.credit = link.capacity
        route_end_delivery = self._deliveries_next
        delay = link.delay
        for _ in range(n_service):
            pkt = queue.popleft()
            link.serviced_total += 1
            for mon in monitors:
                mon.on_service(pkt, tick)
            pkt.hop += 1
            route = pkt.route
            at_end = pkt.hop >= len(route) - 1
            if delay == 1:
                if at_end:
                    route_end_delivery.append(pkt)
                else:
                    nxt = self.topology.link(route[pkt.hop], route[pkt.hop + 1])
                    self._schedule_next_hop(pkt, nxt)
            else:
                nxt = (
                    None
                    if at_end
                    else self.topology.link(route[pkt.hop], route[pkt.hop + 1])
                )
                self._scheduled.setdefault(tick + delay, []).append((nxt, pkt))
        if queue:
            self._touched_next[link] = None

    def _interleave(self, arrivals: List[Packet]) -> List[Packet]:
        """Randomly merge per-flow packet streams, preserving each flow's
        own FIFO order (reordering a flow's packets would fire spurious
        duplicate-ACK retransmissions at its TCP source)."""
        by_flow: Dict[int, List[Packet]] = {}
        for pkt in arrivals:
            by_flow.setdefault(pkt.flow_id, []).append(pkt)
        if len(by_flow) <= 1:
            return arrivals
        streams = list(by_flow.values())
        cursors = [0] * len(streams)
        out: List[Packet] = []
        randrange = self._interleave_rng.randrange
        while streams:
            i = randrange(len(streams)) if len(streams) > 1 else 0
            stream = streams[i]
            out.append(stream[cursors[i]])
            cursors[i] += 1
            if cursors[i] == len(stream):
                last = len(streams) - 1
                streams[i] = streams[last]
                cursors[i] = cursors[last]
                streams.pop()
                cursors.pop()
        return out

    def _drop(self, link: Link, pkt: Packet, tick: int) -> None:
        link.dropped_total += 1
        policy = link.policy
        if policy is not None:
            tel = self.telemetry
            if tel.enabled:
                # peek the cause before on_drop consumes the policy's
                # pending-cause state; a policy that does not attribute
                # its drops falls back to the terminal stage
                cause = policy.pending_drop_cause() or "overflow"
                tel.record_drop(tick, cause, pkt.flow_id, pkt.path_id)
            policy.on_drop(pkt, tick)
        elif self.telemetry.enabled:
            self.telemetry.record_drop(tick, "overflow", pkt.flow_id, pkt.path_id)
        for mon in link.monitors:
            mon.on_drop(pkt, tick)

    def _dead_drop(self, link: Link, pkt: Packet) -> None:
        """Loss on a failed link: counted and monitored, but not reported
        to the admission policy (the drop is not a congestion signal)."""
        link.dropped_total += 1
        if self.telemetry.enabled:
            self.telemetry.record_drop(
                self.tick, "dead_link", pkt.flow_id, pkt.path_id
            )
        for mon in link.monitors:
            mon.on_drop(pkt, self.tick)

    # ------------------------------------------------------------------
    # accounting (used by repro.sanitize)
    # ------------------------------------------------------------------
    def in_flight_count(self) -> int:
        """Packets currently inside the network: queued or arriving on any
        link, scheduled on a long-haul hop, or awaiting delivery."""
        count = len(self._deliveries) + len(self._deliveries_next)
        for link in self.topology.links():
            count += len(link.queue) + len(link.arrivals) + len(link.arrivals_next)
        for pkts in self._scheduled.values():
            count += len(pkts)
        return count

    def total_link_drops(self) -> int:
        """Packets dropped on any link since the simulation started."""
        return sum(link.dropped_total for link in self.topology.links())

    # ------------------------------------------------------------------
    # fault support (used by repro.faults injectors)
    # ------------------------------------------------------------------
    def fail_link(self, src: Hashable, dst: Hashable) -> Link:
        """Take the ``src -> dst`` link down, losing its queued packets.

        Packets already handed to the link (queue and pending arrivals)
        are lost; packets arriving while the link is down are lost on
        arrival.  Routing ignores down links, so flows rerouted afterwards
        steer around the failure.
        """
        link = self.topology.link(src, dst)
        link.up = False
        for pkt in list(link.queue) + link.arrivals + link.arrivals_next:
            self._dead_drop(link, pkt)
        link.queue.clear()
        link.arrivals.clear()
        link.arrivals_next.clear()
        return link

    def restore_link(self, src: Hashable, dst: Hashable) -> Link:
        """Bring a failed link back up, with an empty queue and no banked
        service credit."""
        link = self.topology.link(src, dst)
        link.up = True
        link.credit = 0.0
        return link

    def reroute_flow(
        self,
        flow: FlowInfo,
        route: Optional[Sequence[Hashable]] = None,
        reverse_route: Optional[Sequence[Hashable]] = None,
    ) -> None:
        """Re-path a flow mid-run (defaults to current shortest routes).

        Packets already in flight keep the old route; only subsequent
        emissions follow the new one.  The flow keeps its ``path_id`` — the
        identifier was stamped at the origin and FLoc's per-path state
        survives intra-domain rerouting (paper Section III-A).
        """
        if route is None:
            route = self.topology.shortest_route(flow.src_host, flow.dst_host)
        else:
            self.topology.validate_route(list(route))
        if reverse_route is None:
            reverse_route = self.topology.shortest_route(
                flow.dst_host, flow.src_host
            )
        else:
            self.topology.validate_route(list(reverse_route))
        flow.route = tuple(route)
        flow.reverse_route = tuple(reverse_route)

    # ------------------------------------------------------------------
    # end-host behaviour
    # ------------------------------------------------------------------
    def _deliver(self, pkt: Packet, tick: int) -> None:
        self.packets_delivered += 1
        flow = self.flows.get(pkt.flow_id)
        if flow is None:
            raise SimulationError(f"delivery for unknown flow {pkt.flow_id}")
        if pkt.kind == DATA:
            self._reply(flow, pkt, ACK, tick)
        elif pkt.kind == SYN:
            self._reply(flow, pkt, SYNACK, tick)
        elif pkt.kind == ACK:
            if flow.source is not None:
                flow.source.on_ack(self, flow, pkt, tick)
        elif pkt.kind == SYNACK:
            if flow.source is not None:
                flow.source.on_synack(self, flow, pkt, tick)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown packet kind {pkt.kind}")

    def _reply(self, flow: FlowInfo, pkt: Packet, kind: int, tick: int) -> None:
        """Destination host acknowledges a data or SYN packet."""
        reply = Packet(
            flow_id=flow.flow_id,
            kind=kind,
            seq=pkt.seq,
            path_id=flow.path_id,
            route=flow.reverse_route,
            src_addr=flow.dst_host,
            dst_addr=flow.src_host,
            sent_tick=pkt.sent_tick,
            capability=pkt.capability,
        )
        self.emit(reply)
