"""Packet representation for the simulation engine.

Packets are deliberately tiny objects (``__slots__``, integer packet kinds)
because the functional scenarios push millions of packet-hop events through
pure Python.  One :class:`Packet` models one full-sized segment; control
packets (SYN/SYN-ACK/ACK) are 40-byte packets that, per the paper's
Section III-D, do not materially contribute to congestion and are therefore
carried on the (uncongested) reverse direction without consuming data-plane
tokens.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

#: Packet kinds (small ints for speed; see :func:`kind_name`).
DATA = 0
ACK = 1
SYN = 2
SYNACK = 3

_KIND_NAMES = {DATA: "DATA", ACK: "ACK", SYN: "SYN", SYNACK: "SYNACK"}


def kind_name(kind: int) -> str:
    """Human-readable name for a packet kind constant."""
    return _KIND_NAMES.get(kind, f"UNKNOWN({kind})")


class Packet:
    """One simulated packet.

    Attributes
    ----------
    flow_id:
        Integer id of the flow this packet belongs to (engine-assigned).
    kind:
        One of :data:`DATA`, :data:`ACK`, :data:`SYN`, :data:`SYNACK`.
    seq:
        Sequence number within the flow; ACKs echo the acknowledged
        sequence number.
    path_id:
        The FLoc domain-path identifier ``(AS_i, ..., AS_1)`` stamped by the
        BGP speaker of the packet's origin domain (paper Section III-A).
    route:
        The node-id route this packet follows, as a tuple; ``hop`` indexes
        the link about to be traversed (``route[hop] -> route[hop + 1]``).
    src_addr / dst_addr:
        Endpoint addresses used by capability hashing (host ids double as
        addresses).
    sent_tick:
        Tick at which the source emitted the packet (for RTT bookkeeping).
    """

    __slots__ = (
        "flow_id",
        "kind",
        "seq",
        "path_id",
        "route",
        "hop",
        "src_addr",
        "dst_addr",
        "sent_tick",
        "capability",
    )

    def __init__(
        self,
        flow_id: int,
        kind: int,
        seq: int,
        path_id: Tuple[int, ...],
        route: Sequence[Hashable],
        src_addr: Hashable,
        dst_addr: Hashable,
        sent_tick: int,
        capability: Optional[bytes] = None,
    ) -> None:
        self.flow_id = flow_id
        self.kind = kind
        self.seq = seq
        self.path_id = path_id
        self.route = route
        self.hop = 0
        self.src_addr = src_addr
        self.dst_addr = dst_addr
        self.sent_tick = sent_tick
        self.capability = capability

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(flow={self.flow_id}, {kind_name(self.kind)}, seq={self.seq}, "
            f"hop={self.hop}/{len(self.route) - 1})"
        )
