"""Empirical cumulative distribution functions.

The paper's robustness and aggregation results (Figs. 7 and 9) are CDFs
of per-flow bandwidth; these helpers compute and query them.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple


def empirical_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Points ``(x, F(x))`` of the empirical CDF (right-continuous).

    >>> empirical_cdf([2.0, 1.0, 2.0])
    [(1.0, 0.3333333333333333), (2.0, 1.0)]
    """
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points


def cdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of ``values`` that are <= ``x``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    return bisect.bisect_right(ordered, x) / len(ordered)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (``0 <= q <= 1``) by nearest-rank."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]
