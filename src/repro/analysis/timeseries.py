"""Per-key service-rate time series at a link.

Fig. 6 plots the bandwidth received by each *path identifier* over time;
:class:`CategorySeriesMonitor` bins serviced packets by a caller-supplied
key function (path id, category, flow id, ...) so those series fall out of
one simulation pass.
"""

from __future__ import annotations

from typing import Callable, Hashable, List

from ..net.engine import LinkMonitor
from ..net.packet import Packet
from ..telemetry import BinnedCounter


class CategorySeriesMonitor(LinkMonitor):
    """A link monitor that additionally bins service counts by key.

    Parameters
    ----------
    key_fn:
        Maps a serviced packet to a series key.
    bin_ticks:
        Width of one time bin.
    """

    def __init__(
        self,
        key_fn: Callable[[Packet], Hashable],
        bin_ticks: int,
        start_tick: int = 0,
        stop_tick=None,
    ) -> None:
        super().__init__(start_tick=start_tick, stop_tick=stop_tick)
        if bin_ticks < 1:
            raise ValueError(f"bin_ticks must be >= 1, got {bin_ticks}")
        self.key_fn = key_fn
        self.bin_ticks = bin_ticks
        self.binned: BinnedCounter = BinnedCounter()

    def on_service(self, pkt: Packet, tick: int) -> None:
        super().on_service(pkt, tick)
        if not self._in_window(tick):
            return
        key = self.key_fn(pkt)
        b = (tick - self.start_tick) // self.bin_ticks
        self.binned.observe(key, b)

    def rate_series(self, key: Hashable, n_bins: int) -> List[float]:
        """Per-bin service rate (packets per tick) for ``key``.

        (Named ``rate_series`` because the base class already exposes a
        ``series`` list attribute.)
        """
        bins = self.binned.get(key, {})
        return [bins.get(b, 0) / self.bin_ticks for b in range(n_bins)]

    def mean_rate(self, key: Hashable, n_bins: int) -> float:
        """Mean service rate of ``key`` over ``n_bins`` bins."""
        values = self.rate_series(key, n_bins)
        return sum(values) / len(values) if values else 0.0
