"""Fairness metrics for per-flow bandwidth distributions."""

from __future__ import annotations

from typing import Sequence


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly equal allocation; ``1/n`` means one flow holds
    everything.  Returns 1.0 for empty or all-zero inputs (no contention
    to be unfair about).

    >>> jain_index([1.0, 1.0, 1.0, 1.0])
    1.0
    >>> jain_index([4.0, 0.0, 0.0, 0.0])
    0.25
    """
    values = list(values)
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares <= 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


def max_min_ratio(values: Sequence[float], floor: float = 1e-12) -> float:
    """``max/min`` of a distribution; ``inf`` when some flow is starved."""
    values = list(values)
    if not values:
        return 1.0
    low = min(values)
    if low <= floor:
        return float("inf")
    return max(values) / low
