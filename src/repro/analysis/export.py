"""CSV export of figure data.

Every experiment result renders as rows in the benchmark output; this
module writes the same rows to CSV so figures can be re-plotted with any
tool.  Used by the CLI's ``--csv DIR`` flag.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence, Union


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> Path:
    """Write ``headers`` + ``rows`` to ``path`` (parents created).

    Returns the resolved path.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return out


def read_csv(path: Union[str, Path]):
    """Read back a CSV written by :func:`write_csv` (headers, rows)."""
    with Path(path).open(newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        return [], []
    return rows[0], rows[1:]
