"""Measurement and reporting utilities for the evaluation.

* :mod:`~repro.analysis.accounting` — bandwidth breakdowns by the paper's
  three traffic categories (legitimate flows in legitimate paths,
  legitimate flows in attack paths, attack flows).
* :mod:`~repro.analysis.cdf` — empirical CDFs (Figs. 7 and 9 are CDFs of
  per-flow bandwidth).
* :mod:`~repro.analysis.timeseries` — per-path/per-category service-rate
  time series (Fig. 6 style).
* :mod:`~repro.analysis.report` — plain-text table rendering used by the
  benchmark harness to print the paper's rows.
"""

from .accounting import BandwidthBreakdown, categorize_flows, breakdown, per_flow_rates
from .cdf import empirical_cdf, cdf_at, percentile
from .timeseries import CategorySeriesMonitor
from .report import format_table

__all__ = [
    "BandwidthBreakdown",
    "categorize_flows",
    "breakdown",
    "per_flow_rates",
    "empirical_cdf",
    "cdf_at",
    "percentile",
    "CategorySeriesMonitor",
    "format_table",
]
