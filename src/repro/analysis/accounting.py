"""Bandwidth accounting by traffic category.

The paper's evaluation reports bandwidth for three categories of traffic
at the flooded link:

* ``legit_in_legit`` — legitimate flows whose origin domain hosts no bots,
* ``legit_in_attack`` — legitimate flows of bot-contaminated domains,
* ``attack`` — attack flows.

Differential bandwidth guarantees mean:
``legit_in_legit`` is insulated from the attack entirely, and within
attack paths ``legit_in_attack`` flows beat ``attack`` flows per-flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..net.engine import FlowInfo, LinkMonitor
from ..units import UnitScale

LEGIT_IN_LEGIT = "legit_in_legit"
LEGIT_IN_ATTACK = "legit_in_attack"
ATTACK = "attack"

CATEGORIES = (LEGIT_IN_LEGIT, LEGIT_IN_ATTACK, ATTACK)


def categorize_flows(
    flows: Iterable[FlowInfo],
    attack_path_ids: Iterable[Tuple[int, ...]],
) -> Dict[int, str]:
    """Map flow id -> category given the set of attack paths."""
    attack_paths = set(attack_path_ids)
    categories: Dict[int, str] = {}
    for flow in flows:
        if flow.is_attack:
            categories[flow.flow_id] = ATTACK
        elif flow.path_id in attack_paths:
            categories[flow.flow_id] = LEGIT_IN_ATTACK
        else:
            categories[flow.flow_id] = LEGIT_IN_LEGIT
    return categories


@dataclass(frozen=True)
class BandwidthBreakdown:
    """Link-bandwidth shares by category over a measurement window."""

    shares: Mapping[str, float]  # category -> fraction of link capacity
    packets: Mapping[str, int]  # category -> serviced packets
    utilization: float  # total serviced / capacity

    @property
    def legit_in_legit(self) -> float:
        return self.shares.get(LEGIT_IN_LEGIT, 0.0)

    @property
    def legit_in_attack(self) -> float:
        return self.shares.get(LEGIT_IN_ATTACK, 0.0)

    @property
    def attack(self) -> float:
        return self.shares.get(ATTACK, 0.0)

    @property
    def legit_total(self) -> float:
        return self.legit_in_legit + self.legit_in_attack


def breakdown(
    monitor: LinkMonitor,
    flows: Iterable[FlowInfo],
    attack_path_ids: Iterable[Tuple[int, ...]],
    capacity: float,
    window_ticks: int,
) -> BandwidthBreakdown:
    """Compute the category breakdown from a link monitor's counters."""
    categories = categorize_flows(flows, attack_path_ids)
    packets = {cat: 0 for cat in CATEGORIES}
    for flow_id, count in monitor.service_counts.items():
        cat = categories.get(flow_id)
        if cat is not None:
            packets[cat] += count
    budget = max(capacity * window_ticks, 1e-9)
    shares = {cat: packets[cat] / budget for cat in CATEGORIES}
    utilization = sum(packets.values()) / budget
    return BandwidthBreakdown(shares=shares, packets=packets, utilization=utilization)


def per_flow_rates(
    monitor: LinkMonitor,
    flow_ids: Sequence[int],
    window_ticks: int,
    units: UnitScale,
) -> List[float]:
    """Per-flow bandwidths in Mbps over the measurement window.

    Flows with no serviced packets contribute 0.0 — the paper's CDFs
    include starved flows.
    """
    if window_ticks <= 0:
        raise ValueError(f"window_ticks must be positive, got {window_ticks}")
    out = []
    for flow_id in flow_ids:
        pkts = monitor.service_counts.get(flow_id, 0)
        out.append(units.pkts_per_tick_to_mbps(pkts / window_ticks))
    return out
