"""Plain-text table rendering for the benchmark harness.

Every benchmark prints the rows/series of the paper figure it reproduces;
this module keeps that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned plain-text table.

    >>> print(format_table(["a", "b"], [[1, 2.5]], title="t"))
    t
    a  b
    1  2.500
    """
    str_rows: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
