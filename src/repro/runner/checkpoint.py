"""Crash-safe checkpoint storage for supervised experiment runs.

A :class:`CheckpointStore` owns one directory and keeps three kinds of
entries, all pickled Python objects:

* ``unit`` — the finished result of one experiment unit (e.g. one
  (scheme, attack-rate) cell of a figure sweep).  A resumed job skips
  every unit already stored.
* ``state`` — a mid-run simulator snapshot (a pickled
  :class:`~repro.runner.resumable.EngineRun`/``FluidRun``), written
  periodically so a kill mid-unit loses at most one checkpoint interval.
* ``salvage`` — partial results rescued from a failed or interrupted
  job, clearly segregated from trustworthy ``unit`` entries.
* ``telemetry`` — the run's telemetry object (metrics registry and, when
  tracing, the event log), saved alongside each unit so a resumed run
  continues its exported series instead of restarting them.  The tick
  profiler deliberately pickles to an empty state: wall-clock data never
  survives a checkpoint.

Crash safety is torn-write-proof by construction: every file is written
to a temporary name in the same directory, fsynced, then atomically
``os.replace``d into place, and only *then* recorded (again atomically)
in ``MANIFEST.json`` together with its SHA-256.  A crash at any point
leaves either the old manifest (the new file is ignored as unmanifested
garbage) or the new one (the file is complete and verified on load).  A
manifested file whose digest no longer matches raises
:class:`~repro.errors.CheckpointError` — silent corruption never flows
into results.

The manifest also carries a *job fingerprint* (figure name + settings):
resuming with different settings than the checkpoints were produced
under would silently mix incompatible results, so :meth:`check_job`
fails loudly instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
from typing import Any, Dict, List, Optional

from ..errors import CheckpointError

KINDS = ("unit", "state", "salvage", "telemetry")

_MANIFEST = "MANIFEST.json"


def _slug(name: str) -> str:
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") or "unit"
    digest = hashlib.sha256(name.encode()).hexdigest()[:8]
    return f"{safe[:80]}-{digest}"


def _atomic_write(path: str, data: bytes) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CheckpointStore:
    """Atomic, manifest-verified pickle storage rooted at one directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._manifest: Dict[str, Any] = {"version": 1, "job": None, "entries": {}}
        self._read_manifest()

    # -- manifest handling ----------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST)

    def _read_manifest(self) -> None:
        path = self._manifest_path()
        if not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {path}: {exc}"
            ) from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise CheckpointError(
                f"malformed checkpoint manifest {path}: no entries table"
            )
        self._manifest = data

    def _write_manifest(self) -> None:
        blob = json.dumps(self._manifest, indent=2, sort_keys=True)
        _atomic_write(self._manifest_path(), blob.encode())

    # -- job fingerprint -------------------------------------------------
    def set_job(self, fingerprint: Dict[str, Any]) -> None:
        """Record what job these checkpoints belong to."""
        self._manifest["job"] = fingerprint
        self._write_manifest()

    @property
    def job(self) -> Optional[Dict[str, Any]]:
        return self._manifest.get("job")

    def check_job(self, fingerprint: Dict[str, Any]) -> None:
        """Refuse to resume under a different job configuration."""
        stored = self.job
        if stored is None:
            self.set_job(fingerprint)
            return
        if stored != fingerprint:
            raise CheckpointError(
                f"checkpoint dir {self.root} belongs to a different job: "
                f"stored {stored!r}, requested {fingerprint!r}; use a fresh "
                f"--checkpoint-dir or drop --resume to start over"
            )

    # -- entries ---------------------------------------------------------
    def _key(self, kind: str, name: str) -> str:
        if kind not in KINDS:
            raise CheckpointError(
                f"unknown checkpoint kind {kind!r}; expected one of {KINDS}"
            )
        return f"{kind}/{name}"

    def save(self, kind: str, name: str, obj: Any) -> str:
        """Atomically pickle ``obj``; returns the file path."""
        key = self._key(kind, name)
        try:
            blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"cannot checkpoint {key}: object is not picklable ({exc})"
            ) from exc
        filename = f"{kind}-{_slug(name)}.pkl"
        path = os.path.join(self.root, filename)
        _atomic_write(path, blob)
        self._manifest["entries"][key] = {
            "kind": kind,
            "name": name,
            "file": filename,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "bytes": len(blob),
        }
        self._write_manifest()
        return path

    def has(self, kind: str, name: str) -> bool:
        entry = self._manifest["entries"].get(self._key(kind, name))
        if entry is None:
            return False
        return os.path.exists(os.path.join(self.root, entry["file"]))

    def load(self, kind: str, name: str) -> Any:
        """Load and integrity-check one entry (KeyError if absent)."""
        key = self._key(kind, name)
        entry = self._manifest["entries"].get(key)
        if entry is None:
            raise KeyError(key)
        path = os.path.join(self.root, entry["file"])
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint file for {key} vanished: {exc}"
            ) from exc
        digest = hashlib.sha256(blob).hexdigest()
        if digest != entry["sha256"]:
            raise CheckpointError(
                f"checkpoint {key} is corrupt: sha256 {digest} does not "
                f"match manifest {entry['sha256']} ({path})"
            )
        try:
            return pickle.loads(blob)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {key} cannot be unpickled: {exc}"
            ) from exc

    def delete(self, kind: str, name: str) -> None:
        key = self._key(kind, name)
        entry = self._manifest["entries"].pop(key, None)
        if entry is None:
            return
        self._write_manifest()
        try:
            os.unlink(os.path.join(self.root, entry["file"]))
        except OSError:
            pass

    def names(self, kind: str) -> List[str]:
        """Names of all stored entries of one kind, insertion-ordered."""
        if kind not in KINDS:
            raise CheckpointError(
                f"unknown checkpoint kind {kind!r}; expected one of {KINDS}"
            )
        return [
            entry["name"]
            for entry in self._manifest["entries"].values()
            if entry["kind"] == kind
        ]

    def reset(self) -> None:
        """Drop every entry and the job fingerprint (files included)."""
        for entry in list(self._manifest["entries"].values()):
            try:
                os.unlink(os.path.join(self.root, entry["file"]))
            except OSError:
                pass
        self._manifest = {"version": 1, "job": None, "entries": {}}
        self._write_manifest()
