"""Crash-safe checkpoint storage for supervised experiment runs.

A :class:`CheckpointStore` owns one directory and keeps three kinds of
entries, all pickled Python objects:

* ``unit`` — the finished result of one experiment unit (e.g. one
  (scheme, attack-rate) cell of a figure sweep).  A resumed job skips
  every unit already stored.
* ``state`` — a mid-run simulator snapshot (a pickled
  :class:`~repro.runner.resumable.EngineRun`/``FluidRun``), written
  periodically so a kill mid-unit loses at most one checkpoint interval.
* ``salvage`` — partial results rescued from a failed or interrupted
  job, clearly segregated from trustworthy ``unit`` entries.
* ``telemetry`` — the run's telemetry object (metrics registry and, when
  tracing, the event log), saved alongside each unit so a resumed run
  continues its exported series instead of restarting them.  The tick
  profiler deliberately pickles to an empty state: wall-clock data never
  survives a checkpoint.

Crash safety is torn-write-proof by construction: every file is written
to a temporary name in the same directory, fsynced, then atomically
``os.replace``d into place, and only *then* recorded (again atomically)
in ``MANIFEST.json`` together with its SHA-256.  A crash at any point
leaves either the old manifest (the new file is ignored as unmanifested
garbage) or the new one (the file is complete and verified on load).  A
manifested file whose digest no longer matches raises
:class:`~repro.errors.CheckpointError` — silent corruption never flows
into results.

The store is also safe for *concurrent writers* (the
:mod:`repro.fleet` workers all share one checkpoint directory):

* entry payloads are content-addressed — the filename embeds a digest
  prefix, so two processes saving the same key never race on one path;
* every manifest mutation is a read-modify-write of the on-disk
  manifest under an ``O_EXCL`` lockfile, so entries recorded by other
  processes are preserved rather than clobbered by a stale in-memory
  copy;
* readers re-read the manifest from disk when a key is locally unknown,
  so a supervisor sees the units its workers have completed.

A writer SIGKILLed at any instant therefore leaves the directory in one
of two states: the entry fully recorded, or absent with at most an
orphaned payload file and a lockfile that later writers break once it
goes stale.  Either way the manifest parses and every manifested entry
verifies.

The manifest also carries a *job fingerprint* (figure name + settings):
resuming with different settings than the checkpoints were produced
under would silently mix incompatible results, so :meth:`check_job`
fails loudly instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import shutil
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional

from ..errors import CheckpointError

KINDS = ("unit", "state", "salvage", "telemetry")

_MANIFEST = "MANIFEST.json"
_LOCKFILE = "MANIFEST.lock"


def _slug(name: str) -> str:
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") or "unit"
    digest = hashlib.sha256(name.encode()).hexdigest()[:8]
    return f"{safe[:80]}-{digest}"


def _atomic_write(path: str, data: bytes) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class _ManifestLock:
    """``O_EXCL`` lockfile serialising manifest read-modify-write cycles.

    The critical section it guards is milliseconds long (parse + dump one
    JSON file), so contention resolves by short polling.  A lock whose
    file has not changed for ``stale_seconds`` belongs to a crashed
    process — a live writer re-creates the manifest far faster — and is
    broken so one SIGKILLed worker cannot wedge the whole fleet.
    """

    def __init__(
        self,
        path: str,
        timeout_seconds: float = 30.0,
        stale_seconds: float = 10.0,
        poll_seconds: float = 0.005,
    ) -> None:
        self.path = path
        self.timeout_seconds = timeout_seconds
        self.stale_seconds = stale_seconds
        self.poll_seconds = poll_seconds

    def __enter__(self) -> "_ManifestLock":
        deadline = time.monotonic() + self.timeout_seconds
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._break_if_stale()
                if time.monotonic() >= deadline:
                    raise CheckpointError(
                        f"could not acquire checkpoint lock {self.path} "
                        f"within {self.timeout_seconds:.0f}s; a concurrent "
                        f"writer is wedged or the directory is shared too "
                        f"widely"
                    )
                time.sleep(self.poll_seconds)
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(str(os.getpid()))
            return self

    def __exit__(self, *exc_info: Any) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def _break_if_stale(self) -> None:
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return  # holder released it between our open and stat
        if age > self.stale_seconds:
            try:
                os.unlink(self.path)
            except OSError:
                pass


class CheckpointStore:
    """Atomic, manifest-verified pickle storage rooted at one directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._manifest: Dict[str, Any] = {"version": 1, "job": None, "entries": {}}
        self._read_manifest()

    # -- manifest handling ----------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST)

    def _lock(self) -> _ManifestLock:
        return _ManifestLock(os.path.join(self.root, _LOCKFILE))

    def _read_manifest(self) -> None:
        path = self._manifest_path()
        if not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {path}: {exc}"
            ) from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise CheckpointError(
                f"malformed checkpoint manifest {path}: no entries table"
            )
        self._manifest = data

    def _write_manifest(self) -> None:
        blob = json.dumps(self._manifest, indent=2, sort_keys=True)
        _atomic_write(self._manifest_path(), blob.encode())

    def _mutate_manifest(
        self, mutate: Callable[[Dict[str, Any]], None]
    ) -> None:
        """Apply one mutation to the *on-disk* manifest, atomically.

        Under the lock the manifest is re-read, so entries recorded by
        concurrent processes since our last read survive the write —
        without this, two workers sharing a store would interleave stale
        in-memory copies and silently drop each other's entries.
        """
        with self._lock():
            self._read_manifest()
            mutate(self._manifest)
            self._write_manifest()

    def refresh(self) -> None:
        """Re-read the manifest to pick up other processes' entries."""
        self._read_manifest()

    # -- job fingerprint -------------------------------------------------
    def set_job(self, fingerprint: Dict[str, Any]) -> None:
        """Record what job these checkpoints belong to."""

        def mutate(manifest: Dict[str, Any]) -> None:
            manifest["job"] = fingerprint

        self._mutate_manifest(mutate)

    @property
    def job(self) -> Optional[Dict[str, Any]]:
        return self._manifest.get("job")

    def check_job(self, fingerprint: Dict[str, Any]) -> None:
        """Refuse to resume under a different job configuration."""
        self.refresh()
        stored = self.job
        if stored is None:
            self.set_job(fingerprint)
            return
        if stored != fingerprint:
            raise CheckpointError(
                f"checkpoint dir {self.root} belongs to a different job: "
                f"stored {stored!r}, requested {fingerprint!r}; use a fresh "
                f"--checkpoint-dir or drop --resume to start over"
            )

    # -- entries ---------------------------------------------------------
    def _key(self, kind: str, name: str) -> str:
        if kind not in KINDS:
            raise CheckpointError(
                f"unknown checkpoint kind {kind!r}; expected one of {KINDS}"
            )
        return f"{kind}/{name}"

    def save(self, kind: str, name: str, obj: Any) -> str:
        """Atomically pickle ``obj``; returns the file path.

        The filename embeds a digest prefix of the payload, so two
        processes saving the same key concurrently write *different*
        files and the lock-ordered manifest update picks the winner —
        the loser's payload is an unmanifested orphan, never a manifest
        entry whose digest mismatches its file.  The previous payload
        file for the key is unlinked once the manifest points away from
        it.
        """
        key = self._key(kind, name)
        try:
            blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"cannot checkpoint {key}: object is not picklable ({exc})"
            ) from exc
        sha256 = hashlib.sha256(blob).hexdigest()
        filename = f"{kind}-{_slug(name)}-{sha256[:8]}.pkl"
        path = os.path.join(self.root, filename)
        _atomic_write(path, blob)
        previous: List[str] = []

        def mutate(manifest: Dict[str, Any]) -> None:
            old = manifest["entries"].get(key)
            if old is not None and old["file"] != filename:
                previous.append(old["file"])
            manifest["entries"][key] = {
                "kind": kind,
                "name": name,
                "file": filename,
                "sha256": sha256,
                "bytes": len(blob),
            }

        self._mutate_manifest(mutate)
        for stale in previous:
            try:
                os.unlink(os.path.join(self.root, stale))
            except OSError:
                pass
        return path

    def _entry(self, kind: str, name: str) -> Optional[Dict[str, Any]]:
        """The manifest entry for a key, re-reading the manifest once if
        it is locally unknown (a concurrent process may have written it)."""
        key = self._key(kind, name)
        entry = self._manifest["entries"].get(key)
        if entry is None:
            self.refresh()
            entry = self._manifest["entries"].get(key)
        return entry

    def has(self, kind: str, name: str) -> bool:
        entry = self._entry(kind, name)
        if entry is None:
            return False
        return os.path.exists(os.path.join(self.root, entry["file"]))

    def load(self, kind: str, name: str) -> Any:
        """Load and integrity-check one entry (KeyError if absent)."""
        key = self._key(kind, name)
        entry = self._entry(kind, name)
        if entry is None:
            raise KeyError(key)
        path = os.path.join(self.root, entry["file"])
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint file for {key} vanished: {exc}"
            ) from exc
        digest = hashlib.sha256(blob).hexdigest()
        if digest != entry["sha256"]:
            raise CheckpointError(
                f"checkpoint {key} is corrupt: sha256 {digest} does not "
                f"match manifest {entry['sha256']} ({path})"
            )
        try:
            return pickle.loads(blob)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {key} cannot be unpickled: {exc}"
            ) from exc

    def delete(self, kind: str, name: str) -> None:
        key = self._key(kind, name)
        removed: List[str] = []

        def mutate(manifest: Dict[str, Any]) -> None:
            entry = manifest["entries"].pop(key, None)
            if entry is not None:
                removed.append(entry["file"])

        self._mutate_manifest(mutate)
        for filename in removed:
            try:
                os.unlink(os.path.join(self.root, filename))
            except OSError:
                pass

    def names(self, kind: str) -> List[str]:
        """Names of all stored entries of one kind, insertion-ordered."""
        if kind not in KINDS:
            raise CheckpointError(
                f"unknown checkpoint kind {kind!r}; expected one of {KINDS}"
            )
        self.refresh()
        return [
            entry["name"]
            for entry in self._manifest["entries"].values()
            if entry["kind"] == kind
        ]

    def reset(self) -> None:
        """Drop every entry and the job fingerprint (files included)."""
        doomed: List[str] = []

        def mutate(manifest: Dict[str, Any]) -> None:
            doomed.extend(
                entry["file"] for entry in manifest["entries"].values()
            )
            manifest["version"] = 1
            manifest["job"] = None
            manifest["entries"] = {}

        self._mutate_manifest(mutate)
        for filename in doomed:
            try:
                os.unlink(os.path.join(self.root, filename))
            except OSError:
                pass
        shutil.rmtree(os.path.join(self.root, "exchange"), ignore_errors=True)

    def exchange_dir(self, namespace: str) -> str:
        """Scratch directory for shard barrier-exchange traffic.

        Deliberately *outside* the manifest: exchange files churn once
        per tick per shard, far too fast to contend on the manifest
        lock, and they are transport, not state — a salvaged shard
        republishes identical bytes deterministically.  The directory
        is keyed by unit name so concurrent units never collide, and
        :meth:`reset` clears the whole exchange tree.
        """
        path = os.path.join(self.root, "exchange", _slug(namespace))
        os.makedirs(path, exist_ok=True)
        return path
