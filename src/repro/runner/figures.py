"""Figure jobs: unit decompositions for the supervised runner.

Every figure's sweep is decomposed into independent *units* — one cell
of the sweep each (a (scheme, attack-rate) pair, a (variant, strategy)
pair, ...).  Each unit builds its scenario fresh and is deterministic
given the settings' seed, so:

* a killed job resumes by skipping checkpointed units and re-running
  only the incomplete ones, with bit-identical results;
* a failed unit (router bug, invariant violation) costs only its own
  cell — ``finalize`` assembles whatever completed into the figure's
  table and lists the missing cells in ``notes`` rather than discarding
  the run.

Internet-scale units additionally checkpoint *within* the unit at tick
granularity (see :func:`~repro.runner.resumable.run_checkpointed`) —
their single long fluid run is the most expensive thing the suite does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..experiments.common import FunctionalSettings, mean
from .supervisor import UnitContext

UnitFn = Callable[[UnitContext], Any]


@dataclass
class FigureOutput:
    """A finalized figure table plus free-form annotation lines."""

    headers: List[str]
    rows: List[Sequence]
    notes: List[str] = field(default_factory=list)


@dataclass
class FigureJob:
    """A named, unit-decomposed figure experiment."""

    figure: str
    units: List[Tuple[str, UnitFn]]
    finalize: Callable[[Dict[str, Any]], FigureOutput]
    fingerprint: Dict[str, Any] = field(default_factory=dict)


def _finish_fluid_run(run: Any) -> Any:
    """Finalizer for checkpointed internet-scale units.

    Module-level (not a lambda) so the checkpointed state that references
    it stays picklable.
    """
    return run.sim.finish_run()


def _missing(results: Dict[str, Any], names: Sequence[str]) -> List[str]:
    gone = [name for name in names if name not in results]
    if not gone:
        return []
    return [f"missing unit (failed or not run): {name}" for name in gone]


# ----------------------------------------------------------------------
# functional figures
# ----------------------------------------------------------------------
def _fig02_job(settings: FunctionalSettings) -> FigureJob:
    def unit(ctx: UnitContext):
        from ..experiments.fig02 import run_fig02

        return run_fig02(settings)

    def finalize(results: Dict[str, Any]) -> FigureOutput:
        notes = _missing(results, ["fig02"])
        rows: List[Sequence] = []
        result = results.get("fig02")
        if result is not None:
            rows = list(result.rows)
            notes.append(
                f"service/drop ratio: {result.service_to_drop_ratio:.1f}"
            )
        return FigureOutput(
            ["second", "service pkt/s", "drop pkt/s"], rows, notes
        )

    return FigureJob("fig02", [("fig02", unit)], finalize)


def _fig03_job(settings: FunctionalSettings) -> FigureJob:
    def unit(ctx: UnitContext):
        from ..experiments.fig03 import run_fig03

        return run_fig03(seed=settings.seed)

    def finalize(results: Dict[str, Any]) -> FigureOutput:
        notes = _missing(results, ["fig03"])
        result = results.get("fig03")
        rows = sorted(result.mode_fractions.items()) if result else []
        return FigureOutput(["size (B)", "fraction"], rows, notes)

    return FigureJob("fig03", [("fig03", unit)], finalize)


def _fig04_job(settings: FunctionalSettings) -> FigureJob:
    def unit(ctx: UnitContext):
        from ..experiments.fig04 import run_fig04

        return run_fig04(seed=settings.seed)

    def finalize(results: Dict[str, Any]) -> FigureOutput:
        notes = _missing(results, ["fig04"])
        rows: List[Sequence] = []
        result = results.get("fig04")
        if result is not None:
            rows = [
                ["unsynchronized", result.utilization_unsync],
                ["synchronized", result.utilization_sync],
                ["partial", result.utilization_partial],
            ]
        return FigureOutput(["case", "token utilization"], rows, notes)

    return FigureJob("fig04", [("fig04", unit)], finalize)


def _fig06_job(settings: FunctionalSettings) -> FigureJob:
    kinds = ("tcp", "cbr", "shrew")

    def make_unit(kind: str) -> UnitFn:
        def unit(ctx: UnitContext, kind=kind):
            from ..experiments.fig06 import run_fig06

            return run_fig06(kind, settings)

        return unit

    names = [f"fig06:{kind}" for kind in kinds]

    def finalize(results: Dict[str, Any]) -> FigureOutput:
        rows = []
        for kind, name in zip(kinds, names):
            result = results.get(name)
            if result is None:
                continue
            rows.append(
                [
                    kind,
                    result.fair_path_mbps,
                    mean(result.legit_path_means),
                    mean(result.attack_path_means),
                ]
            )
        return FigureOutput(
            ["attack", "fair Mbps/path", "legit-path mean", "attack-path mean"],
            rows,
            _missing(results, names),
        )

    return FigureJob(
        "fig06",
        [(name, make_unit(kind)) for kind, name in zip(kinds, names)],
        finalize,
    )


def _fig07_job(settings: FunctionalSettings) -> FigureJob:
    schemes = ("floc", "pushback", "redpd")
    rates = (0.5, 1.0, 2.0, 4.0)
    units: List[Tuple[str, UnitFn]] = []
    for scheme in schemes:
        for rate in rates:

            def unit(ctx: UnitContext, scheme=scheme, rate=rate):
                from ..experiments.fig07 import run_fig07

                return run_fig07(
                    settings,
                    schemes=(scheme,),
                    attack_rates_mbps=(rate,),
                    include_red_reference=False,
                )

            units.append((f"fig07:{scheme}@{rate}", unit))

    def ref_unit(ctx: UnitContext):
        from ..experiments.fig07 import run_fig07

        return run_fig07(
            settings, schemes=(), attack_rates_mbps=(),
            include_red_reference=True,
        )

    units.append(("fig07:red-reference", ref_unit))
    names = [name for name, _ in units]

    def finalize(results: Dict[str, Any]) -> FigureOutput:
        from ..experiments.fig07 import Fig07Result

        merged = Fig07Result(ideal_flow_mbps=0.0)
        for name in names:
            part = results.get(name)
            if part is None:
                continue
            merged.samples.update(part.samples)
            merged.ideal_flow_mbps = max(
                merged.ideal_flow_mbps, part.ideal_flow_mbps
            )
        notes = _missing(results, names)
        if merged.ideal_flow_mbps:
            notes.append(
                f"ideal fair per-flow: {merged.ideal_flow_mbps:.3f} Mbps"
            )
        return FigureOutput(
            ["scheme", "bot Mbps", "mean", "p10", "p50", "p90"],
            merged.summary_rows(),
            notes,
        )

    return FigureJob("fig07", units, finalize)


def _fig08_job(settings: FunctionalSettings) -> FigureJob:
    schemes = ("floc", "pushback", "redpd")
    rates = (0.2, 0.4, 0.8, 1.6, 3.2, 4.0)
    s_max = 25
    units: List[Tuple[str, UnitFn]] = []
    for scheme in schemes:
        for rate in rates:

            def unit(ctx: UnitContext, scheme=scheme, rate=rate):
                from ..experiments.fig08 import run_fig08

                return run_fig08(
                    settings,
                    schemes=(scheme,),
                    attack_rates_mbps=(rate,),
                    s_max=s_max,
                )

            units.append((f"fig08:{scheme}@{rate}", unit))
    names = [name for name, _ in units]

    def finalize(results: Dict[str, Any]) -> FigureOutput:
        from ..experiments.fig08 import Fig08Result

        merged = Fig08Result(s_max=s_max)
        for name in names:
            part = results.get(name)
            if part is not None:
                merged.breakdowns.update(part.breakdowns)
        return FigureOutput(
            ["scheme", "bot Mbps", "legit-legit", "legit-attack", "attack",
             "util"],
            merged.rows(),
            _missing(results, names),
        )

    return FigureJob("fig08", units, finalize)


def _fig09_job(settings: FunctionalSettings) -> FigureJob:
    def unit(ctx: UnitContext):
        from ..experiments.fig09 import run_fig09

        return run_fig09(settings)

    def finalize(results: Dict[str, Any]) -> FigureOutput:
        notes = _missing(results, ["fig09"])
        rows: List[Sequence] = []
        result = results.get("fig09")
        if result is not None:
            rows = [
                ["without aggregation",
                 mean(result.without_agg.small_domain_rates),
                 mean(result.without_agg.big_domain_rates),
                 result.without_agg.small_big_ratio],
                ["with aggregation",
                 mean(result.with_agg.small_domain_rates),
                 mean(result.with_agg.big_domain_rates),
                 result.with_agg.small_big_ratio],
            ]
        return FigureOutput(
            ["variant", "small-domain Mbps", "big-domain Mbps", "ratio"],
            rows,
            notes,
        )

    return FigureJob("fig09", [("fig09", unit)], finalize)


def _fig10_job(settings: FunctionalSettings) -> FigureJob:
    schemes = ("floc", "pushback", "redpd")
    fanouts = (1, 2, 5, 10, 20)
    units: List[Tuple[str, UnitFn]] = []
    for scheme in schemes:
        for fanout in fanouts:

            def unit(ctx: UnitContext, scheme=scheme, fanout=fanout):
                from ..experiments.fig10 import run_fig10

                return run_fig10(settings, schemes=(scheme,), fanouts=(fanout,))

            units.append((f"fig10:{scheme}@x{fanout}", unit))
    names = [name for name, _ in units]

    def finalize(results: Dict[str, Any]) -> FigureOutput:
        from ..experiments.fig10 import Fig10Result

        merged: Optional[Fig10Result] = None
        for name in names:
            part = results.get(name)
            if part is None:
                continue
            if merged is None:
                merged = Fig10Result(
                    n_max=part.n_max,
                    per_flow_rate_mbps=part.per_flow_rate_mbps,
                )
            merged.breakdowns.update(part.breakdowns)
        rows = merged.rows() if merged is not None else []
        return FigureOutput(
            ["scheme", "fanout", "legit total", "attack", "util"],
            rows,
            _missing(results, names),
        )

    return FigureJob("fig10", units, finalize)


def _fig11_job(settings: FunctionalSettings, variants: Tuple[str, ...]) -> FigureJob:
    placements = ("localized", "dispersed")
    units: List[Tuple[str, UnitFn]] = []
    for placement in placements:

        def unit(ctx: UnitContext, placement=placement):
            from ..experiments.fig11 import run_fig11

            return run_fig11(placement, variants=variants)

        units.append((f"fig11:{placement}", unit))
    names = [name for name, _ in units]

    def finalize(results: Dict[str, Any]) -> FigureOutput:
        rows = []
        for placement, name in zip(placements, names):
            stats = results.get(name)
            if stats is None:
                continue
            for s in stats:
                rows.append(
                    [placement, s.variant, s.n_as, s.n_attack_ases,
                     s.red_links, round(s.bot_concentration_top_10pct, 3)]
                )
        return FigureOutput(
            ["placement", "variant", "ASes", "attack ASes", "red links",
             "bot concentration"],
            rows,
            _missing(results, names),
        )

    return FigureJob("fig11", units, finalize)


# ----------------------------------------------------------------------
# internet-scale figures (tick-level checkpointing inside each unit)
# ----------------------------------------------------------------------
def _internet_job(
    figure: str, placement: str, variants: Tuple[str, ...]
) -> FigureJob:
    from ..experiments.fig13 import InternetRunSettings

    iset = InternetRunSettings()
    units: List[Tuple[str, UnitFn]] = []
    for variant in variants:
        for label, strategy, s_max in iset.strategies:

            def unit(
                ctx: UnitContext,
                variant=variant,
                label=label,
                strategy=strategy,
                s_max=s_max,
            ):
                from ..inet.scenarios import build_internet_scenario
                from ..inet.simulator import FluidSimulator
                from ..sanitize import install_sanitizer
                from .resumable import FluidRun

                def build() -> FluidRun:
                    scenario = build_internet_scenario(
                        variant=variant,
                        placement=placement,
                        n_as=iset.n_as,
                        n_legit_sources=iset.n_legit_sources,
                        n_legit_ases=iset.n_legit_ases,
                        n_bots=iset.n_bots,
                        target_capacity=iset.target_capacity,
                        seed=iset.seed,
                    )
                    sim = FluidSimulator(
                        scenario, strategy=strategy, s_max=s_max,
                        seed=iset.seed,
                    )
                    install_sanitizer(sim, ctx.sanitize)
                    return FluidRun(sim, ticks=iset.ticks, warmup=iset.warmup)

                return ctx.checkpointed(build, _finish_fluid_run)

            units.append((f"{figure}:{variant}:{label}", unit))
    names = [name for name, _ in units]
    keys = [
        (variant, label)
        for variant in variants
        for label, _, _ in iset.strategies
    ]

    def finalize(results: Dict[str, Any]) -> FigureOutput:
        rows = []
        for (variant, label), name in sorted(zip(keys, names)):
            r = results.get(name)
            if r is None:
                continue
            rows.append(
                (
                    variant,
                    label,
                    r.shares["legit_in_legit"],
                    r.shares["legit_in_attack"],
                    r.shares["attack"],
                    r.utilization,
                )
            )
        return FigureOutput(
            ["variant", "strategy", "legit-legit", "legit-attack", "attack",
             "util"],
            rows,
            _missing(results, names),
        )

    return FigureJob(figure, units, finalize)


# ----------------------------------------------------------------------
# faults study
# ----------------------------------------------------------------------
def _faults_job(settings: FunctionalSettings) -> FigureJob:
    from ..experiments.robustness_faults import FLUID_STRATEGIES, PACKET_SCHEMES

    units: List[Tuple[str, UnitFn]] = []
    for scheme in PACKET_SCHEMES:

        def unit(ctx: UnitContext, scheme=scheme):
            from ..experiments.robustness_faults import run_packet_faults

            return run_packet_faults(settings, (scheme,))[0]

        units.append((f"faults:packet:{scheme}", unit))
    for strategy in FLUID_STRATEGIES:

        def unit(ctx: UnitContext, strategy=strategy):
            from ..experiments.robustness_faults import run_fluid_faults

            return run_fluid_faults(settings, (strategy,))[0]

        units.append((f"faults:fluid:{strategy}", unit))
    names = [name for name, _ in units]

    def finalize(results: Dict[str, Any]) -> FigureOutput:
        rows = []
        for name in names:
            entry = results.get(name)
            if entry is None:
                continue
            rows.append(
                [
                    entry.simulator,
                    entry.scheme,
                    round(entry.pre, 4),
                    round(entry.during, 4),
                    round(entry.post, 4),
                    round(entry.recovery_ratio, 3),
                ]
            )
        return FigureOutput(
            ["simulator", "scheme", "pre", "during", "post", "recovery"],
            rows,
            _missing(results, names),
        )

    return FigureJob("faults", units, finalize)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def build_figure_job(
    figure: str,
    settings: FunctionalSettings,
    variants: Tuple[str, ...] = ("f-root",),
) -> FigureJob:
    """Build the unit-decomposed job for one figure.

    ``settings.sanitize`` propagates into every unit (functional figures
    install the sanitizer via their experiment entry points; internet
    figures install it per simulator).
    """
    builders: Dict[str, Callable[[], FigureJob]] = {
        "fig02": lambda: _fig02_job(settings),
        "fig03": lambda: _fig03_job(settings),
        "fig04": lambda: _fig04_job(settings),
        "fig06": lambda: _fig06_job(settings),
        "fig07": lambda: _fig07_job(settings),
        "fig08": lambda: _fig08_job(settings),
        "fig09": lambda: _fig09_job(settings),
        "fig10": lambda: _fig10_job(settings),
        "fig11": lambda: _fig11_job(settings, variants),
        "fig13": lambda: _internet_job("fig13", "localized", variants),
        "fig14": lambda: _internet_job("fig14", "dispersed", variants),
        "fig15": lambda: _internet_job("fig15", "separated", variants),
        "faults": lambda: _faults_job(settings),
    }
    try:
        job = builders[figure]()
    except KeyError:
        raise ConfigError(
            f"unknown figure {figure!r}; choose one of {sorted(builders)}"
        ) from None
    # the fingerprint excludes `sanitize`: invariant checking observes a
    # run without changing its numbers, so checkpoints stay compatible
    job.fingerprint = {
        "figure": figure,
        "scale": settings.scale,
        "warmup_seconds": settings.warmup_seconds,
        "measure_seconds": settings.measure_seconds,
        "seed": settings.seed,
        "s_max": settings.s_max,
        "variants": list(variants),
    }
    return job
