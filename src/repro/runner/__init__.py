"""Crash-safe supervised experiment runner.

Layers (bottom-up):

* :mod:`~repro.runner.checkpoint` — atomic, manifest-verified pickle
  storage (:class:`CheckpointStore`).
* :mod:`~repro.runner.resumable` — tick-level resumable simulation runs
  (:class:`EngineRun`, :class:`FluidRun`, :func:`run_checkpointed`).
* :mod:`~repro.runner.supervisor` — watchdogs, retries, graceful
  shutdown and the per-unit loop (:class:`SupervisedRunner`).
* :mod:`~repro.runner.figures` — the registry decomposing every figure
  into supervised units (:func:`build_figure_job`).
"""

from .checkpoint import KINDS, CheckpointStore
from .figures import FigureJob, FigureOutput, build_figure_job
from .resumable import EngineRun, FluidRun, run_checkpointed
from .supervisor import (
    JOB_STATUSES,
    NON_RETRYABLE,
    GracefulShutdown,
    JobReport,
    RetryPolicy,
    SupervisedRunner,
    UnitContext,
    UnitOutcome,
    Watchdog,
)

__all__ = [
    "KINDS",
    "CheckpointStore",
    "FigureJob",
    "FigureOutput",
    "build_figure_job",
    "EngineRun",
    "FluidRun",
    "run_checkpointed",
    "JOB_STATUSES",
    "NON_RETRYABLE",
    "GracefulShutdown",
    "JobReport",
    "RetryPolicy",
    "SupervisedRunner",
    "UnitContext",
    "UnitOutcome",
    "Watchdog",
]
