"""Tick-level resumable simulation runs.

Both simulators are picklable whole — engines carry their RNGs, queues
and policy state; fluid simulators keep all run accumulators on ``self``
(see ``FluidSimulator.begin_run``) — so a mid-run checkpoint is simply
the pickled wrapper object.  :func:`run_checkpointed` advances a run in
``checkpoint_interval``-tick segments, snapshotting between segments and
polling the watchdog/shutdown flags only at segment boundaries, so a
kill at any instant loses at most one segment and a resumed run replays
it from identical state — results are bit-identical to an uninterrupted
run because all randomness lives in the pickled RNGs.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import Interrupted
from ..telemetry import current
from ..trace import current_tracer
from .checkpoint import CheckpointStore
from .supervisor import GracefulShutdown, Watchdog


def _readopt_telemetry(run: Any) -> None:
    """Re-join a restored run's pickled telemetry with the session's.

    A ``state`` snapshot pickles the simulator together with the
    telemetry it was recording into.  When the resuming session has an
    active telemetry (``current().enabled``), adopt the restored
    registry/trace — so series and counters recorded before the kill
    continue seamlessly — and point the simulator back at the session
    object so both observe one stream.  With session telemetry off, the
    restored run keeps its pickled recorder untouched.
    """
    session = current()
    if not session.enabled:
        return
    for attr in ("engine", "sim"):
        target = getattr(run, attr, None)
        if target is None:
            continue
        restored = getattr(target, "telemetry", None)
        if restored is not None and restored.enabled:
            session.adopt_state(restored)
        if restored is not None:
            target.telemetry = session


class EngineRun:
    """Picklable resumable wrapper around a packet-engine simulation.

    ``payload`` is whatever the finalizer needs alongside the engine
    (typically the :class:`~repro.traffic.scenarios.TreeScenario`, which
    transitively contains the engine); ``engine`` is the
    :class:`~repro.net.engine.Engine` to advance.
    """

    def __init__(self, payload: Any, engine, total_ticks: int) -> None:
        self.payload = payload
        self.engine = engine
        self.total_ticks = total_ticks

    @property
    def ticks_done(self) -> int:
        return self.engine.tick

    @property
    def done(self) -> bool:
        return self.engine.tick >= self.total_ticks

    def advance(self, max_ticks: int) -> int:
        """Run up to ``max_ticks`` more ticks; returns how many ran."""
        n = min(max_ticks, self.total_ticks - self.engine.tick)
        if n > 0:
            self.engine.run(n)
        return max(0, n)


class FluidRun:
    """Picklable resumable wrapper around a fluid-simulator run.

    Calls ``sim.begin_run`` immediately; the simulator's own stepwise
    state (``_run_tick``, accumulators, series) rides along in the
    pickle.
    """

    def __init__(
        self,
        sim,
        ticks: int,
        warmup: int,
        record_series: bool = False,
        payload: Any = None,
    ) -> None:
        self.sim = sim
        self.payload = payload
        sim.begin_run(ticks, warmup, record_series)

    @property
    def ticks_done(self) -> int:
        return self.sim._run_tick

    @property
    def done(self) -> bool:
        return self.sim._run_tick >= self.sim._run_ticks

    def advance(self, max_ticks: int) -> int:
        ran = 0
        while ran < max_ticks and not self.done:
            self.sim.step_run()
            ran += 1
        return ran


def run_checkpointed(
    store: Optional[CheckpointStore],
    name: str,
    build: Callable[[], Any],
    finalize: Callable[[Any], Any],
    checkpoint_interval: int = 200,
    shutdown: Optional[GracefulShutdown] = None,
    watchdog: Optional[Watchdog] = None,
    prepare: Optional[Callable[[Any], None]] = None,
    trace_parent: Optional[str] = None,
) -> Any:
    """Run (or resume) one tick-level simulation to completion.

    ``build()`` constructs a fresh :class:`EngineRun`/:class:`FluidRun`;
    if the store holds a ``state`` snapshot under ``name`` it is loaded
    instead and the build is skipped entirely.  ``prepare(run)``, when
    given, runs after either path — its job is re-attaching live objects
    that deliberately do not ride through pickle (e.g. a shard
    simulator's barrier exchange with its watchdog poll hook).  Between
    segments the current state is snapshotted; on a shutdown request the
    final snapshot is written and :class:`~repro.errors.Interrupted`
    raised.  On completion the state entry is deleted (the caller
    checkpoints the finalized result at unit granularity) and
    ``finalize(run)`` returned.
    """
    if checkpoint_interval < 1:
        raise ValueError(
            f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
        )
    tracer = current_tracer()
    run = None
    if store is not None and store.has("state", name):
        with tracer.span(
            "salvage.load", cat="salvage", parent=trace_parent, unit=name
        ) as span:
            run = store.load("state", name)
            _readopt_telemetry(run)
            span.end(ticks_done=run.ticks_done)
    if run is None:
        with tracer.span("build", cat="run", parent=trace_parent, unit=name):
            run = build()
    if prepare is not None:
        prepare(run)
    segment = 0
    while not run.done:
        if watchdog is not None:
            watchdog.check()
        if shutdown is not None and shutdown.requested:
            if store is not None:
                with tracer.span(
                    "checkpoint.save", cat="checkpoint",
                    parent=trace_parent, unit=name, reason="shutdown",
                ):
                    store.save("state", name, run)
            shutdown.raise_if_requested(context=name)
        with tracer.span(
            "ticks", cat="run", parent=trace_parent, unit=name,
            segment=segment,
        ) as span:
            run.advance(checkpoint_interval)
            span.end(ticks_done=run.ticks_done)
        segment += 1
        if store is not None and not run.done:
            with tracer.span(
                "checkpoint.save", cat="checkpoint",
                parent=trace_parent, unit=name,
            ):
                store.save("state", name, run)
    with tracer.span("finalize", cat="run", parent=trace_parent, unit=name):
        result = finalize(run)
    if store is not None:
        store.delete("state", name)
    return result
