"""Job supervision: watchdogs, retries, graceful shutdown, unit loop.

The :class:`SupervisedRunner` drives a list of named *units* (independent
callables, typically the cells of a figure sweep) under a shared
discipline:

* units whose results are already checkpointed are skipped on resume;
* each unit gets a bounded number of retries with seed-derived jittered
  backoff (deterministic errors — bad config, invariant violations — are
  never retried: re-running cannot fix them);
* a cooperative watchdog enforces a wall-clock deadline, checked between
  units and inside resumable tick loops, so cancellation is clean (no
  half-written checkpoints);
* SIGTERM/SIGINT request a graceful stop: the current unit checkpoints
  its mid-run state, completed results stay in the store, and the job
  reports ``interrupted`` so a later ``--resume`` continues bit-identically;
* whatever completed when a job dies is salvaged: the per-unit outcome
  table records exactly which results are trustworthy.
"""

from __future__ import annotations

import hashlib
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    ConfigError,
    DeadlineExceeded,
    Interrupted,
    InvariantViolation,
)
from ..telemetry import current
from ..trace import current_tracer, phase_delta
from .checkpoint import CheckpointStore

#: Errors retrying cannot fix: same inputs -> same failure.
NON_RETRYABLE = (ConfigError, InvariantViolation, DeadlineExceeded, Interrupted)

#: Job-level statuses, from best to worst.
JOB_STATUSES = ("ok", "partial", "failed", "deadline", "interrupted")


def _null_log(message: str) -> None:
    """Default no-op log sink.

    Module-level (not a lambda) so a runner instance holding it stays
    picklable for checkpoint/salvage paths.
    """


def _profiler_totals() -> Dict[str, float]:
    """Snapshot of the session profiler's per-subsystem totals.

    Used to synthesize per-phase child spans for a unit (the delta
    between two snapshots is the unit's own tick-phase time); empty when
    profiling is off, which turns the synthesis into a no-op.
    """
    profiler = current().profiler
    if profiler is None:
        return {}
    return dict(profiler.totals_seconds)


class Watchdog:
    """Cooperative wall-clock deadline.

    ``check()`` raises :class:`~repro.errors.DeadlineExceeded` once
    ``deadline_seconds`` have elapsed since construction.  Cooperative by
    design: the supervised code polls at safe points (between units,
    between checkpoint segments), so cancellation never interrupts a
    checkpoint write halfway.
    """

    def __init__(
        self,
        deadline_seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_seconds <= 0:
            raise ConfigError(
                f"deadline must be positive, got {deadline_seconds}"
            )
        self.deadline_seconds = deadline_seconds
        self._clock = clock
        self._started = clock()

    def elapsed(self) -> float:
        return self._clock() - self._started

    def remaining(self) -> float:
        return self.deadline_seconds - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self) -> None:
        if self.expired:
            raise DeadlineExceeded(
                f"job exceeded its {self.deadline_seconds:.1f}s deadline "
                f"(elapsed {self.elapsed():.1f}s)"
            )


class RetryPolicy:
    """Bounded retries with deterministic seed-derived jittered backoff.

    The backoff for (unit, attempt) is ``base * 2**attempt`` scaled by a
    jitter factor in [0.5, 1.5) derived from sha256(seed, unit, attempt) —
    reproducible across runs (no wall-clock randomness), yet decorrelated
    across units so a fleet of retrying jobs does not thundering-herd.
    """

    def __init__(
        self,
        max_retries: int = 2,
        base_delay: float = 0.5,
        max_delay: float = 30.0,
        seed: int = 0,
    ) -> None:
        if max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.max_retries = max_retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.seed = seed

    def retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, Exception) and not isinstance(
            exc, NON_RETRYABLE
        )

    def backoff(self, unit: str, attempt: int) -> float:
        """Delay in seconds before retry number ``attempt`` (1-based)."""
        digest = hashlib.sha256(
            f"{self.seed}:{unit}:{attempt}".encode()
        ).digest()
        jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2**64
        return min(self.max_delay, self.base_delay * 2 ** (attempt - 1)) * jitter


class GracefulShutdown:
    """SIGTERM/SIGINT -> a cooperative stop flag.

    Used as a context manager around a supervised job.  The first signal
    sets :attr:`requested`; supervised loops poll it at checkpoint-safe
    points and raise :class:`~repro.errors.Interrupted` after saving
    state.  Previous handlers are restored on exit.
    """

    def __init__(self, signals: Sequence[int] = (signal.SIGTERM, signal.SIGINT)) -> None:
        self.signals = tuple(signals)
        self.requested = False
        self.signum: Optional[int] = None
        self._previous: Dict[int, Any] = {}

    def _handler(self, signum, frame) -> None:
        self.requested = True
        self.signum = signum

    def __enter__(self) -> "GracefulShutdown":
        for signum in self.signals:
            try:
                self._previous[signum] = signal.signal(signum, self._handler)
            except ValueError:
                # not the main thread: fall back to never-signalled
                pass
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)
        self._previous.clear()

    def raise_if_requested(self, context: str = "") -> None:
        if self.requested:
            where = f" during {context}" if context else ""
            raise Interrupted(
                f"shutdown signal {self.signum} received{where}; progress "
                f"checkpointed"
            )


@dataclass
class UnitContext:
    """Everything a unit callable may use from its supervisor."""

    name: str
    store: Optional[CheckpointStore] = None
    shutdown: Optional[GracefulShutdown] = None
    watchdog: Optional[Watchdog] = None
    sanitize: Optional[str] = None
    checkpoint_interval: int = 200
    #: span id of the supervisor's unit/task span, so spans opened deeper
    #: in the stack (checkpoint save, salvage, barrier epochs) parent
    #: under it on the merged timeline
    trace_parent: Optional[str] = None

    def checkpointed(self, build, finalize):
        """Run a tick-level resumable simulation for this unit (see
        :func:`repro.runner.resumable.run_checkpointed`)."""
        from .resumable import run_checkpointed

        return run_checkpointed(
            self.store,
            self.name,
            build,
            finalize,
            checkpoint_interval=self.checkpoint_interval,
            shutdown=self.shutdown,
            watchdog=self.watchdog,
            trace_parent=self.trace_parent,
        )


@dataclass
class UnitOutcome:
    """What happened to one unit."""

    name: str
    status: str  # "done" | "resumed" | "failed"
    attempts: int = 0
    error: Optional[str] = None
    seconds: float = 0.0


@dataclass
class JobReport:
    """Outcome of one supervised job."""

    status: str  # one of JOB_STATUSES
    outcomes: List[UnitOutcome] = field(default_factory=list)
    results: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def completed(self) -> List[str]:
        return [o.name for o in self.outcomes if o.status in ("done", "resumed")]

    def failed(self) -> List[str]:
        return [o.name for o in self.outcomes if o.status == "failed"]

    def summary_rows(self) -> List[Tuple[str, str, int, str]]:
        return [
            (o.name, o.status, o.attempts, o.error or "")
            for o in self.outcomes
        ]


class SupervisedRunner:
    """Runs named units under checkpointing, retry, deadline and signal
    supervision."""

    def __init__(
        self,
        store: Optional[CheckpointStore] = None,
        deadline_seconds: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        sanitize: Optional[str] = None,
        checkpoint_interval: int = 200,
        sleep: Callable[[float], None] = time.sleep,
        log: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.store = store
        self.deadline_seconds = deadline_seconds
        self.retry = retry if retry is not None else RetryPolicy()
        self.sanitize = sanitize
        self.checkpoint_interval = checkpoint_interval
        self._sleep = sleep
        self._log = log if log is not None else _null_log
        self._clock = clock

    def run_units(
        self,
        units: Sequence[Tuple[str, Callable[[UnitContext], Any]]],
        job_fingerprint: Optional[Dict[str, Any]] = None,
    ) -> JobReport:
        """Run every unit; returns the :class:`JobReport`.

        Results of units already in the store are loaded, not re-run —
        that, plus per-unit determinism (fresh simulators seeded from the
        unit's settings), is what makes a killed job resumable with
        bit-identical output.
        """
        if self.store is not None and job_fingerprint is not None:
            self.store.check_job(job_fingerprint)
        # resume the telemetry stream: a killed job's registry (series,
        # counters) continues instead of restarting, so exported series
        # from a resumed job match an uninterrupted run
        telemetry = current()
        if (
            self.store is not None
            and telemetry.enabled
            and self.store.has("telemetry", "registry")
        ):
            telemetry.adopt_state(self.store.load("telemetry", "registry"))
        watchdog = (
            Watchdog(self.deadline_seconds, clock=self._clock)
            if self.deadline_seconds is not None
            else None
        )
        report = JobReport(status="ok")
        job_span = current_tracer().span("job", cat="job", units=len(units))
        try:
            with GracefulShutdown() as shutdown:
                try:
                    for name, fn in units:
                        if watchdog is not None:
                            watchdog.check()
                        shutdown.raise_if_requested(context=name)
                        self._run_one(
                            name, fn, report, shutdown, watchdog,
                            parent_span=job_span.span_id,
                        )
                except DeadlineExceeded as exc:
                    self._log(f"deadline: {exc}")
                    report.status = "deadline"
                except Interrupted as exc:
                    self._log(f"interrupted: {exc}")
                    report.status = "interrupted"
            if report.status == "ok" and report.failed():
                report.status = "partial" if report.completed() else "failed"
            job_span.end(status=report.status)
        finally:
            job_span.end()
        return report

    # ------------------------------------------------------------------
    def _run_one(
        self,
        name: str,
        fn: Callable[[UnitContext], Any],
        report: JobReport,
        shutdown: GracefulShutdown,
        watchdog: Optional[Watchdog],
        parent_span: Optional[str] = None,
    ) -> None:
        tracer = current_tracer()
        if self.store is not None and self.store.has("unit", name):
            report.results[name] = self.store.load("unit", name)
            report.outcomes.append(UnitOutcome(name=name, status="resumed"))
            tracer.event("unit.resumed", cat="unit", parent=parent_span, unit=name)
            self._log(f"{name}: resumed from checkpoint")
            return
        span = tracer.span(f"unit:{name}", cat="unit", parent=parent_span)
        ctx = UnitContext(
            name=name,
            store=self.store,
            shutdown=shutdown,
            watchdog=watchdog,
            sanitize=self.sanitize,
            checkpoint_interval=self.checkpoint_interval,
            trace_parent=span.span_id,
        )
        attempts = 0
        started = self._clock()
        profile_before = _profiler_totals()
        try:
            while True:
                attempts += 1
                try:
                    result = fn(ctx)
                except (DeadlineExceeded, Interrupted):
                    # job-level conditions: unwind to run_units, which stamps
                    # the report status (completed units stay salvageable)
                    raise
                except Exception as exc:
                    if (
                        self.retry.retryable(exc)
                        and attempts <= self.retry.max_retries
                        and not shutdown.requested
                    ):
                        delay = self.retry.backoff(name, attempts)
                        self._log(
                            f"{name}: attempt {attempts} failed ({exc}); "
                            f"retrying in {delay:.2f}s"
                        )
                        with tracer.span(
                            "retry.wait", cat="retry",
                            parent=span.span_id, attempt=attempts,
                        ):
                            self._sleep(delay)
                        continue
                    report.outcomes.append(
                        UnitOutcome(
                            name=name,
                            status="failed",
                            attempts=attempts,
                            error=f"{type(exc).__name__}: {exc}",
                            seconds=self._clock() - started,
                        )
                    )
                    self._log(
                        f"{name}: failed after {attempts} attempt(s): {exc}"
                    )
                    span.end(
                        status="failed", attempts=attempts,
                        error=type(exc).__name__,
                    )
                    return
                break
            if self.store is not None:
                self.store.save("unit", name, result)
                telemetry = current()
                if telemetry.enabled:
                    # snapshot after every completed unit: at most one unit's
                    # worth of telemetry is lost to a crash (the profiler's
                    # wall-clock state intentionally pickles away to empty)
                    self.store.save("telemetry", "registry", telemetry)
            report.results[name] = result
            report.outcomes.append(
                UnitOutcome(
                    name=name,
                    status="done",
                    attempts=attempts,
                    seconds=self._clock() - started,
                )
            )
            tracer.emit_phases(
                span, phase_delta(profile_before, _profiler_totals())
            )
            span.end(status="done", attempts=attempts)
            self._log(f"{name}: done ({attempts} attempt(s))")
        finally:
            span.end()
