"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the reproducible figures and their one-line descriptions.
``run FIG [FIG ...] [options]``
    Run one or more figures' experiments under the supervised runner and
    print their rows (e.g. ``run fig08``, ``run fig06 fig07 fig08``).
    With ``--workers N`` the unit jobs execute on the crash-isolated
    multiprocess fabric (:mod:`repro.fleet`) instead of in-process;
    results and telemetry are byte-identical either way.  For the
    internet-scale figures, ``--shards N`` splits each unit's flow
    population over N lock-step workers (barrier-synchronized, with
    per-epoch checkpoint salvage) — still byte-identical to serial.
``quickstart``
    The README quickstart: FLoc on a flooded link, bandwidth breakdown.
``chaos [options]``
    Seed-deterministic chaos campaigns (faults + adaptive adversaries)
    judged against resilience SLOs; violations are delta-debugged to
    minimal reproducer artifacts that ``chaos --replay FILE``
    re-executes and verifies (see :mod:`repro.chaos`).
``check [options]``
    The flocheck static-analysis rules (see :mod:`repro.check`).
``metrics PATH [--profile]``
    Render a ``metrics.json`` telemetry export (or the directory holding
    one) as a table.
``trace {report,export} DIR``
    Analyse a span-trace directory produced by ``--trace``: ``report``
    prints phase attribution, rollups, the cross-process critical path
    and an ASCII timeline; ``export`` (re)writes the Perfetto-loadable
    ``trace.json`` (see :mod:`repro.trace`).

``run`` and ``chaos`` accept ``--telemetry {off,metrics,trace,jsonl}``:
``metrics`` records the registry (counters, gauges, series), ``trace``
additionally logs every FLoc decision event keyed by simulation tick
(``jsonl`` is an alias emphasising the event-log artifact), and both
profile per-subsystem wall time.  Exports land in ``--telemetry-dir``
(default ``telemetry/``).  Telemetry is observation-only: results and
digests are byte-identical with it on or off.

``run`` and ``chaos`` also accept ``--trace``: wall-clock span tracing
of the execution fabric itself (supervisor, fleet workers, shard
barriers, checkpoint/salvage, chaos campaigns, per-tick phases).  Every
process appends to its own ``spans-*.jsonl`` under ``--trace-dir``
(default ``trace/``); at the end of the run the files are merged into a
Perfetto-loadable ``trace.json`` and a summary is printed.  Like
telemetry, tracing is observation-only — digests are byte-identical
with it on or off — and wall-clock data never reaches checkpoints.

Scale/duration flags apply to the functional figures; internet-scale
figures take ``--variants``.  Every ``run`` is supervised (see
:mod:`repro.runner`): ``--checkpoint-dir`` makes it crash-safe,
``--resume`` continues a killed run bit-identically, ``--deadline``
bounds its wall-clock time and ``--sanitize`` installs the runtime
invariant layer on every simulator.

Exit codes: 0 all units completed; 1 every unit failed; 2 bad
configuration or unusable checkpoint directory; 3 partial (some units
failed — completed rows are still printed and salvaged); 4 watchdog
deadline exceeded; 5 interrupted by SIGTERM/SIGINT (progress
checkpointed; re-run with ``--resume``); 6 a poison job was quarantined
by the fleet (its reproducer artifact path is in the status table);
7 no data — ``metrics`` found no telemetry export at the given path, or
``trace`` found no span files in the given directory (the command names
the missing artifact and how to produce it).
With several jobs (``run`` with multiple figures), the exit code is the
*worst* job's, and a per-job status table is printed whenever any job
ended non-ok.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from .analysis.export import write_csv
from .analysis.report import format_table
from .errors import ConfigError, ReproError
from .experiments.common import FunctionalSettings

FIGURES = {
    "fig02": "packet service vs drop rate at a congested link",
    "fig03": "packet-size distribution (synthetic trace)",
    "fig04": "TCP window synchronisation and token consumption",
    "fig06": "attack confinement (tcp/cbr/shrew), per-path bandwidth",
    "fig07": "robustness CDFs across schemes and attack strengths",
    "fig08": "differential bandwidth guarantees vs attack rate",
    "fig09": "legitimate-path aggregation",
    "fig10": "covert attacks vs per-bot fanout",
    "fig11": "internet-scale topology statistics (localized/dispersed)",
    "fig13": "internet-scale bandwidth shares, localized attacks",
    "fig14": "internet-scale bandwidth shares, dispersed attacks",
    "fig15": "internet-scale bandwidth shares, separated placement",
    "faults": "graceful degradation under router restart + link faults",
}

#: Job/fleet status -> process exit code (see module docstring).
#: ``nodata`` is not a job status: it is the documented loud exit for
#: ``metrics``/``trace`` invoked on a path with nothing to render.
EXIT_CODES = {
    "ok": 0,
    "failed": 1,
    "partial": 3,
    "deadline": 4,
    "interrupted": 5,
    "quarantined": 6,
    "nodata": 7,
}

#: Statuses from best to worst; multi-job runs exit with the worst one.
_STATUS_ORDER = (
    "ok", "partial", "failed", "quarantined", "deadline", "interrupted",
)


def _worst_status(statuses) -> str:
    return max(statuses, key=_STATUS_ORDER.index, default="ok")


#: Cap for auto-detected worker/shard counts: these workloads stop
#: scaling long before the core counts shared CI runners advertise.
_AUTO_CAP = 8


def _auto_count(value: Optional[int]) -> Optional[int]:
    """Resolve ``--workers 0`` / ``--shards 0`` to a detected count."""
    if value == 0:
        return min(os.cpu_count() or 1, _AUTO_CAP)
    return value


def _heartbeat_from(args, default_timeout: float) -> Tuple[float, float]:
    """Heartbeat (interval, timeout): flag > environment > default.

    ``REPRO_HEARTBEAT_INTERVAL`` / ``REPRO_HEARTBEAT_TIMEOUT`` let CI
    and wrapper scripts tune liveness conviction without threading flags
    through every call site; an explicit flag still wins.
    """
    def from_env(name: str, fallback: float) -> float:
        env = os.environ.get(name)
        if not env:
            return fallback
        try:
            value = float(env)
        except ValueError:
            raise ConfigError(
                f"{name}={env!r} is not a number of seconds"
            ) from None
        if value <= 0:
            raise ConfigError(f"{name}={env!r} must be > 0 seconds")
        return value

    interval = getattr(args, "heartbeat_interval", None)
    if interval is None:
        interval = from_env("REPRO_HEARTBEAT_INTERVAL", 0.1)
    timeout = getattr(args, "heartbeat_timeout", None)
    if timeout is None:
        timeout = from_env("REPRO_HEARTBEAT_TIMEOUT", default_timeout)
    return interval, timeout


def _settings(args) -> FunctionalSettings:
    return FunctionalSettings(
        scale=args.scale,
        warmup_seconds=args.warmup,
        measure_seconds=args.seconds,
        seed=args.seed,
        sanitize=getattr(args, "sanitize", None),
    )


def _runner_log(message: str) -> None:
    """Log sink for the supervised runner.

    Module-level (not a lambda) so runner state holding the sink stays
    picklable across checkpoints.
    """
    sys.stderr.write(f"[runner] {message}\n")


def _telemetry_from_args(args):
    """Build the session telemetry the ``--telemetry`` flag asked for."""
    from .telemetry import NULL_TELEMETRY, Telemetry

    mode = getattr(args, "telemetry", "off")
    if mode == "off":
        return NULL_TELEMETRY
    # "jsonl" is the tracing mode named after its artifact
    return Telemetry(
        mode="trace" if mode == "jsonl" else mode, profile=True
    )


def _tracer_from_args(args):
    """Build the run tracer the ``--trace`` flag asked for.

    Stale ``spans-*.jsonl`` from an earlier run in the same directory
    are removed first — span files are append-only, so leftovers would
    otherwise merge into this run's timeline.
    """
    from .trace import NULL_TRACER, Tracer

    if not getattr(args, "trace", False):
        return NULL_TRACER
    os.makedirs(args.trace_dir, exist_ok=True)
    for name in os.listdir(args.trace_dir):
        if name.startswith("spans-") and name.endswith(".jsonl"):
            os.unlink(os.path.join(args.trace_dir, name))
    return Tracer(args.trace_dir, proc="main")


def _shadow_telemetry(tel, tracer):
    """Serial ``--trace`` without ``--telemetry``: returns a shadow
    recorder (plus a flag saying so) that exists only to feed the
    tracer's per-tick phase spans and must never be exported.  Fleet
    workers build their own shadow (see :mod:`repro.fleet.worker`)."""
    if tracer.enabled and not tel.enabled:
        from .telemetry import Telemetry

        return Telemetry(mode="metrics", profile=True), True
    return tel, False


def _finish_trace(args, tracer) -> None:
    """Merge the run's span files, write trace.json, print the summary."""
    if not tracer.enabled:
        return
    tracer.close()
    from .trace import analyze, merge_trace, write_chrome_trace

    trace = merge_trace(args.trace_dir)
    path = write_chrome_trace(
        trace, os.path.join(args.trace_dir, "trace.json")
    )
    analysis = analyze(trace)
    top = [
        f"{name} {seconds:.3f}s"
        for name, seconds in sorted(
            analysis.phases.items(), key=lambda kv: (-kv[1], kv[0])
        )[:4]
    ]
    sys.stdout.write(
        f"trace: {len(trace.spans)} span(s) from "
        f"{max(len(trace.procs), 1)} process(es) -> {path}\n"
    )
    if top:
        sys.stdout.write("trace: top phases: " + ", ".join(top) + "\n")
    sys.stdout.write(
        f"trace: load {path} in ui.perfetto.dev, or run "
        f"`repro trace report {args.trace_dir}`\n"
    )


def _export_telemetry(args, tel) -> None:
    """Write every telemetry artifact and say where each one went."""
    if not tel.enabled:
        return
    from .telemetry.exporters import export_all

    for kind, path in sorted(export_all(tel, args.telemetry_dir).items()):
        sys.stdout.write(f"telemetry {kind}: {path}\n")


def _emit(args, name: str, headers, rows, title: str) -> None:
    """Print a result table; optionally mirror it to ``--csv DIR``."""
    sys.stdout.write(format_table(headers, rows, title=title))
    sys.stdout.write("\n")
    if getattr(args, "csv", None):
        path = write_csv(
            os.path.join(args.csv, f"{name}.csv"), headers, rows
        )
        sys.stdout.write(f"wrote {path}\n")


def _fig_status(freport, names: List[str]) -> str:
    """Derive one figure's job status from its units' fleet outcomes."""
    by_name = {o.name: o for o in freport.outcomes}
    outs = [by_name[n] for n in names if n in by_name]
    missing = len(names) - len(outs)
    if any(o.status == "quarantined" for o in outs):
        return "quarantined"
    done = sum(1 for o in outs if o.status in ("done", "resumed"))
    failed = sum(1 for o in outs if o.status == "failed")
    if missing and freport.status in ("deadline", "interrupted"):
        return freport.status
    if not failed and not missing:
        return "ok"
    return "partial" if done else "failed"


def _shard_fig_status(freport, tasks, names: List[str]) -> str:
    """Figure status from shard-gang outcomes: a unit counts as done
    only when *every* one of its shards finished."""
    by_name = {o.name: o for o in freport.outcomes}
    per_unit: List[str] = []
    for unit in names:
        members = [t.name for t in tasks if t.unit == unit]
        outs = [by_name[m] for m in members if m in by_name]
        missing = len(members) - len(outs)
        if any(o.status == "quarantined" for o in outs):
            per_unit.append("quarantined")
        elif not missing and all(
            o.status in ("done", "resumed") for o in outs
        ):
            per_unit.append("ok")
        elif missing and freport.status in ("deadline", "interrupted"):
            per_unit.append(freport.status)
        else:
            per_unit.append("failed")
    if any(s == "quarantined" for s in per_unit):
        return "quarantined"
    if per_unit and all(s == "ok" for s in per_unit):
        return "ok"
    if any(s in ("deadline", "interrupted") for s in per_unit):
        return freport.status
    return "partial" if any(s == "ok" for s in per_unit) else "failed"


def _merge_shard_units(tasks, results: Dict[str, Any]) -> Dict[str, Any]:
    """Fold per-shard pieces into per-unit results, unit names matching
    the serial runner's.  Units with any shard missing are dropped —
    the figure finalizer reports them as missing rather than rendering
    rows from a partial flow population."""
    from .inet.shard import merge_shard_results

    by_unit: Dict[str, List[Any]] = {}
    for task in tasks:
        piece = results.get(task.name)
        by_unit.setdefault(task.unit, []).append(piece)
    merged: Dict[str, Any] = {}
    for unit, pieces in by_unit.items():
        if all(piece is not None for piece in pieces):
            merged[unit] = merge_shard_results(pieces)
    return merged


def _run_figures(args) -> int:
    from .runner import (
        CheckpointStore,
        RetryPolicy,
        SupervisedRunner,
        build_figure_job,
    )
    from .fleet.jobs import INTERNET_PLACEMENTS
    from .telemetry import use

    figures = list(dict.fromkeys(args.figures))
    settings = _settings(args)
    variants = tuple(args.variants)
    args.workers = _auto_count(args.workers)
    shards = _auto_count(getattr(args, "shards", None))
    if shards is not None:
        if shards < 1:
            raise ConfigError(f"--shards must be >= 1 (or 0 = auto), got {shards}")
        outside = [f for f in figures if f not in INTERNET_PLACEMENTS]
        if outside:
            raise ConfigError(
                f"--shards applies only to the internet-scale figures "
                f"{tuple(sorted(INTERNET_PLACEMENTS))}; got {outside}"
            )
        if args.workers is None:
            args.workers = shards
        if args.workers < shards:
            raise ConfigError(
                f"--workers {args.workers} cannot seat a {shards}-shard "
                "gang; use --workers >= --shards"
            )
    if getattr(args, "process_faults", 0) and args.workers is None:
        raise ConfigError("--process-faults requires --workers or --shards")
    jobs = {
        fig: build_figure_job(fig, settings, variants=variants)
        for fig in figures
    }

    store = None
    root = args.resume or args.checkpoint_dir
    if root:
        store = CheckpointStore(root)
        if not args.resume and store.job is not None:
            # --checkpoint-dir without --resume restarts the job; stale
            # entries must not be mistaken for this run's results
            store.reset()
    elif args.workers is not None:
        # the fleet needs a shared store for results and mid-task salvage
        # even when the user did not ask for checkpoints
        import tempfile

        store = CheckpointStore(tempfile.mkdtemp(prefix="repro-fleet-"))

    if len(figures) == 1:
        fingerprint = jobs[figures[0]].fingerprint
    else:
        # one combined fingerprint: per-figure ones would conflict in the
        # shared store's manifest
        fingerprint = {"kind": "multi-figure", "figures": list(figures)}
        fingerprint.update(
            {
                k: v
                for k, v in jobs[figures[0]].fingerprint.items()
                if k not in ("kind", "figure")
            }
        )
    if shards is not None:
        # a sharded store is not resumable by a serial run (and vice
        # versa): state keys, exchange layout and epochs all differ
        fingerprint = dict(fingerprint)
        fingerprint["shards"] = shards
        fingerprint["epoch_ticks"] = args.epoch_ticks
    if store is not None:
        store.check_job(fingerprint)

    tel = _telemetry_from_args(args)
    tracer = _tracer_from_args(args)
    tel, shadow_tel = _shadow_telemetry(tel, tracer)
    statuses: Dict[str, str] = {}
    results: Dict[str, Any] = {}
    unit_rows: List[Tuple[str, str, int, str]] = []

    if args.workers is not None:
        from .fleet import (
            FleetOptions,
            figure_tasks,
            run_fleet,
            sample_process_faults,
            shard_figure_tasks,
        )

        if shards is not None:
            tasks = [
                task
                for fig in figures
                for task in shard_figure_tasks(
                    fig,
                    shards,
                    variants=variants,
                    epoch_ticks=args.epoch_ticks,
                    barrier_timeout_seconds=args.barrier_timeout,
                )
            ]
        else:
            tasks = [
                task
                for fig in figures
                for task in figure_tasks(fig, settings, variants=variants)
            ]
        plan = None
        if getattr(args, "process_faults", 0):
            plan = sample_process_faults(
                args.seed,
                [t.name for t in tasks],
                args.process_faults,
                prefer="#s" if shards is not None else None,
            )
        hb_interval, hb_timeout = _heartbeat_from(
            args, 5.0 if plan is not None else 30.0
        )
        mode = getattr(args, "telemetry", "off")
        from .trace import use_tracer

        with use_tracer(tracer):
            freport = run_fleet(
                tasks,
                store,
                FleetOptions(
                    workers=args.workers,
                    telemetry_mode="trace" if mode == "jsonl" else mode,
                    sanitize=settings.sanitize,
                    retry=RetryPolicy(
                        max_retries=args.retries, seed=args.seed
                    ),
                    deadline_seconds=args.deadline,
                    fault_plan=plan,
                    heartbeat_interval_seconds=hb_interval,
                    heartbeat_timeout_seconds=hb_timeout,
                ),
                log=_runner_log,
            )
        tel = freport.telemetry
        shadow_tel = False  # the merged fleet telemetry is the real one
        results = dict(freport.results)
        unit_rows = freport.summary_rows()
        if shards is not None:
            results = _merge_shard_units(tasks, results)
            for fig in figures:
                statuses[fig] = _shard_fig_status(
                    freport, tasks, [name for name, _ in jobs[fig].units]
                )
        else:
            for fig in figures:
                statuses[fig] = _fig_status(
                    freport, [name for name, _ in jobs[fig].units]
                )
    else:
        from .trace import use_tracer

        with use_tracer(tracer), use(tel):
            for fig in figures:
                runner = SupervisedRunner(
                    store=store,
                    deadline_seconds=args.deadline,
                    retry=RetryPolicy(
                        max_retries=args.retries, seed=args.seed
                    ),
                    sanitize=settings.sanitize,
                    log=_runner_log,
                )
                report = runner.run_units(jobs[fig].units)
                statuses[fig] = report.status
                results.update(report.results)
                unit_rows.extend(report.summary_rows())
                if report.status in ("deadline", "interrupted"):
                    break  # the whole run is cut off, not just this job

    if not shadow_tel:
        _export_telemetry(args, tel)
    _finish_trace(args, tracer)
    for fig in figures:
        if fig not in statuses:
            continue  # never started (an earlier job hit the deadline)
        output = jobs[fig].finalize(results)
        _emit(args, fig, output.headers, output.rows, FIGURES[fig])
        for note in output.notes:
            sys.stdout.write(f"{note}\n")

    worst = _worst_status(statuses.values())
    if len(figures) > 1 or worst != "ok":
        sys.stdout.write(
            format_table(
                ["job", "status"],
                [[fig, statuses.get(fig, "not started")] for fig in figures],
                title="job statuses",
            )
        )
        sys.stdout.write("\n")
    if worst != "ok":
        sys.stderr.write(f"job {worst}:\n")
        for name, status, attempts, error in unit_rows:
            suffix = f" ({error})" if error else ""
            sys.stderr.write(f"  {name}: {status}{suffix}\n")
        if store is not None and results:
            path = store.save("salvage", "partial-results", dict(results))
            sys.stderr.write(
                f"salvaged {len(results)} unit result(s) to {path}\n"
            )
    return EXIT_CODES[worst]


def _quickstart(args) -> int:
    from .analysis.accounting import breakdown
    from .core.config import FLocConfig
    from .core.router import FLocPolicy
    from .traffic.scenarios import build_tree_scenario

    scenario = build_tree_scenario(
        scale_factor=args.scale, attack_kind="cbr", attack_rate_mbps=2.0,
        seed=args.seed,
    )
    scenario.attach_policy(FLocPolicy(FLocConfig(s_max=25)))
    monitor = scenario.add_target_monitor(start_seconds=args.warmup)
    scenario.run_seconds(args.warmup + args.seconds)
    window = scenario.units.seconds_to_ticks(args.seconds)
    result = breakdown(
        monitor,
        list(scenario.legit_flows) + list(scenario.attack_flows),
        scenario.attack_path_ids,
        scenario.capacity,
        window,
    )
    sys.stdout.write(
        format_table(
            ["category", "share"],
            [
                ["legit (clean domains)", result.legit_in_legit],
                ["legit (attack domains)", result.legit_in_attack],
                ["attack", result.attack],
            ],
            title="FLoc on a flooded link",
        )
    )
    sys.stdout.write("\n")
    return 0


def _chaos(args) -> int:
    from .chaos import (
        ChaosOptions,
        default_slo,
        replay_artifact,
        run_chaos,
    )
    from .runner import CheckpointStore

    if args.replay:
        from .telemetry import use

        tel = _telemetry_from_args(args)
        with use(tel):
            outcome = replay_artifact(args.replay)
        _export_telemetry(args, tel)
        _emit(
            args,
            "chaos-replay",
            ["slo", "verdict", "detail"],
            outcome.result.report.rows(),
            f"replay of {args.replay}",
        )
        sys.stdout.write(outcome.summary() + "\n")
        return 0 if outcome.ok else 1

    slo = None
    if args.floor is not None or args.epsilon is not None or args.sanitize:
        # per-simulator default catalogs diverge only in the floor, so a
        # single override catalog (packet default base) covers both
        simulator = args.simulator if args.simulator != "both" else "packet"
        slo = default_slo(
            simulator,
            floor=args.floor,
            epsilon=args.epsilon,
            sanitize=args.sanitize or None,
        )
    options = ChaosOptions(
        seed=args.seed,
        campaigns=args.campaigns,
        simulator=args.simulator,
        include_silent=args.include_silent,
        slo=slo,
        shrink=not args.no_shrink,
        max_shrink_trials=args.max_shrink_trials,
        artifact_dir=args.artifact_dir,
        exhaustion=args.exhaustion,
        state_backend=args.state_backend,
        max_tracked_paths=args.max_paths,
    )
    store = CheckpointStore(args.checkpoint_dir) if args.checkpoint_dir else None
    from .telemetry import use

    args.workers = _auto_count(args.workers)
    if args.process_faults and args.workers is None:
        raise ConfigError("--process-faults requires --workers")

    tel = _telemetry_from_args(args)
    tracer = _tracer_from_args(args)
    tel, shadow_tel = _shadow_telemetry(tel, tracer)
    if args.workers is not None:
        import tempfile

        from .chaos.spec import CampaignSpec
        from .fleet import (
            FleetOptions,
            chaos_tasks,
            run_fleet,
            sample_process_faults,
        )
        from .runner import RetryPolicy
        from .runner.supervisor import JobReport, UnitOutcome

        tasks = chaos_tasks(options)
        plan = None
        if args.process_faults:
            plan = sample_process_faults(
                args.seed, [t.name for t in tasks], args.process_faults
            )
        if store is None:
            store = CheckpointStore(tempfile.mkdtemp(prefix="repro-fleet-"))
        fingerprint = {
            "kind": "chaos-sweep",
            "seed": args.seed,
            "campaigns": args.campaigns,
            "simulator": args.simulator,
            "include_silent": args.include_silent,
        }
        if options.exhaustion:
            # same conditional keying as run_chaos: pre-existing sweep
            # checkpoints keep their fingerprints
            fingerprint["exhaustion"] = options.exhaustion
            fingerprint["state_backend"] = options.state_backend
            fingerprint["max_tracked_paths"] = options.max_tracked_paths
        store.check_job(fingerprint)
        mode = getattr(args, "telemetry", "off")
        # default conviction: fast (5s) under a fault plan — the
        # heartbeat pulse runs on its own thread, so 5s of silence from
        # a live worker cannot happen by accident — else a generous 30s
        hb_interval, hb_timeout = _heartbeat_from(
            args, 5.0 if plan is not None else 30.0
        )
        from .trace import use_tracer

        with use_tracer(tracer):
            freport = run_fleet(
                tasks,
                store,
                FleetOptions(
                    workers=args.workers,
                    telemetry_mode="trace" if mode == "jsonl" else mode,
                    retry=RetryPolicy(seed=args.seed),
                    deadline_seconds=args.deadline,
                    fault_plan=plan,
                    heartbeat_interval_seconds=hb_interval,
                    heartbeat_timeout_seconds=hb_timeout,
                ),
                log=_runner_log,
            )
        tel = freport.telemetry
        shadow_tel = False  # the merged fleet telemetry is the real one
        from .chaos import ChaosReport

        report = ChaosReport(
            job=JobReport(
                status=freport.status,
                outcomes=[
                    UnitOutcome(
                        name=o.name,
                        status=o.status,
                        attempts=o.attempts,
                        error=o.error,
                        seconds=o.seconds,
                    )
                    for o in freport.outcomes
                ],
                results=dict(freport.results),
            ),
            specs=[CampaignSpec.from_dict(t.spec) for t in tasks],
        )
    else:
        from .trace import use_tracer

        with use_tracer(tracer), use(tel):
            report = run_chaos(
                options,
                store=store,
                deadline_seconds=args.deadline,
                log=_runner_log,
            )
    if not shadow_tel:
        _export_telemetry(args, tel)
    _finish_trace(args, tracer)
    rows = []
    unit_names = sorted(report.job.results)
    for name, campaign in zip(unit_names, report.campaigns):
        violated = [v[0] for v in campaign["verdicts"] if v[1] != "ok"]
        rows.append(
            [
                name,
                campaign["simulator"],
                "ok" if campaign["ok"] else "VIOLATED " + ",".join(violated),
                campaign["digest"][:12],
                campaign["artifact"] or "",
            ]
        )
    _emit(
        args,
        "chaos",
        ["campaign", "simulator", "verdict", "digest", "artifact"],
        rows,
        f"chaos sweep: seed {args.seed}, {args.campaigns} campaign(s)",
    )
    for campaign in report.violations:
        shrunk = campaign["shrink"]
        if shrunk:
            sys.stdout.write(
                f"shrunk '{shrunk['slo']}' violation in {shrunk['trials']} "
                f"trial(s): removed {len(shrunk['steps'])} component(s)\n"
            )
    if report.status == "violations":
        sys.stderr.write(
            f"{len(report.violations)} campaign(s) violated an SLO; "
            f"reproducers: {report.artifacts or 'disabled'}\n"
        )
        return EXIT_CODES["partial"]
    if report.job.status != "ok":
        sys.stderr.write(f"sweep {report.job.status}:\n")
        for name, status, attempts, error in report.job.summary_rows():
            suffix = f" ({error})" if error else ""
            sys.stderr.write(f"  {name}: {status}{suffix}\n")
    return EXIT_CODES[report.job.status]


def _metric_cell(value) -> str:
    """Compact one-cell rendering of a metric's snapshot value."""
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: str(kv[0]))
        shown = ", ".join(f"{k}={v}" for k, v in items[:6])
        return shown + (", ..." if len(items) > 6 else "")
    if isinstance(value, list):
        if not value:
            return "(no points)"
        return f"{len(value)} point(s), last={value[-1]}"
    return str(value)


def _metrics(args) -> int:
    from .telemetry.exporters import load_metrics_json

    path = args.path
    if os.path.isdir(path):
        path = os.path.join(path, "metrics.json")
    if not os.path.exists(path):
        # the documented "nothing to render" exit (code 7, see module
        # docstring) — distinct from a malformed export, which is a
        # ConfigError (exit 2)
        sys.stderr.write(f"error: no telemetry export at {path}\n")
        sys.stderr.write(
            "hint: produce one with `repro run FIG --telemetry metrics` "
            "(exports land in --telemetry-dir, default telemetry/)\n"
        )
        return EXIT_CODES["nodata"]
    payload = load_metrics_json(path)
    rows = [
        [name, entry.get("kind", "?"), _metric_cell(entry.get("value"))]
        for name, entry in sorted(payload["metrics"].items())
    ]
    sys.stdout.write(
        format_table(
            ["metric", "kind", "value"],
            rows,
            title=f"telemetry export {path} (mode {payload.get('mode', '?')})",
        )
    )
    sys.stdout.write("\n")
    trace = payload.get("trace")
    if trace:
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(trace.get("counts_by_kind", {}).items())
        )
        sys.stdout.write(
            f"trace: {trace.get('emitted_total', 0)} event(s)"
            + (f" ({kinds})" if kinds else "")
            + "\n"
        )
    profile = payload.get("profile")
    if profile and args.profile:
        for subsystem, seconds in sorted(
            profile.get("totals_seconds", {}).items()
        ):
            sys.stdout.write(f"profile: {subsystem} {seconds:.6f}s\n")
    return 0


def _trace_cmd(args) -> int:
    from .trace import merge_trace, render_report, write_chrome_trace

    try:
        trace = merge_trace(args.dir)
    except ConfigError as exc:
        # the documented "nothing to analyse" exit (code 7, see module
        # docstring)
        sys.stderr.write(f"error: {exc}\n")
        sys.stderr.write(
            "hint: produce span files with `repro run FIG --trace` "
            "(they land in --trace-dir, default trace/)\n"
        )
        return EXIT_CODES["nodata"]
    if args.action == "report":
        sys.stdout.write(render_report(trace))
        return 0
    out = args.out or os.path.join(args.dir, "trace.json")
    path = write_chrome_trace(trace, out)
    sys.stdout.write(f"wrote {path}\n")
    return 0


def _check(args) -> int:
    from .check import Baseline, Checker, rule_catalog
    from .check.engine import DEFAULT_BASELINE

    if args.list_rules:
        rows = [[rid, sev, desc] for rid, sev, desc in rule_catalog()]
        sys.stdout.write(format_table(["rule", "severity", "description"], rows))
        sys.stdout.write("\n")
        return 0

    baseline_path = args.baseline or str(DEFAULT_BASELINE)
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    extra_roots = _check_extra_roots() if args.include_tests else ()
    checker = Checker.for_package(baseline=baseline, extra_roots=extra_roots)

    if args.graph:
        return _check_graph(checker)

    if args.update_baseline:
        report = checker.run(args.paths or None)
        findings = report.new_findings + report.baselined
        Baseline.from_findings(findings).save(baseline_path)
        sys.stdout.write(
            f"wrote {len(findings)} finding(s) to {baseline_path}; "
            f"edit in justifications\n"
        )
        return 0

    report = checker.run(args.paths or None)
    for diag in report.new_findings:
        sys.stdout.write(diag.format() + "\n")
    if args.strict:
        for entry in report.stale_baseline:
            sys.stdout.write(
                f"stale baseline entry (finding fixed? remove it): "
                f"{entry.describe()}\n"
            )
    if args.show_suppressed:
        if report.suppression_records:
            sys.stdout.write("suppressions:\n")
        for relpath, record in report.suppression_records:
            ids = ",".join(sorted(record.ids))
            reason = record.reason or "(NO REASON -- inert, see FLC099)"
            sys.stdout.write(
                f"  {relpath}:{record.line}: {ids}: {reason}\n"
            )
    if args.sarif:
        from .check.sarif import write_sarif

        write_sarif(report, args.sarif)
        sys.stdout.write(f"wrote SARIF report to {args.sarif}\n")
    sys.stdout.write(report.summary() + "\n")
    failed = bool(report.new_findings) or (
        args.strict and bool(report.stale_baseline)
    )
    return 1 if failed else 0


def _check_extra_roots():
    """tests/ and benchmarks/ siblings of the package, when present.

    Resolved from the installed package location (src layout); roots
    that do not exist — an installed wheel without the repo — are
    silently skipped.
    """
    from pathlib import Path

    import repro

    repo_root = Path(repro.__file__).resolve().parent.parent.parent
    return [
        root
        for root in (repo_root / "tests", repo_root / "benchmarks")
        if root.is_dir()
    ]


def _check_graph(checker) -> int:
    """Dump the call graph + spawn reachability (debug surface)."""
    from .check.callgraph import CallGraph, SymbolTable, spawn_entrypoints
    from .check.engine import Project

    modules = checker.collect()
    project = Project(checker.package_root, modules)
    table = SymbolTable.build(project.iter_modules())
    graph = CallGraph(table)
    roots = spawn_entrypoints(table)
    reachable = graph.reachable(roots)
    sys.stdout.write(
        f"{len(table.functions)} functions, {graph.edge_count()} call "
        f"edges\n"
    )
    sys.stdout.write("spawn entrypoints:\n")
    for root in roots:
        sys.stdout.write(f"  {root}\n")
    sys.stdout.write(
        f"reachable from spawn entrypoints: {len(reachable)} functions\n"
    )
    for qualname in sorted(reachable):
        sys.stdout.write(f"  {qualname}\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FLoc reproduction: run the paper's experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figures")

    run = sub.add_parser("run", help="run one or more figures' experiments")
    run.add_argument(
        "figures", nargs="+", choices=sorted(FIGURES), metavar="FIG",
        help="figure name(s); several run as one multi-job session",
    )
    _add_common(run)
    run.add_argument(
        "--workers", type=int, metavar="N", default=None,
        help="run unit jobs on N supervised worker processes (the fleet: "
             "crash isolation, hang detection, checkpoint salvage); "
             "results and telemetry match the serial run byte for byte; "
             "0 auto-detects (cpu count, capped at 8)",
    )
    run.add_argument(
        "--shards", type=int, metavar="N", default=None,
        help="shard each internet-scale figure unit's flow population "
             "over N lock-step fleet workers (barrier-synchronized, "
             "per-epoch checkpoints, byte-identical to serial); "
             "0 auto-detects (cpu count, capped at 8); implies "
             "--workers N unless given; internet figures only",
    )
    run.add_argument(
        "--epoch-ticks", type=int, metavar="K", default=50,
        help="barrier-epoch length for --shards: every K ticks each "
             "shard checkpoints and garbage-collects its exchange files "
             "(default 50)",
    )
    run.add_argument(
        "--barrier-timeout", type=float, metavar="SECONDS", default=120.0,
        help="how long a shard waits at a barrier for a missing peer "
             "before raising a retryable straggler timeout (default 120)",
    )
    run.add_argument(
        "--process-faults", type=int, metavar="N", default=0,
        help="inject N process-level faults (worker SIGKILL / heartbeat "
             "stall) into the fleet; sharded runs aim them at shard "
             "workers; requires --workers or --shards",
    )
    run.add_argument(
        "--variants", nargs="+", default=["f-root"],
        help="skitter-map variants for internet-scale figures",
    )
    run.add_argument(
        "--sanitize", choices=("off", "strict", "record"), default="off",
        help="runtime invariant checking: 'strict' aborts the unit on the "
             "first violation, 'record' collects violations silently",
    )
    run.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="write crash-safe checkpoints to DIR (restarts any job "
             "already stored there; combine with --resume to continue it)",
    )
    run.add_argument(
        "--resume", metavar="DIR", default=None,
        help="resume from the checkpoints in DIR: completed units are "
             "loaded, interrupted simulations continue mid-run",
    )
    run.add_argument(
        "--deadline", type=float, metavar="SECONDS", default=None,
        help="wall-clock watchdog deadline (per job serially; for the "
             "whole fleet with --workers)",
    )
    run.add_argument(
        "--retries", type=int, metavar="N", default=1,
        help="max retries per unit for transient failures (default 1)",
    )
    _add_heartbeat(run)
    _add_telemetry(run)
    _add_trace_flags(run)

    quick = sub.add_parser("quickstart", help="FLoc vs a CBR flood")
    _add_common(quick)

    chaos = sub.add_parser(
        "chaos",
        help="run seed-deterministic chaos campaigns against resilience "
             "SLOs; violations shrink to minimal replay artifacts",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="sweep seed; the full campaign list is a pure "
                            "function of it")
    chaos.add_argument("--campaigns", type=int, default=3, metavar="N",
                       help="number of campaigns to sample and run")
    chaos.add_argument("--simulator", choices=("packet", "fluid", "both"),
                       default="both",
                       help="simulator backend ('both' samples per campaign)")
    chaos.add_argument("--include-silent", action="store_true",
                       help="include silent-corruption faults in the sample "
                            "space (these are expected sanitizer violations)")
    chaos.add_argument("--floor", type=float, default=None,
                       help="override the legitimate-share floor SLO")
    chaos.add_argument("--epsilon", type=float, default=None,
                       help="override the recovery-SLO tolerance")
    chaos.add_argument("--sanitize", choices=("off", "strict", "record"),
                       default=None,
                       help="override the sanitizer SLO mode "
                            "(default: strict)")
    chaos.add_argument("--exhaustion", type=int, default=0, metavar="N",
                       help="append N state-exhaustion campaigns (path-churn "
                            "flood vs a bounded memory budget, judged by the "
                            "bounded_state SLO)")
    chaos.add_argument("--state-backend", choices=("exact", "sketch"),
                       default="sketch",
                       help="router state backend for --exhaustion "
                            "campaigns (default: sketch)")
    chaos.add_argument("--max-paths", type=int, default=None, metavar="N",
                       help="hard per-router tracked-path budget for "
                            "--exhaustion campaigns")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="report violations without delta-debugging them")
    chaos.add_argument("--max-shrink-trials", type=int, default=64,
                       metavar="N",
                       help="trial-execution budget per shrink (default 64)")
    chaos.add_argument("--artifact-dir", metavar="DIR",
                       default="chaos-artifacts",
                       help="where reproducer JSON artifacts are written")
    chaos.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="crash-safe sweep checkpoints (completed "
                            "campaigns are not re-run)")
    chaos.add_argument("--deadline", type=float, metavar="SECONDS",
                       default=None,
                       help="wall-clock watchdog deadline for the sweep")
    chaos.add_argument("--workers", type=int, metavar="N", default=None,
                       help="run campaigns on N supervised worker "
                            "processes (digests match the serial sweep); "
                            "0 auto-detects (cpu count, capped at 8)")
    chaos.add_argument("--process-faults", type=int, metavar="N", default=0,
                       help="inject N process-level faults (worker "
                            "SIGKILL / heartbeat stall) into the fleet "
                            "itself; requires --workers")
    chaos.add_argument("--replay", metavar="FILE", default=None,
                       help="re-execute a reproducer artifact and verify it "
                            "still fails identically (other flags ignored)")
    chaos.add_argument("--csv", metavar="DIR", default=None,
                       help="also write the sweep table to DIR/chaos.csv")
    _add_heartbeat(chaos)
    _add_telemetry(chaos)
    _add_trace_flags(chaos)

    metrics = sub.add_parser(
        "metrics", help="render a telemetry metrics.json export as a table"
    )
    metrics.add_argument(
        "path", metavar="PATH",
        help="a metrics.json file, or the --telemetry-dir that holds one",
    )
    metrics.add_argument(
        "--profile", action="store_true",
        help="also print the per-subsystem wall-time profile, if recorded",
    )

    trace = sub.add_parser(
        "trace",
        help="analyse a span-trace directory produced by --trace",
    )
    trace.add_argument(
        "action", choices=("report", "export"),
        help="'report' prints phase attribution, per-span rollups, the "
             "cross-process critical path and an ASCII timeline; "
             "'export' (re)writes the Perfetto-loadable trace.json",
    )
    trace.add_argument(
        "dir", metavar="DIR",
        help="the --trace-dir of a finished run (holds spans-*.jsonl)",
    )
    trace.add_argument(
        "--out", metavar="FILE", default=None,
        help="where 'export' writes the Chrome trace-event JSON "
             "(default: DIR/trace.json)",
    )

    check = sub.add_parser(
        "check", help="run the flocheck static-analysis rules"
    )
    check.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories under the repro package to check "
             "(default: the whole package)",
    )
    check.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries (the baseline can only "
             "shrink, never drift); this is the CI mode",
    )
    check.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline file of grandfathered findings "
             "(default: the one shipped with repro.check)",
    )
    check.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    check.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to accept exactly the current findings "
             "(edit in justifications afterwards)",
    )
    check.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    check.add_argument(
        "--sarif", metavar="OUT", default=None,
        help="also write the report as SARIF 2.1.0 to OUT (new, "
             "baselined, and suppressed findings; CI uploads this so "
             "findings annotate PR diffs)",
    )
    check.add_argument(
        "--show-suppressed", action="store_true",
        help="list every '# flocheck: disable=' comment with its reason "
             "(the inline-waiver audit surface)",
    )
    check.add_argument(
        "--include-tests", action="store_true",
        help="also sweep tests/ and benchmarks/ with the relaxed rule "
             "subset (mutable defaults, spawn-payload safety)",
    )
    check.add_argument(
        "--graph", action="store_true",
        help="print the call graph summary and spawn-entrypoint "
             "reachability instead of running the rules",
    )
    return parser


def _add_heartbeat(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--heartbeat-interval", type=float, metavar="SECONDS", default=None,
        help="worker heartbeat pulse interval (default 0.1; or the "
             "REPRO_HEARTBEAT_INTERVAL environment variable)",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, metavar="SECONDS", default=None,
        help="silence after which a worker is convicted as hung and "
             "SIGKILLed (default 30, or 5 under --process-faults; or the "
             "REPRO_HEARTBEAT_TIMEOUT environment variable)",
    )


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", choices=("off", "metrics", "trace", "jsonl"),
        default="off",
        help="record telemetry: 'metrics' keeps the registry, 'trace' "
             "additionally logs per-tick decision events ('jsonl' is an "
             "alias); results are identical either way",
    )
    parser.add_argument(
        "--telemetry-dir", metavar="DIR", default="telemetry",
        help="directory the telemetry exports are written to "
             "(default: telemetry/)",
    )


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="span-trace the execution fabric (supervisor, fleet "
             "workers, shard barriers, checkpoint/salvage, per-tick "
             "phases) into per-process JSONL files merged into a "
             "Perfetto-loadable trace.json; results and digests are "
             "byte-identical either way",
    )
    parser.add_argument(
        "--trace-dir", metavar="DIR", default="trace",
        help="directory the span files and trace.json land in "
             "(default: trace/)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.08,
                        help="flow/capacity scale factor (1.0 = paper)")
    parser.add_argument("--seconds", type=float, default=8.0,
                        help="measurement window, simulated seconds")
    parser.add_argument("--warmup", type=float, default=4.0,
                        help="warmup before measurement, simulated seconds")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write the rows to DIR/<figure>.csv")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        rows = [[fig, desc] for fig, desc in sorted(FIGURES.items())]
        sys.stdout.write(format_table(["figure", "reproduces"], rows))
        sys.stdout.write("\n")
        return 0
    try:
        if args.command == "run":
            return _run_figures(args)
        if args.command == "chaos":
            return _chaos(args)
        if args.command == "check":
            return _check(args)
        if args.command == "metrics":
            return _metrics(args)
        if args.command == "trace":
            return _trace_cmd(args)
        return _quickstart(args)
    except ReproError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
