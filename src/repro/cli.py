"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the reproducible figures and their one-line descriptions.
``run FIG [options]``
    Run one figure's experiment and print its rows (e.g. ``run fig08``).
``quickstart``
    The README quickstart: FLoc on a flooded link, bandwidth breakdown.

Scale/duration flags apply to the functional figures; internet-scale
figures take ``--variants``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.export import write_csv
from .analysis.report import format_table
from .experiments.common import FunctionalSettings

FIGURES = {
    "fig02": "packet service vs drop rate at a congested link",
    "fig03": "packet-size distribution (synthetic trace)",
    "fig04": "TCP window synchronisation and token consumption",
    "fig06": "attack confinement (tcp/cbr/shrew), per-path bandwidth",
    "fig07": "robustness CDFs across schemes and attack strengths",
    "fig08": "differential bandwidth guarantees vs attack rate",
    "fig09": "legitimate-path aggregation",
    "fig10": "covert attacks vs per-bot fanout",
    "fig11": "internet-scale topology statistics (localized/dispersed)",
    "fig13": "internet-scale bandwidth shares, localized attacks",
    "fig14": "internet-scale bandwidth shares, dispersed attacks",
    "fig15": "internet-scale bandwidth shares, separated placement",
    "faults": "graceful degradation under router restart + link faults",
}


def _settings(args) -> FunctionalSettings:
    return FunctionalSettings(
        scale=args.scale,
        warmup_seconds=args.warmup,
        measure_seconds=args.seconds,
        seed=args.seed,
    )


def _emit(args, name: str, headers, rows, title: str) -> None:
    """Print a result table; optionally mirror it to ``--csv DIR``."""
    sys.stdout.write(format_table(headers, rows, title=title))
    sys.stdout.write("\n")
    if getattr(args, "csv", None):
        path = write_csv(f"{args.csv}/{name}.csv", headers, rows)
        sys.stdout.write(f"wrote {path}\n")


def _run_figure(args) -> int:
    fig = args.figure
    out = sys.stdout
    if fig == "fig02":
        from .experiments.fig02 import run_fig02

        result = run_fig02(_settings(args))
        _emit(args, fig, ["second", "service pkt/s", "drop pkt/s"],
              result.rows, FIGURES[fig])
        out.write(
            f"service/drop ratio: {result.service_to_drop_ratio:.1f}\n"
        )
    elif fig == "fig03":
        from .experiments.fig03 import run_fig03

        result = run_fig03(seed=args.seed)
        rows = sorted(result.mode_fractions.items())
        _emit(args, fig, ["size (B)", "fraction"], rows, FIGURES[fig])
    elif fig == "fig04":
        from .experiments.fig04 import run_fig04

        result = run_fig04(seed=args.seed)
        _emit(
            args, fig, ["case", "token utilization"],
            [
                ["unsynchronized", result.utilization_unsync],
                ["synchronized", result.utilization_sync],
                ["partial", result.utilization_partial],
            ],
            FIGURES[fig],
        )
    elif fig == "fig06":
        from .experiments.common import mean
        from .experiments.fig06 import run_fig06

        rows = []
        for kind in ("tcp", "cbr", "shrew"):
            result = run_fig06(kind, _settings(args))
            rows.append(
                [
                    kind,
                    result.fair_path_mbps,
                    mean(result.legit_path_means),
                    mean(result.attack_path_means),
                ]
            )
        _emit(
            args, fig,
            ["attack", "fair Mbps/path", "legit-path mean",
             "attack-path mean"],
            rows, FIGURES[fig],
        )
    elif fig == "fig07":
        from .experiments.fig07 import run_fig07

        result = run_fig07(_settings(args))
        _emit(args, fig, ["scheme", "bot Mbps", "mean", "p10", "p50", "p90"],
              result.summary_rows(), FIGURES[fig])
        out.write(f"ideal fair per-flow: {result.ideal_flow_mbps:.3f} Mbps\n")
    elif fig == "fig08":
        from .experiments.fig08 import run_fig08

        result = run_fig08(_settings(args))
        _emit(
            args, fig,
            ["scheme", "bot Mbps", "legit-legit", "legit-attack", "attack",
             "util"],
            result.rows(), FIGURES[fig],
        )
    elif fig == "fig09":
        from .experiments.common import mean
        from .experiments.fig09 import run_fig09

        result = run_fig09(_settings(args))
        rows = [
            ["without aggregation",
             mean(result.without_agg.small_domain_rates),
             mean(result.without_agg.big_domain_rates),
             result.without_agg.small_big_ratio],
            ["with aggregation",
             mean(result.with_agg.small_domain_rates),
             mean(result.with_agg.big_domain_rates),
             result.with_agg.small_big_ratio],
        ]
        _emit(
            args, fig,
            ["variant", "small-domain Mbps", "big-domain Mbps", "ratio"],
            rows, FIGURES[fig],
        )
    elif fig == "fig10":
        from .experiments.fig10 import run_fig10

        result = run_fig10(_settings(args))
        _emit(args, fig, ["scheme", "fanout", "legit total", "attack", "util"],
              result.rows(), FIGURES[fig])
    elif fig == "fig11":
        from .experiments.fig11 import run_fig11

        rows = []
        for placement in ("localized", "dispersed"):
            for s in run_fig11(placement, variants=tuple(args.variants)):
                rows.append(
                    [placement, s.variant, s.n_as, s.n_attack_ases,
                     s.red_links, round(s.bot_concentration_top_10pct, 3)]
                )
        _emit(
            args, fig,
            ["placement", "variant", "ASes", "attack ASes", "red links",
             "bot concentration"],
            rows, FIGURES[fig],
        )
    elif fig in ("fig13", "fig14", "fig15"):
        from .experiments.fig13 import run_fig13

        placement = {"fig13": "localized", "fig14": "dispersed",
                     "fig15": "separated"}[fig]
        result = run_fig13(placement=placement, variants=tuple(args.variants))
        _emit(
            args, fig,
            ["variant", "strategy", "legit-legit", "legit-attack", "attack",
             "util"],
            result.rows(), FIGURES[fig],
        )
    elif fig == "faults":
        from .experiments.robustness_faults import run_robustness_faults

        result = run_robustness_faults(_settings(args))
        _emit(
            args, fig,
            ["simulator", "scheme", "pre", "during", "post", "recovery"],
            result.rows(), FIGURES[fig],
        )
    else:
        out.write(f"unknown figure {fig!r}; see `python -m repro list`\n")
        return 2
    return 0


def _quickstart(args) -> int:
    from .analysis.accounting import breakdown
    from .core.config import FLocConfig
    from .core.router import FLocPolicy
    from .traffic.scenarios import build_tree_scenario

    scenario = build_tree_scenario(
        scale_factor=args.scale, attack_kind="cbr", attack_rate_mbps=2.0,
        seed=args.seed,
    )
    scenario.attach_policy(FLocPolicy(FLocConfig(s_max=25)))
    monitor = scenario.add_target_monitor(start_seconds=args.warmup)
    scenario.run_seconds(args.warmup + args.seconds)
    window = scenario.units.seconds_to_ticks(args.seconds)
    result = breakdown(
        monitor,
        list(scenario.legit_flows) + list(scenario.attack_flows),
        scenario.attack_path_ids,
        scenario.capacity,
        window,
    )
    sys.stdout.write(
        format_table(
            ["category", "share"],
            [
                ["legit (clean domains)", result.legit_in_legit],
                ["legit (attack domains)", result.legit_in_attack],
                ["attack", result.attack],
            ],
            title="FLoc on a flooded link",
        )
    )
    sys.stdout.write("\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FLoc reproduction: run the paper's experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figures")

    run = sub.add_parser("run", help="run one figure's experiment")
    run.add_argument("figure", choices=sorted(FIGURES), metavar="FIG")
    _add_common(run)
    run.add_argument(
        "--variants", nargs="+", default=["f-root"],
        help="skitter-map variants for internet-scale figures",
    )

    quick = sub.add_parser("quickstart", help="FLoc vs a CBR flood")
    _add_common(quick)
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.08,
                        help="flow/capacity scale factor (1.0 = paper)")
    parser.add_argument("--seconds", type=float, default=8.0,
                        help="measurement window, simulated seconds")
    parser.add_argument("--warmup", type=float, default=4.0,
                        help="warmup before measurement, simulated seconds")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write the rows to DIR/<figure>.csv")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        rows = [[fig, desc] for fig, desc in sorted(FIGURES.items())]
        sys.stdout.write(format_table(["figure", "reproduces"], rows))
        sys.stdout.write("\n")
        return 0
    if args.command == "run":
        return _run_figure(args)
    return _quickstart(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
