"""RED-PD: RED with Preferential Dropping (Mahajan, Floyd, Wetherall 2001).

A per-flow flooding defense built entirely from the router's *drop
history* (so, like FLoc, it keeps no state for conformant flows):

* recent drops are kept in ``history_lists`` consecutive time intervals;
* a flow appearing in at least ``identify_lists`` of them is *monitored*;
* monitored flows pass a pre-filter that drops their packets with a
  per-flow probability ``p_f`` before they reach the RED queue;
* each interval, ``p_f`` is increased while the flow keeps taking RED
  drops (still sending above the target rate) and decreased when its
  pre-filter sees traffic but the flow stays drop-free; flows whose
  ``p_f`` decays to zero are released.

This is the paper's representative *per-flow* defense (Section VI): it
protects legitimate flows inside attack aggregates but — because it aims
at per-flow fairness among whatever flows exist — it cannot defend against
attacks made of *many individually well-behaved* flows (high-population
TCP or covert attacks), and very-high-rate floods still squeeze
legitimate paths.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Optional

from ..net.packet import DATA, Packet
from .red import RedPolicy


class _MonitoredFlow:
    __slots__ = ("drop_prob", "drops_this_interval", "arrivals_this_interval")

    def __init__(self, drop_prob: float) -> None:
        self.drop_prob = drop_prob
        self.drops_this_interval = 0
        self.arrivals_this_interval = 0


class RedPdPolicy(RedPolicy):
    """RED plus drop-history-driven per-flow preferential dropping."""

    def __init__(
        self,
        interval_ticks: int = 50,
        history_lists: int = 5,
        identify_lists: int = 3,
        initial_drop_prob: float = 0.05,
        prob_step: float = 0.05,
        max_drop_prob: float = 0.95,
        **red_kwargs,
    ) -> None:
        super().__init__(**red_kwargs)
        self.interval_ticks = interval_ticks
        self.history_lists = history_lists
        self.identify_lists = identify_lists
        self.initial_drop_prob = initial_drop_prob
        self.prob_step = prob_step
        self.max_drop_prob = max_drop_prob
        self._history: deque = deque(maxlen=history_lists)  # deque of sets
        self._current_list: set = set()
        self.monitored: Dict[Hashable, _MonitoredFlow] = {}
        self._next_interval: Optional[int] = None
        self.prefilter_drops = 0

    # ------------------------------------------------------------------
    def on_tick(self, tick: int) -> None:
        if self._next_interval is None:
            self._next_interval = tick + self.interval_ticks
        if tick >= self._next_interval:
            self._rotate(tick)
            self._next_interval = tick + self.interval_ticks

    def _rotate(self, tick: int) -> None:
        self._history.append(self._current_list)
        self._current_list = set()
        # identification: flows present in >= identify_lists of the history
        counts: Dict[Hashable, int] = {}
        for interval_set in self._history:
            for key in interval_set:
                counts[key] = counts.get(key, 0) + 1
        for key, hits in counts.items():
            if hits >= self.identify_lists and key not in self.monitored:
                self.monitored[key] = _MonitoredFlow(self.initial_drop_prob)
        # adaptation and release
        released = []
        for key, mon in self.monitored.items():
            if mon.drops_this_interval > 0:
                mon.drop_prob = min(
                    self.max_drop_prob, mon.drop_prob + self.prob_step
                )
            elif mon.arrivals_this_interval > 0:
                mon.drop_prob -= self.prob_step
                if mon.drop_prob <= 0.0:
                    released.append(key)
            mon.drops_this_interval = 0
            mon.arrivals_this_interval = 0
        for key in released:
            del self.monitored[key]

    # ------------------------------------------------------------------
    def _flow_key(self, pkt: Packet) -> Hashable:
        return pkt.flow_id

    def admit(self, pkt: Packet, tick: int) -> bool:
        if pkt.kind != DATA:
            return True
        key = self._flow_key(pkt)
        mon = self.monitored.get(key)
        if mon is not None:
            mon.arrivals_this_interval += 1
            if self._rng.random() < mon.drop_prob:
                self.prefilter_drops += 1
                return False
        admitted = super().admit(pkt, tick)
        if not admitted:
            self._current_list.add(key)
            if mon is not None:
                mon.drops_this_interval += 1
        return admitted
