"""CDF-PSP: history-based bandwidth isolation (related-work baseline).

CDF-PSP (paper Section II) "isolates the bandwidth of 'high priority'
flow aggregates, which conform to historical traffic data, from that of
non-conformant 'low-priority' traffic, and limits collateral damage by
allocating bandwidth proportionally to all high priority traffic first".

Implementation: during an initial *training window* (assumed attack-free,
as the scheme assumes representative history) the router learns each
aggregate's arrival-rate profile (EWMA by origin domain).  Afterwards,
each aggregate's packets are high priority up to its historical rate and
low priority beyond it; low-priority packets are serviced only when the
link is nearly idle.

The paper's critique, which the comparison benchmarks demonstrate:

* legitimate flows that exceed their path's history get low priority
  (bursty-but-honest users are punished), and
* attack flows on historically high-rate paths inherit high allocations
  (history is not legitimacy).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..net.packet import DATA, Packet
from ..net.policy import LinkPolicy


class CdfPspPolicy(LinkPolicy):
    """History-conformance priority admission."""

    def __init__(
        self,
        training_ticks: int = 300,
        history_weight: float = 0.05,
        headroom: float = 1.2,
        idle_fraction: float = 0.05,
        interval_ticks: int = 20,
    ) -> None:
        #: length of the attack-free learning phase
        self.training_ticks = training_ticks
        #: EWMA weight folding an interval's rate into the history
        self.history_weight = history_weight
        #: tolerated burst factor above the historical rate
        self.headroom = headroom
        #: queue occupancy (fraction of buffer) below which low-priority
        #: packets are serviced
        self.idle_fraction = idle_fraction
        self.interval_ticks = interval_ticks
        self.history: Dict[Hashable, float] = {}
        self._interval_counts: Dict[Hashable, int] = {}
        self._credits: Dict[Hashable, float] = {}
        self._next_interval: Optional[int] = None
        self.low_priority_drops = 0

    @staticmethod
    def aggregate_of(pkt: Packet) -> Hashable:
        """Aggregates are traffic locales: the origin domain."""
        return pkt.path_id[0] if pkt.path_id else pkt.src_addr

    def attach(self, link, engine) -> None:
        super().attach(link, engine)
        self._buffer = link.buffer if link.buffer is not None else 1000

    def on_tick(self, tick: int) -> None:
        if self._next_interval is None:
            self._next_interval = tick + self.interval_ticks
        if tick >= self._next_interval:
            self._rollover(tick)
            self._next_interval = tick + self.interval_ticks
        # replenish high-priority credit at the learned historical rate
        if tick > self.training_ticks:
            for agg, rate in self.history.items():
                allowance = rate * self.headroom
                credit = self._credits.get(agg, allowance) + allowance
                self._credits[agg] = min(credit, 2.0 * max(1.0, allowance))

    def _rollover(self, tick: int) -> None:
        learning = tick <= self.training_ticks
        # history is frozen while the link is congested — folding attack
        # load into the profile would launder the attack into "history"
        congested = len(self.link.queue) > 0.3 * self._buffer
        for agg, count in self._interval_counts.items():
            rate = count / self.interval_ticks
            if learning:
                previous = self.history.get(agg)
                if previous is None:
                    self.history[agg] = rate
                else:
                    self.history[agg] = previous + 0.5 * (rate - previous)
            elif not congested:
                previous = self.history.get(agg, 0.0)
                self.history[agg] = previous + self.history_weight * (
                    rate - previous
                )
        self._interval_counts.clear()

    def admit(self, pkt: Packet, tick: int) -> bool:
        if pkt.kind != DATA:
            return True
        agg = self.aggregate_of(pkt)
        counts = self._interval_counts
        counts[agg] = counts.get(agg, 0) + 1
        if tick <= self.training_ticks:
            return True  # learning phase: everything is history
        credit = self._credits.get(agg)
        if credit is None:
            # unseen aggregate: no history at all -> low priority
            credit = 0.0
        if credit >= 1.0:
            self._credits[agg] = credit - 1.0
            return True
        # non-conformant: serviced only when the link is near idle
        if len(self.link.queue) <= self.idle_fraction * self._buffer:
            return True
        self.low_priority_drops += 1
        return False
