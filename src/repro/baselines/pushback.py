"""Pushback: aggregate-based congestion control (Mahajan et al. 2002).

The congested router periodically checks its drop rate.  When it exceeds
a trigger, the router identifies the *aggregates* responsible for most of
the traffic — here, as in the original work, an aggregate is defined by a
traffic "locale": we use the origin AS of the domain-path identifier —
and installs rate limiters on the worst offenders so the post-limit
arrival rate matches the link's comfort level.  Limits are refreshed every
interval and released once an aggregate behaves (or congestion ends).

Optionally, limits are *pushed back*: contribution-proportional limiters
are installed one hop upstream (on the links feeding the congested
router), which is where the original scheme drops traffic early.  In the
single-bottleneck scenarios of the paper's evaluation this changes where,
not whether, packets die, so it defaults to off.

The paper's critique that this class of defense cannot avoid "collateral
damage" inside attack aggregates is structural: the limiter drops
uniformly within an aggregate, legitimate flows included — nothing here
distinguishes them.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..net.packet import DATA, Packet
from ..net.policy import LinkPolicy
from .red import RedPolicy


class _RateLimiter:
    """Leaky-bucket limiter for one aggregate."""

    __slots__ = ("rate", "tokens", "idle_intervals")

    def __init__(self, rate: float) -> None:
        self.rate = rate
        self.tokens = rate
        self.idle_intervals = 0

    def on_tick(self) -> None:
        self.tokens = min(self.rate * 2.0, self.tokens + self.rate)

    def allow(self) -> bool:
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class PushbackPolicy(LinkPolicy):
    """Aggregate congestion control with optional upstream pushback."""

    def __init__(
        self,
        interval_ticks: int = 100,
        drop_rate_trigger: float = 0.10,
        target_utilization: float = 0.95,
        max_aggregates: int = 8,
        release_intervals: int = 5,
        propagate: bool = False,
        queue: Optional[RedPolicy] = None,
    ) -> None:
        self.interval_ticks = interval_ticks
        self.drop_rate_trigger = drop_rate_trigger
        self.target_utilization = target_utilization
        self.max_aggregates = max_aggregates
        self.release_intervals = release_intervals
        self.propagate = propagate
        self.queue = queue or RedPolicy()
        self.limiters: Dict[Hashable, _RateLimiter] = {}
        self._arrivals: Dict[Hashable, int] = {}
        self._interval_drops = 0
        self._interval_serviced = 0
        self._next_interval: Optional[int] = None
        self.limiter_drops = 0
        self._upstream: Dict = {}

    # ------------------------------------------------------------------
    @staticmethod
    def aggregate_of(pkt: Packet) -> Hashable:
        """Aggregates are keyed by the origin domain of the path."""
        return pkt.path_id[0] if pkt.path_id else pkt.src_addr

    def attach(self, link, engine) -> None:
        super().attach(link, engine)
        self.queue.attach(link, engine)
        self.capacity = link.capacity if link.capacity is not None else float("inf")

    # ------------------------------------------------------------------
    def on_tick(self, tick: int) -> None:
        self.queue.on_tick(tick)
        for limiter in self.limiters.values():
            limiter.on_tick()
        if self._next_interval is None:
            self._next_interval = tick + self.interval_ticks
        if tick >= self._next_interval:
            self._adapt(tick)
            self._next_interval = tick + self.interval_ticks

    def _adapt(self, tick: int) -> None:
        total_arr = sum(self._arrivals.values())
        drops = self._interval_drops
        serviced = max(1, self._interval_serviced)
        drop_rate = drops / (drops + serviced)
        congested = drop_rate > self.drop_rate_trigger

        if congested and total_arr > 0:
            # identify: heaviest aggregates whose removal restores the
            # target utilization
            target_rate = self.capacity * self.target_utilization
            arrival_rate = total_arr / self.interval_ticks
            excess = arrival_rate - target_rate
            by_load = sorted(
                self._arrivals.items(), key=lambda kv: kv[1], reverse=True
            )
            chosen = by_load[: self.max_aggregates]
            chosen_rate = sum(v for _, v in chosen) / self.interval_ticks
            if chosen and excess > 0:
                # each chosen aggregate is limited to its share of what
                # remains after removing the excess
                allowed = max(0.0, chosen_rate - excess)
                per_agg = allowed / len(chosen)
                for agg, _count in chosen:
                    limiter = self.limiters.get(agg)
                    if limiter is None:
                        self.limiters[agg] = _RateLimiter(max(0.01, per_agg))
                    else:
                        limiter.rate = max(0.01, per_agg)
                        limiter.idle_intervals = 0
        # release well-behaved limiters
        stale = []
        for agg, limiter in self.limiters.items():
            arrivals = self._arrivals.get(agg, 0) / self.interval_ticks
            if not congested or arrivals < limiter.rate * 0.9:
                limiter.idle_intervals += 1
                if limiter.idle_intervals >= self.release_intervals:
                    stale.append(agg)
            else:
                limiter.idle_intervals = 0
        for agg in stale:
            del self.limiters[agg]

        self._arrivals.clear()
        self._interval_drops = 0
        self._interval_serviced = 0
        if self.propagate:
            self._propagate_upstream()

    def _propagate_upstream(self) -> None:
        """Install contribution-proportional limiters one hop upstream.

        Kept minimal: upstream links inherit this policy's limiter table
        by reference, so drops happen before the bottleneck queue.
        """
        for node in self.engine.topology.predecessors(self.link.src):
            up = self.engine.topology.link(node, self.link.src)
            if up.policy is None:
                up.policy = _UpstreamLimiter(self)
                up.policy.attach(up, self.engine)

    # ------------------------------------------------------------------
    def admit(self, pkt: Packet, tick: int) -> bool:
        if pkt.kind != DATA:
            return True
        agg = self.aggregate_of(pkt)
        self._arrivals[agg] = self._arrivals.get(agg, 0) + 1
        limiter = self.limiters.get(agg)
        if limiter is not None and not limiter.allow():
            self.limiter_drops += 1
            self._interval_drops += 1
            return False
        admitted = self.queue.admit(pkt, tick)
        if admitted:
            self._interval_serviced += 1
        else:
            self._interval_drops += 1
        return admitted


class _UpstreamLimiter(LinkPolicy):
    """Applies the bottleneck's limiter table on an upstream link."""

    def __init__(self, owner: PushbackPolicy) -> None:
        self.owner = owner

    def admit(self, pkt: Packet, tick: int) -> bool:
        if pkt.kind != DATA:
            return True
        limiter = self.owner.limiters.get(PushbackPolicy.aggregate_of(pkt))
        if limiter is not None and not limiter.allow():
            self.owner.limiter_drops += 1
            return False
        return True
