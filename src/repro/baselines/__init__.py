"""Flooding-defense baselines the paper compares against.

* :class:`~repro.baselines.red.RedPolicy` — the RED active queue
  (the paper's "no attack" fairness reference).
* :class:`~repro.baselines.red_pd.RedPdPolicy` — RED with Preferential
  Dropping (Mahajan et al.): per-flow defense driven by drop history.
* :class:`~repro.baselines.pushback.PushbackPolicy` — aggregate-based
  congestion control (Ioannidis & Bellovin): identifies high-rate
  aggregates and rate-limits them.
* :class:`~repro.baselines.fairshare.FairSharePolicy` — the per-flow
  fairness (FF) strategy of the paper's Internet-scale comparison
  (Section VII-C): legitimate flows get priority, attack flows get
  priority only up to their fair share.
* :class:`~repro.baselines.cdf_psp.CdfPspPolicy` — history-conformance
  bandwidth isolation (CDF-PSP, discussed in Section II).
* no defense — :class:`~repro.net.policy.DropTailPolicy` or
  :class:`~repro.net.policy.RandomDropPolicy` from the substrate.
"""

from .cdf_psp import CdfPspPolicy
from .red import RedPolicy
from .red_pd import RedPdPolicy
from .pushback import PushbackPolicy
from .fairshare import FairSharePolicy

__all__ = [
    "CdfPspPolicy",
    "RedPolicy",
    "RedPdPolicy",
    "PushbackPolicy",
    "FairSharePolicy",
]
