"""Per-flow fairness (FF) — the Internet-scale comparison strategy.

Paper Section VII-C describes the scheme exactly: "legitimate TCP flows
are allocated at least as much bandwidth as that of attack flows: all
packets of legitimate flows are assigned a high priority yet those of
attack flows are assigned a high priority up to their fair bandwidth; and
routers process the high priority packets ahead of other normal priority
(attack) packets".

This is an *oracle* baseline — it knows ground-truth flow legitimacy from
the engine's flow table — and represents the ideal outcome of any perfect
per-flow fair-sharing defense.  Its failure mode is structural and is the
point of the comparison: with enough attack flows, per-flow fairness
hands most of the link to the attacker.

Within our FIFO engine, priority service is realised at admission: high
priority packets are admitted up to the buffer, normal priority packets
are admitted only while the queue is nearly empty (the link is "idle").
"""

from __future__ import annotations

from typing import Dict, Optional

from ..net.packet import DATA, Packet
from ..net.policy import LinkPolicy


class FairSharePolicy(LinkPolicy):
    """Oracle per-flow fairness with priority for legitimate traffic."""

    def __init__(
        self,
        idle_fraction: float = 0.05,
        fair_rate: Optional[float] = None,
    ) -> None:
        #: queue occupancy below which the link counts as idle (normal
        #: priority packets are then serviced too)
        self.idle_fraction = idle_fraction
        #: per-flow fair rate in packets/tick; derived at attach time from
        #: the engine flow table when not given
        self.fair_rate = fair_rate
        self._credits: Dict[int, float] = {}
        self.low_priority_drops = 0

    def attach(self, link, engine) -> None:
        super().attach(link, engine)
        self._buffer = link.buffer if link.buffer is not None else 1000
        if self.fair_rate is None:
            n_flows = max(1, len(engine.flows))
            capacity = link.capacity if link.capacity is not None else 1.0
            self.fair_rate = capacity / n_flows

    def on_tick(self, tick: int) -> None:
        # replenish attack flows' high-priority credit at the fair rate
        for flow_id in self._credits:
            credit = self._credits[flow_id] + self.fair_rate
            self._credits[flow_id] = min(credit, 2.0 * max(1.0, self.fair_rate))

    def admit(self, pkt: Packet, tick: int) -> bool:
        if pkt.kind != DATA:
            return True
        flow = self.engine.flows.get(pkt.flow_id)
        is_attack = flow.is_attack if flow is not None else False
        if not is_attack:
            return True  # high priority, buffer-bounded by the engine
        credit = self._credits.get(pkt.flow_id)
        if credit is None:
            credit = max(1.0, self.fair_rate)
        if credit >= 1.0:
            self._credits[pkt.flow_id] = credit - 1.0
            return True  # within fair share: high priority
        self._credits[pkt.flow_id] = credit
        # normal priority: serviced only when the link is close to idle
        if len(self.link.queue) <= self.idle_fraction * self._buffer:
            return True
        self.low_priority_drops += 1
        return False
