"""Random Early Detection (RED) queue management.

Classic RED (Floyd & Jacobson 1993): an EWMA of the queue length drives a
drop probability that rises linearly between ``min_th`` and ``max_th``;
the inter-drop spacing correction (``count``) makes drops roughly uniform.
The "gentle" variant ramps the probability from ``max_p`` to 1 between
``max_th`` and ``2 * max_th`` instead of jumping to 1.

RED gives the paper's no-attack fairness reference (Fig. 7) — it
de-synchronises TCP flows and shares bandwidth reasonably — but it has no
notion of flow legitimacy, which is why it cannot defend against floods.
"""

from __future__ import annotations

import random
from typing import Optional

from ..net.packet import DATA, Packet
from ..net.policy import LinkPolicy


class RedPolicy(LinkPolicy):
    """RED admission control.

    Thresholds default to fractions of the link buffer: ``min_th = 20 %``,
    ``max_th = 60 %``.
    """

    def __init__(
        self,
        min_th: Optional[float] = None,
        max_th: Optional[float] = None,
        max_p: float = 0.10,
        weight: float = 0.002,
        gentle: bool = True,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.weight = weight
        self.gentle = gentle
        self._rng = rng
        self.avg = 0.0
        self._count = -1
        self.forced_drops = 0
        self.early_drops = 0

    def attach(self, link, engine) -> None:
        super().attach(link, engine)
        buffer = link.buffer if link.buffer is not None else 1000
        if self.min_th is None:
            self.min_th = 0.2 * buffer
        if self.max_th is None:
            self.max_th = 0.6 * buffer
        if self._rng is None:
            self._rng = engine.spawn_rng("red")

    def admit(self, pkt: Packet, tick: int) -> bool:
        if pkt.kind != DATA:
            return True
        q = len(self.link.queue)
        self.avg += self.weight * (q - self.avg)
        avg = self.avg
        if avg < self.min_th:
            self._count = -1
            return True
        if avg < self.max_th:
            self._count += 1
            p_b = self.max_p * (avg - self.min_th) / (self.max_th - self.min_th)
            denom = 1.0 - self._count * p_b
            p_a = p_b / denom if denom > 0 else 1.0
            if self._rng.random() < p_a:
                self._count = 0
                self.early_drops += 1
                return False
            return True
        if self.gentle and avg < 2.0 * self.max_th:
            self._count += 1
            p_b = self.max_p + (1.0 - self.max_p) * (avg - self.max_th) / self.max_th
            if self._rng.random() < p_b:
                self._count = 0
                self.forced_drops += 1
                return False
            return True
        self._count = 0
        self.forced_drops += 1
        return False
