"""FIG-13/14/15: Internet-scale bandwidth guarantees.

Paper Section VII-C, Figs. 13-15: the bandwidth used at a flooded 40 Gbps
link by (i) legitimate flows of legitimate (bot-free) ASes, (ii)
legitimate flows of attack ASes and (iii) attack flows, under five
strategies — no defense (ND), per-flow fairness (FF), FLoc without
aggregation (NA), and FLoc with aggregation at two levels (A-200, A-100
in the paper; scaled equivalents here) — across three skitter-map
variants.

* FIG-13: localized attacks (bots in 100 ASes; 30 % of legitimate
  sources intentionally placed in attack ASes).
* FIG-14: dispersed attacks (bots in 300 ASes) — legitimate-path
  bandwidth drops (more attack identifiers share the link) while
  aggregation helps more.
* FIG-15 (the report's closing experiment): "separated" placement — no
  intentional legitimate presence in attack ASes.

Shape claims asserted by the benches: ND denies legitimate service
(~0 %); FF leaves legitimate flows ~20 %; FLoc lifts them to the
legitimate-path share of identifiers (~70 %+); aggregation increases
legitimate-path bandwidth and decreases attack-path bandwidth; per-flow,
legitimate flows of attack ASes beat bots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..inet.scenarios import build_internet_scenario
from ..inet.simulator import FluidResult, FluidSimulator
from ..sanitize import install_sanitizer


@dataclass
class InternetRunSettings:
    """Size/duration knobs for internet-scale runs (see scenario docs)."""

    n_as: int = 500
    n_legit_sources: int = 2_000
    n_legit_ases: int = 100
    n_bots: int = 20_000
    target_capacity: float = 1_000.0
    ticks: int = 400
    warmup: int = 200
    seed: int = 7
    #: (label, strategy, s_max) triples; s_max values are the scaled
    #: equivalents of the paper's A-200 / A-100
    strategies: Tuple[Tuple[str, str, Optional[int]], ...] = (
        ("ND", "nd", None),
        ("FF", "ff", None),
        ("NA", "floc", None),
        ("A-hi", "floc", 80),
        ("A-lo", "floc", 40),
    )


@dataclass
class Fig13Result:
    """(variant, strategy label) -> fluid result."""

    placement: str
    results: Dict[Tuple[str, str], FluidResult] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, str, float, float, float, float]]:
        """Rows (variant, strategy, legit-legit, legit-attack, attack, util)."""
        return [
            (
                variant,
                label,
                r.shares["legit_in_legit"],
                r.shares["legit_in_attack"],
                r.shares["attack"],
                r.utilization,
            )
            for (variant, label), r in sorted(self.results.items())
        ]


def run_fig13(
    placement: str = "localized",
    variants: Tuple[str, ...] = ("f-root", "h-root", "jpn"),
    settings: InternetRunSettings = None,
    sanitize: Optional[str] = None,
) -> Fig13Result:
    """Run the strategy sweep for one placement across map variants.

    ``placement``: "localized" (FIG-13), "dispersed" (FIG-14) or
    "separated" (FIG-15).  ``sanitize`` installs the runtime invariant
    layer on every simulator ("strict" or "record").
    """
    settings = settings or InternetRunSettings()
    out = Fig13Result(placement=placement)
    for variant in variants:
        scenario = build_internet_scenario(
            variant=variant,
            placement=placement,
            n_as=settings.n_as,
            n_legit_sources=settings.n_legit_sources,
            n_legit_ases=settings.n_legit_ases,
            n_bots=settings.n_bots,
            target_capacity=settings.target_capacity,
            seed=settings.seed,
        )
        for label, strategy, s_max in settings.strategies:
            sim = FluidSimulator(
                scenario, strategy=strategy, s_max=s_max, seed=settings.seed
            )
            install_sanitizer(sim, sanitize)
            out.results[(variant, label)] = sim.run(
                ticks=settings.ticks, warmup=settings.warmup
            )
    return out


def run_fig14(**kwargs) -> Fig13Result:
    """FIG-14: the dispersed-attack variant of the sweep."""
    return run_fig13(placement="dispersed", **kwargs)


def run_fig15(**kwargs) -> Fig13Result:
    """FIG-15: the separated (no forced overlap) variant of the sweep."""
    return run_fig13(placement="separated", **kwargs)
