"""Robustness experiment: FLoc vs baselines under injected faults.

Not a paper figure — a reliability study the paper's deployment story
implies but never measures: what happens to legitimate bandwidth when the
defending router itself fails mid-attack?  Three measurement phases of
equal length bracket the fault window:

* **pre** — steady state under the flood, defense converged;
* **during** — the defending policy is crash-restarted (volatile state
  wiped, FLoc in its warm-up fallback) and one ingress uplink flaps
  (packet level: ``root.0 -> root`` goes down and flows reroute over a
  backup cross-link; fluid level: the busiest legitimate AS uplink is
  degraded to 30 % capacity);
* **post** — all faults cleared; measures how much of the pre-fault
  legitimate bandwidth the defense wins back.

The headline number is ``recovery_ratio = post / pre`` for legitimate
traffic: a dependable defense should sit near 1.0 (state regenerates from
live traffic), and during the fault it should degrade no worse than the
no-defense baseline rather than locking legitimate flows out on cold
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import FLocConfig
from ..faults import FaultSchedule, FluidLinkDegrade, fluid_restart
from ..inet.scenarios import build_internet_scenario
from ..inet.simulator import FluidSimulator
from ..net.engine import LinkMonitor
from ..sanitize import install_sanitizer
from ..traffic.scenarios import ROOT, build_tree_scenario
from .common import FunctionalSettings, make_policy

#: Packet-level schemes compared (a stateful defense vs stateless bases).
PACKET_SCHEMES = ("floc", "fairshare", "droptail")
#: Fluid-level strategies compared.
FLUID_STRATEGIES = ("floc", "nd")


@dataclass
class PhaseBandwidth:
    """Legitimate bandwidth share across the three fault phases."""

    simulator: str  # "packet" or "fluid"
    scheme: str
    pre: float  # legit share of target capacity, pre-fault phase
    during: float  # ... while the faults are active
    post: float  # ... after all faults cleared
    fault_log: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def recovery_ratio(self) -> float:
        """``post / pre``; 1.0 when there was nothing to recover."""
        if self.pre <= 1e-12:
            return 1.0
        return self.post / self.pre


@dataclass
class RobustnessFaultsResult:
    """Outcome of the combined packet-level + fluid-level study."""

    packet: List[PhaseBandwidth]
    fluid: List[PhaseBandwidth]

    def rows(self) -> List[List]:
        rows = []
        for entry in self.packet + self.fluid:
            rows.append(
                [
                    entry.simulator,
                    entry.scheme,
                    round(entry.pre, 4),
                    round(entry.during, 4),
                    round(entry.post, 4),
                    round(entry.recovery_ratio, 3),
                ]
            )
        return rows


def _phase_ticks(settings: FunctionalSettings, units) -> Tuple[int, int]:
    warmup = units.seconds_to_ticks(settings.warmup_seconds)
    phase = max(1, units.seconds_to_ticks(settings.measure_seconds) // 3)
    return warmup, phase


def run_packet_faults(
    settings: FunctionalSettings,
    schemes: Sequence[str] = PACKET_SCHEMES,
) -> List[PhaseBandwidth]:
    """Packet-level study: restart the target policy and flap an uplink."""
    results = []
    for scheme in schemes:
        scenario = build_tree_scenario(
            scale_factor=settings.scale,
            attack_kind="cbr",
            attack_rate_mbps=2.0,
            seed=settings.seed,
        )
        # Backup cross-link between the root's first two subtrees.  Added
        # after flow setup so initial shortest routes are unchanged; it
        # only carries traffic while the root.0 uplink is down.
        scenario.topology.add_duplex_link("root.0", "root.1", capacity=None)

        warmup, phase = _phase_ticks(settings, scenario.units)
        t1 = warmup + phase  # faults begin
        t2 = t1 + phase  # faults cleared
        t3 = t2 + phase  # end of post-fault phase

        cfg = FLocConfig(
            s_max=settings.s_max,
            restart_warmup_ticks=max(1, phase // 2),
        )
        scenario.attach_policy(make_policy(scheme, settings, cfg))
        monitors = [
            scenario.engine.add_monitor(
                *scenario.target, LinkMonitor(start_tick=a, stop_tick=b)
            )
            for a, b in ((warmup, t1), (t1, t2), (t2, t3))
        ]

        faults = FaultSchedule()
        faults.router_restart(*scenario.target, tick=t1)
        faults.link_flap(
            "root.0", ROOT,
            down_tick=t1 + phase // 4,
            up_tick=t1 + (3 * phase) // 4,
        )
        faults.install(scenario.engine)
        install_sanitizer(scenario.engine, settings.sanitize)
        scenario.engine.run(t3)

        legit_ids = {f.flow_id for f in scenario.legit_flows}
        budget = scenario.capacity * phase

        def legit_share(monitor: LinkMonitor) -> float:
            serviced = sum(
                count
                for flow_id, count in monitor.service_counts.items()
                if flow_id in legit_ids
            )
            return serviced / budget

        pre, during, post = (legit_share(m) for m in monitors)
        results.append(
            PhaseBandwidth(
                simulator="packet",
                scheme=scheme,
                pre=pre,
                during=during,
                post=post,
                fault_log=list(faults.log),
            )
        )
    return results


def _busiest_legit_as(scn) -> int:
    """The non-attack AS hosting the most legitimate flows."""
    counts = np.bincount(
        scn.flow_origin_as[~scn.flow_is_attack], minlength=scn.n_links
    )
    counts[0] = 0  # the target itself hosts no sources
    for asn in scn.attack_ases:
        counts[asn] = 0
    return int(counts.argmax())


def run_fluid_faults(
    settings: FunctionalSettings,
    strategies: Sequence[str] = FLUID_STRATEGIES,
    warmup: int = 100,
    phase: int = 100,
    scenario_kwargs: Optional[dict] = None,
) -> List[PhaseBandwidth]:
    """Fluid-level study: defense restart + legit-uplink degradation."""
    kwargs = dict(
        n_as=300,
        n_legit_sources=800,
        n_legit_ases=60,
        n_bots=8_000,
        target_capacity=400.0,
        seed=settings.seed,
    )
    if scenario_kwargs:
        kwargs.update(scenario_kwargs)

    results = []
    for strategy in strategies:
        scn = build_internet_scenario(**kwargs)
        sim = FluidSimulator(
            scn, strategy=strategy, s_max=settings.s_max, seed=settings.seed
        )
        t1 = warmup + phase
        t2 = t1 + phase
        t3 = t2 + phase

        faults = FaultSchedule()
        faults.at(
            t1, fluid_restart(warmup_ticks=max(1, phase // 2)),
            name="defense-restart",
        )
        degrade = FluidLinkDegrade(_busiest_legit_as(scn), factor=0.3)
        faults.at(t1, degrade.down, name="uplink-degrade")
        faults.at(t2, degrade.up, name="uplink-restore")
        faults.install(sim)
        install_sanitizer(sim, settings.sanitize)

        result = sim.run(ticks=t3, warmup=warmup, record_series=True)

        def legit_share(a: int, b: int) -> float:
            window = [
                ll + la for tick, ll, la, _ in result.series if a <= tick < b
            ]
            return sum(window) / len(window) if window else 0.0

        results.append(
            PhaseBandwidth(
                simulator="fluid",
                scheme=strategy,
                pre=legit_share(warmup, t1),
                during=legit_share(t1, t2),
                post=legit_share(t2, t3),
                fault_log=list(faults.log),
            )
        )
    return results


def run_robustness_faults(
    settings: FunctionalSettings,
    packet_schemes: Sequence[str] = PACKET_SCHEMES,
    fluid_strategies: Sequence[str] = FLUID_STRATEGIES,
) -> RobustnessFaultsResult:
    """Run both halves of the robustness study."""
    return RobustnessFaultsResult(
        packet=run_packet_faults(settings, packet_schemes),
        fluid=run_fluid_faults(settings, fluid_strategies),
    )
