"""Experiment runners — one module per paper figure.

Each ``run_*`` function builds the scenario, attaches the scheme under
test, simulates, and returns a structured result object whose fields map
directly onto the figure's series.  The benchmark harness
(``benchmarks/``) calls these runners, prints the rows, and asserts the
paper's *shape* claims (who wins, by roughly what factor).

Functional evaluation (Section VI): fig02, fig03, fig04, fig06, fig07,
fig08, fig09, fig10.  Internet-scale evaluation (Section VII): fig11
(+fig12 via parameters), fig13, fig14, fig15.  Beyond the paper:
``robustness_faults`` measures graceful degradation under injected
router/link failures (see :mod:`repro.faults`).
"""

from .common import FunctionalSettings, make_policy, run_breakdown

__all__ = ["FunctionalSettings", "make_policy", "run_breakdown"]
