"""FIG-4: TCP window synchronisation and token consumption.

Paper Section IV-A, Fig. 4: the aggregate token request of ``n`` TCP
flows depends on their synchronisation.

* unsynchronised flows (peak windows uniformly spread in time) request
  tokens at a near-constant aggregate rate — the base bucket achieves
  ~100 % token consumption;
* fully synchronised flows oscillate between ``n * W/2`` and ``n * W``,
  consuming only 3/4 of tokens sized for the peak — hence the 4/3 bucket
  correction;
* partially synchronised (i.i.d.) flows fluctuate with standard deviation
  ``sqrt(n) * sigma_W``, absorbed by the Eq. (IV.3) increased bucket.

This module generates the deterministic sawtooth series and the resulting
utilisation numbers analytically (it needs no packet simulation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..tcp import model


def sawtooth_window(peak: float, period: int, phase: int, t: int) -> float:
    """Idealised AIMD window at time ``t``: W/2 -> W over ``period`` steps."""
    frac = ((t + phase) % period) / period
    return peak / 2.0 + (peak / 2.0) * frac


def aggregate_request_series(
    n_flows: int,
    peak: float,
    period: int,
    mode: str,
    steps: int,
    seed: int = 1,
) -> List[float]:
    """Aggregate window (token-request) series for a synchronisation mode.

    ``mode`` is ``"unsync"`` (phases evenly spread), ``"sync"`` (identical
    phases) or ``"partial"`` (random phases).
    """
    if mode == "unsync":
        phases = [int(i * period / n_flows) for i in range(n_flows)]
    elif mode == "sync":
        phases = [0] * n_flows
    elif mode == "partial":
        rng = random.Random(seed)
        phases = [rng.randrange(period) for _ in range(n_flows)]
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return [
        sum(sawtooth_window(peak, period, ph, t) for ph in phases)
        for t in range(steps)
    ]


def token_utilization(series: List[float], bucket: float) -> float:
    """Fraction of generated tokens consumed when requests are capped at
    ``bucket`` tokens per period."""
    granted = sum(min(x, bucket) for x in series)
    generated = bucket * len(series)
    return granted / generated if generated else 0.0


@dataclass
class Fig04Result:
    """Utilisation per synchronisation mode and the bucket sizes used."""

    n_flows: int
    peak_window: float
    base_bucket: float
    increased_bucket: float
    sync_bucket: float
    utilization_unsync: float
    utilization_sync: float
    utilization_partial: float
    series_sync: List[float]
    series_unsync: List[float]


def run_fig04(
    n_flows: int = 30,
    bandwidth: float = 15.0,
    rtt: float = 12.0,
    steps: int = 600,
    seed: int = 1,
) -> Fig04Result:
    """Generate the Fig. 4 series and token-consumption numbers."""
    peak = model.peak_window(bandwidth, rtt, n_flows)
    period = max(2, int(round(peak / 2.0 * rtt)))  # one congestion epoch
    # the aggregate request per epoch equals the sustained request at the
    # mean window; size buckets relative to that
    mean_aggregate = n_flows * model.mean_window(peak)
    unsync = aggregate_request_series(n_flows, peak, period, "unsync", steps)
    sync = aggregate_request_series(n_flows, peak, period, "sync", steps)
    partial = aggregate_request_series(
        n_flows, peak, period, "partial", steps, seed=seed
    )
    ratio = model.increased_bucket_size(1.0, 1.0, n_flows)  # 1 + 2/(3 sqrt n)
    return Fig04Result(
        n_flows=n_flows,
        peak_window=peak,
        base_bucket=mean_aggregate,
        increased_bucket=mean_aggregate * ratio,
        sync_bucket=mean_aggregate * 4.0 / 3.0,
        utilization_unsync=token_utilization(unsync, mean_aggregate),
        utilization_sync=token_utilization(sync, mean_aggregate * 4.0 / 3.0),
        utilization_partial=token_utilization(partial, mean_aggregate * ratio),
        series_sync=sync,
        series_unsync=unsync,
    )
