"""Shared plumbing for the functional (Section VI) experiments."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.accounting import (
    BandwidthBreakdown,
    breakdown,
    per_flow_rates,
)
from ..baselines import (
    CdfPspPolicy,
    FairSharePolicy,
    PushbackPolicy,
    RedPdPolicy,
    RedPolicy,
)
from ..core.config import FLocConfig
from ..core.router import FLocPolicy
from ..errors import ConfigError
from ..net.policy import DropTailPolicy, RandomDropPolicy
from ..sanitize import MODES as SANITIZE_MODES
from ..sanitize import install_sanitizer
from ..traffic.scenarios import TreeScenario

#: Scheme names accepted by :func:`make_policy`.
SCHEMES = (
    "floc",
    "floc-noagg",
    "floc-nopref",
    "floc-filter",
    "pushback",
    "redpd",
    "red",
    "droptail",
    "randomdrop",
    "fairshare",
    "cdfpsp",
)


@dataclass
class FunctionalSettings:
    """Run-size knobs shared by the functional experiments.

    ``scale`` shrinks flow counts and link capacity together (per-flow
    fair shares are invariant); the defaults keep a full figure
    reproduction within minutes on a laptop.  Use ``scale=1.0`` and the
    paper's timings (measurement from 20 s to 80 s) for full-fidelity
    runs.
    """

    scale: float = 0.1
    warmup_seconds: float = 5.0
    measure_seconds: float = 15.0
    seed: int = 1
    s_max: Optional[int] = None  # |S|_max for FLoc runs that aggregate
    #: runtime invariant checking: None/"off", "strict" or "record"
    #: (see :mod:`repro.sanitize`)
    sanitize: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.scale > 0:
            raise ConfigError(
                f"scale must be > 0, got {self.scale!r}"
            )
        if not self.warmup_seconds > 0:
            raise ConfigError(
                f"warmup_seconds must be > 0, got {self.warmup_seconds!r}"
            )
        if not self.measure_seconds > 0:
            raise ConfigError(
                f"measure_seconds must be > 0, got {self.measure_seconds!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigError(
                f"seed must be an int, got {self.seed!r}"
            )
        if self.s_max is not None and self.s_max < 1:
            raise ConfigError(f"s_max must be >= 1, got {self.s_max!r}")
        if self.sanitize not in (None, "off") + SANITIZE_MODES:
            raise ConfigError(
                f"sanitize must be one of {(None, 'off') + SANITIZE_MODES}, "
                f"got {self.sanitize!r}"
            )

    @property
    def total_seconds(self) -> float:
        return self.warmup_seconds + self.measure_seconds


def make_policy(
    scheme: str,
    settings: FunctionalSettings,
    floc_config: Optional[FLocConfig] = None,
):
    """Instantiate the admission policy for a scheme name."""
    if scheme not in SCHEMES:
        raise ConfigError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    if scheme.startswith("floc"):
        # never mutate a caller-supplied config: the same FLocConfig is
        # often reused across the schemes of a sweep
        cfg = (
            floc_config
            if floc_config is not None
            else FLocConfig(s_max=settings.s_max)
        )
        if scheme == "floc-noagg":
            cfg = replace(cfg, s_max=None, min_guaranteed_share=None)
        elif scheme == "floc-nopref":
            cfg = replace(cfg, preferential_drop=False)
        elif scheme == "floc-filter":
            cfg = replace(cfg, use_drop_filter=True)
        return FLocPolicy(cfg)
    if scheme == "pushback":
        return PushbackPolicy()
    if scheme == "redpd":
        return RedPdPolicy()
    if scheme == "red":
        return RedPolicy()
    if scheme == "fairshare":
        return FairSharePolicy()
    if scheme == "cdfpsp":
        return CdfPspPolicy()
    if scheme == "randomdrop":
        return RandomDropPolicy()
    return DropTailPolicy()


@dataclass
class RunResult:
    """Outcome of one scenario run under one scheme."""

    scheme: str
    breakdown: BandwidthBreakdown
    legit_in_legit_rates: List[float]  # Mbps per flow
    legit_in_attack_rates: List[float]
    attack_rates: List[float]
    extra: Dict = field(default_factory=dict)


def run_breakdown(
    scenario: TreeScenario,
    scheme: str,
    settings: FunctionalSettings,
    floc_config: Optional[FLocConfig] = None,
) -> RunResult:
    """Attach a scheme, run, and compute the category breakdown."""
    policy = make_policy(scheme, settings, floc_config)
    scenario.attach_policy(policy)
    sanitizer = install_sanitizer(scenario.engine, settings.sanitize)
    monitor = scenario.add_target_monitor(
        start_seconds=settings.warmup_seconds,
        stop_seconds=settings.total_seconds,
    )
    scenario.run_seconds(settings.total_seconds)

    window_ticks = scenario.units.seconds_to_ticks(
        settings.total_seconds
    ) - scenario.units.seconds_to_ticks(settings.warmup_seconds)
    all_flows = list(scenario.legit_flows) + list(scenario.attack_flows)
    result_breakdown = breakdown(
        monitor,
        all_flows,
        scenario.attack_path_ids,
        scenario.capacity,
        window_ticks,
    )
    attack_paths = set(scenario.attack_path_ids)
    lil = [f.flow_id for f in scenario.legit_flows if f.path_id not in attack_paths]
    lia = [f.flow_id for f in scenario.legit_flows if f.path_id in attack_paths]
    att = [f.flow_id for f in scenario.attack_flows]
    return RunResult(
        scheme=scheme,
        breakdown=result_breakdown,
        legit_in_legit_rates=per_flow_rates(
            monitor, lil, window_ticks, scenario.units
        ),
        legit_in_attack_rates=per_flow_rates(
            monitor, lia, window_ticks, scenario.units
        ),
        attack_rates=per_flow_rates(monitor, att, window_ticks, scenario.units),
        extra={"monitor": monitor, "policy": policy, "sanitizer": sanitizer},
    )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean, 0.0 for empty input."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0
