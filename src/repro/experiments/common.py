"""Shared plumbing for the functional (Section VI) experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.accounting import (
    BandwidthBreakdown,
    breakdown,
    per_flow_rates,
)
from ..baselines import (
    CdfPspPolicy,
    FairSharePolicy,
    PushbackPolicy,
    RedPdPolicy,
    RedPolicy,
)
from ..core.config import FLocConfig
from ..core.router import FLocPolicy
from ..errors import ConfigError
from ..net.policy import DropTailPolicy, RandomDropPolicy
from ..traffic.scenarios import TreeScenario

#: Scheme names accepted by :func:`make_policy`.
SCHEMES = (
    "floc",
    "floc-noagg",
    "floc-nopref",
    "floc-filter",
    "pushback",
    "redpd",
    "red",
    "droptail",
    "randomdrop",
    "fairshare",
    "cdfpsp",
)


@dataclass
class FunctionalSettings:
    """Run-size knobs shared by the functional experiments.

    ``scale`` shrinks flow counts and link capacity together (per-flow
    fair shares are invariant); the defaults keep a full figure
    reproduction within minutes on a laptop.  Use ``scale=1.0`` and the
    paper's timings (measurement from 20 s to 80 s) for full-fidelity
    runs.
    """

    scale: float = 0.1
    warmup_seconds: float = 5.0
    measure_seconds: float = 15.0
    seed: int = 1
    s_max: Optional[int] = None  # |S|_max for FLoc runs that aggregate

    @property
    def total_seconds(self) -> float:
        return self.warmup_seconds + self.measure_seconds


def make_policy(
    scheme: str,
    settings: FunctionalSettings,
    floc_config: Optional[FLocConfig] = None,
):
    """Instantiate the admission policy for a scheme name."""
    if scheme not in SCHEMES:
        raise ConfigError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    if scheme.startswith("floc"):
        cfg = floc_config or FLocConfig(s_max=settings.s_max)
        if scheme == "floc-noagg":
            cfg.s_max = None
            cfg.min_guaranteed_share = None
        elif scheme == "floc-nopref":
            cfg.preferential_drop = False
        elif scheme == "floc-filter":
            cfg.use_drop_filter = True
        return FLocPolicy(cfg)
    if scheme == "pushback":
        return PushbackPolicy()
    if scheme == "redpd":
        return RedPdPolicy()
    if scheme == "red":
        return RedPolicy()
    if scheme == "fairshare":
        return FairSharePolicy()
    if scheme == "cdfpsp":
        return CdfPspPolicy()
    if scheme == "randomdrop":
        return RandomDropPolicy()
    return DropTailPolicy()


@dataclass
class RunResult:
    """Outcome of one scenario run under one scheme."""

    scheme: str
    breakdown: BandwidthBreakdown
    legit_in_legit_rates: List[float]  # Mbps per flow
    legit_in_attack_rates: List[float]
    attack_rates: List[float]
    extra: Dict = field(default_factory=dict)


def run_breakdown(
    scenario: TreeScenario,
    scheme: str,
    settings: FunctionalSettings,
    floc_config: Optional[FLocConfig] = None,
) -> RunResult:
    """Attach a scheme, run, and compute the category breakdown."""
    policy = make_policy(scheme, settings, floc_config)
    scenario.attach_policy(policy)
    monitor = scenario.add_target_monitor(
        start_seconds=settings.warmup_seconds,
        stop_seconds=settings.total_seconds,
    )
    scenario.run_seconds(settings.total_seconds)

    window_ticks = scenario.units.seconds_to_ticks(
        settings.total_seconds
    ) - scenario.units.seconds_to_ticks(settings.warmup_seconds)
    all_flows = list(scenario.legit_flows) + list(scenario.attack_flows)
    result_breakdown = breakdown(
        monitor,
        all_flows,
        scenario.attack_path_ids,
        scenario.capacity,
        window_ticks,
    )
    attack_paths = set(scenario.attack_path_ids)
    lil = [f.flow_id for f in scenario.legit_flows if f.path_id not in attack_paths]
    lia = [f.flow_id for f in scenario.legit_flows if f.path_id in attack_paths]
    att = [f.flow_id for f in scenario.attack_flows]
    return RunResult(
        scheme=scheme,
        breakdown=result_breakdown,
        legit_in_legit_rates=per_flow_rates(
            monitor, lil, window_ticks, scenario.units
        ),
        legit_in_attack_rates=per_flow_rates(
            monitor, lia, window_ticks, scenario.units
        ),
        attack_rates=per_flow_rates(monitor, att, window_ticks, scenario.units),
        extra={"monitor": monitor, "policy": policy},
    )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean, 0.0 for empty input."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0
