"""FIG-11 / FIG-12: Internet-scale simulation topologies.

Paper Section VII-A, Figs. 11-12: AS-level topologies built from skitter
maps with bots placed per the CBL distribution — localized (100 attack
ASes, Fig. 11) and dispersed (300 attack ASes, Fig. 12) — drawn with ASes
aligned by AS-hop distance to the target and attack-adjacent links in
red.

The reproducible content is the topology *statistics*: AS counts by
distance to the target, the number of attack-adjacent ("red") links, bot
concentration, and the legitimate/attack AS overlap.  The benches print
these rows per variant and assert the construction invariants (95 % bot
concentration, the requested dispersion, the 30 % overlap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..inet.scenarios import InternetScenario, build_internet_scenario


@dataclass
class TopologyStats:
    """Shape statistics of one generated Internet-scale topology."""

    variant: str
    placement: str
    n_as: int
    n_attack_ases: int
    n_legit_sources: int
    n_bots: int
    depth_histogram: Dict[int, int]
    red_links: int  # links on some bot's path to the target
    total_links: int
    bot_concentration_top_10pct: float
    legit_in_attack_as_fraction: float
    mean_attack_depth: float
    mean_legit_depth: float


def topology_stats(scenario: InternetScenario) -> TopologyStats:
    """Compute the Fig. 11/12-style statistics for a scenario."""
    topo = scenario.topology
    attack_set = set(scenario.attack_ases)

    red = set()
    for asn in attack_set:
        node = asn
        while node != 0:
            red.add(node)
            node = topo.parent[node]
        red.add(0)

    origins = scenario.flow_origin_as
    is_attack = scenario.flow_is_attack
    depth = np.asarray(topo.depth)
    legit_origins = origins[~is_attack]
    attack_origins = origins[is_attack]
    in_attack_as = np.isin(legit_origins, list(attack_set))

    bots_per_as = np.bincount(attack_origins, minlength=topo.n_as)
    counts = np.sort(bots_per_as[bots_per_as > 0])[::-1]
    top = max(1, round(0.10 * len(counts)))
    concentration = counts[:top].sum() / max(1, counts.sum())

    return TopologyStats(
        variant=topo.variant,
        placement=scenario.placement,
        n_as=topo.n_as,
        n_attack_ases=len(attack_set),
        n_legit_sources=int((~is_attack).sum()),
        n_bots=int(is_attack.sum()),
        depth_histogram=topo.depth_histogram(),
        red_links=len(red),
        total_links=topo.n_as,  # one uplink per AS (incl. target link)
        bot_concentration_top_10pct=float(concentration),
        legit_in_attack_as_fraction=float(in_attack_as.mean()),
        mean_attack_depth=float(depth[attack_origins].mean()),
        mean_legit_depth=float(depth[legit_origins].mean()),
    )


def run_fig11(
    placement: str = "localized",
    variants: Tuple[str, ...] = ("f-root", "h-root", "jpn"),
    **scenario_kwargs,
) -> List[TopologyStats]:
    """Generate the three topology variants and collect their statistics.

    ``placement="localized"`` reproduces Fig. 11; ``"dispersed"``
    reproduces Fig. 12.
    """
    stats = []
    for variant in variants:
        scenario = build_internet_scenario(
            variant=variant, placement=placement, **scenario_kwargs
        )
        stats.append(topology_stats(scenario))
    return stats
