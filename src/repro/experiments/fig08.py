"""FIG-8: differential bandwidth guarantees vs attack send rate.

Paper Section VI-C, Fig. 8: with ``|S|_max = 25`` (so at least four of the
six attack paths must aggregate), the link bandwidth used by

* legitimate flows of legitimate paths,
* legitimate flows of attack paths, and
* attack flows

is measured while the per-bot send rate sweeps 0.2 - 4.0 Mbps, for FLoc,
Pushback and RED-PD.  The paper's shape claims: FLoc keeps the
legitimate-path share above ~80 % (close to 21/25 = 0.84) at every rate,
and as bots speed up, FLoc's preferential drops hand their bandwidth to
the legitimate flows *inside* attack paths; Pushback sacrifices
legitimate flows in attack paths; RED-PD loses legitimate-path bandwidth
at high rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..analysis.accounting import BandwidthBreakdown
from ..core.config import FLocConfig
from ..traffic.scenarios import build_tree_scenario
from .common import FunctionalSettings, run_breakdown


@dataclass
class Fig08Result:
    """(scheme, per-bot Mbps) -> category bandwidth breakdown."""

    s_max: int
    breakdowns: Dict[Tuple[str, float], BandwidthBreakdown] = field(
        default_factory=dict
    )

    def rows(self) -> List[Tuple[str, float, float, float, float, float]]:
        """Rows (scheme, rate, legit-legit, legit-attack, attack, util)."""
        return [
            (
                scheme,
                rate,
                b.legit_in_legit,
                b.legit_in_attack,
                b.attack,
                b.utilization,
            )
            for (scheme, rate), b in sorted(self.breakdowns.items())
        ]


def run_fig08(
    settings: FunctionalSettings = FunctionalSettings(),
    schemes: Tuple[str, ...] = ("floc", "pushback", "redpd"),
    attack_rates_mbps: Tuple[float, ...] = (0.2, 0.4, 0.8, 1.6, 3.2, 4.0),
    s_max: int = 25,
) -> Fig08Result:
    """Sweep schemes x per-bot rates with attack-path aggregation on."""
    result = Fig08Result(s_max=s_max)
    for scheme in schemes:
        for rate in attack_rates_mbps:
            scenario = build_tree_scenario(
                scale_factor=settings.scale,
                attack_kind="cbr",
                attack_rate_mbps=rate,
                seed=settings.seed,
                start_spread_seconds=1.0,
            )
            cfg = FLocConfig(s_max=s_max) if scheme.startswith("floc") else None
            run = run_breakdown(scenario, scheme, settings, floc_config=cfg)
            result.breakdowns[(scheme, rate)] = run.breakdown
    return result
