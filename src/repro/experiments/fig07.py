"""FIG-7: robustness of bandwidth guarantees across attack strengths.

Paper Section VI-B, Figs. 7(a)-(c): CDFs of the bandwidth received by
flows of *legitimate paths* under CBR attacks of increasing strength, for
FLoc, Pushback and RED-PD (with the RED no-attack case as the fairness
reference).  FLoc's CDFs are nearly invariant in attack strength and
centred on the ideal fair rate (0.617 Mbps); Pushback's and RED-PD's
shift left as attacks intensify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..analysis.cdf import percentile
from ..traffic.scenarios import build_tree_scenario
from .common import FunctionalSettings, mean, run_breakdown


@dataclass
class Fig07Result:
    """Per (scheme, attack rate): legit-path per-flow bandwidth samples."""

    ideal_flow_mbps: float
    #: (scheme, per-bot Mbps) -> list of per-flow Mbps of legit-path flows
    samples: Dict[Tuple[str, float], List[float]] = field(default_factory=dict)

    def summary_rows(self) -> List[Tuple[str, float, float, float, float, float]]:
        """Rows (scheme, rate, mean, p10, p50, p90)."""
        rows = []
        for (scheme, rate), values in sorted(self.samples.items()):
            rows.append(
                (
                    scheme,
                    rate,
                    mean(values),
                    percentile(values, 0.10),
                    percentile(values, 0.50),
                    percentile(values, 0.90),
                )
            )
        return rows


def run_fig07(
    settings: FunctionalSettings = FunctionalSettings(),
    schemes: Tuple[str, ...] = ("floc", "pushback", "redpd"),
    attack_rates_mbps: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    include_red_reference: bool = True,
) -> Fig07Result:
    """Sweep schemes x CBR strengths; collect legit-path flow bandwidths."""
    result = Fig07Result(ideal_flow_mbps=0.0)
    for scheme in schemes:
        for rate in attack_rates_mbps:
            scenario = build_tree_scenario(
                scale_factor=settings.scale,
                attack_kind="cbr",
                attack_rate_mbps=rate,
                seed=settings.seed,
                start_spread_seconds=1.0,
            )
            run = run_breakdown(scenario, scheme, settings)
            result.samples[(scheme, rate)] = run.legit_in_legit_rates
    if include_red_reference:
        scenario = build_tree_scenario(
            scale_factor=settings.scale,
            attack_kind="none",
            seed=settings.seed,
            start_spread_seconds=1.0,
        )
        run = run_breakdown(scenario, "red", settings)
        result.samples[("red-noattack", 0.0)] = run.legit_in_legit_rates
        # ideal fair rate: link capacity split over all legit flows
        n_flows = len(scenario.legit_flows)
        result.ideal_flow_mbps = scenario.units.pkts_per_tick_to_mbps(
            scenario.capacity / max(1, n_flows)
        )
    return result
