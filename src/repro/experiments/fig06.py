"""FIG-6: attack confinement under three flooding strategies.

Paper Section VI-A, Figs. 6(a)-(c): with FLoc on the 27-path tree,
per-path bandwidth stays near the fair allocation (500/27 = 18.5 Mbps)
regardless of whether a path hosts attackers, for

* (a) the high-population TCP attack (extra TCP sources — adaptive,
  indistinguishable per flow; confinement comes from per-path buckets),
* (b) the CBR attack (360 x 2.0 Mbps = 720 Mbps offered on a 500 Mbps
  link; attack flows have tiny MTDs and are rate-limited), where
  legitimate paths do slightly *better* than in (a) because the bucket
  activates early for attack paths,
* (c) the coordinated Shrew attack (2.0 Mbps bursts for 0.25 RTT each
  RTT), handled at least as well as CBR but with higher variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.timeseries import CategorySeriesMonitor
from ..core.config import FLocConfig
from ..traffic.scenarios import build_tree_scenario
from .common import FunctionalSettings, make_policy


@dataclass
class Fig06Result:
    """Per-path mean bandwidth (Mbps) and time series for one attack."""

    attack_kind: str
    fair_path_mbps: float  # C / n_paths, in (scaled) Mbps
    path_mean_mbps: Dict[Tuple[int, ...], float]
    attack_path_ids: List[Tuple[int, ...]]
    path_series: Dict[Tuple[int, ...], List[float]]  # pkts/tick per bin

    @property
    def legit_path_means(self) -> List[float]:
        attack = set(self.attack_path_ids)
        return [v for k, v in self.path_mean_mbps.items() if k not in attack]

    @property
    def attack_path_means(self) -> List[float]:
        attack = set(self.attack_path_ids)
        return [v for k, v in self.path_mean_mbps.items() if k in attack]


def run_fig06(
    attack_kind: str,
    settings: FunctionalSettings = FunctionalSettings(),
    attack_rate_mbps: float = 2.0,
) -> Fig06Result:
    """Run one confinement experiment (``attack_kind`` in tcp/cbr/shrew)."""
    scenario = build_tree_scenario(
        scale_factor=settings.scale,
        attack_kind=attack_kind,
        attack_rate_mbps=attack_rate_mbps,
        seed=settings.seed,
        start_spread_seconds=1.0,
    )
    scenario.attach_policy(make_policy("floc", settings, FLocConfig()))
    units = scenario.units
    start = units.seconds_to_ticks(settings.warmup_seconds)
    stop = units.seconds_to_ticks(settings.total_seconds)
    bin_ticks = units.seconds_to_ticks(1.0)
    monitor = CategorySeriesMonitor(
        key_fn=lambda pkt: pkt.path_id,
        bin_ticks=bin_ticks,
        start_tick=start,
        stop_tick=stop,
    )
    scenario.engine.add_monitor(*scenario.target, monitor)
    scenario.run_seconds(settings.total_seconds)

    n_bins = int(settings.measure_seconds)
    path_mean = {}
    path_series = {}
    for pid in scenario.path_ids:
        series = monitor.rate_series(pid, n_bins)
        path_series[pid] = series
        path_mean[pid] = units.pkts_per_tick_to_mbps(
            sum(series) / len(series) if series else 0.0
        )
    fair = units.pkts_per_tick_to_mbps(scenario.capacity / len(scenario.path_ids))
    return Fig06Result(
        attack_kind=attack_kind,
        fair_path_mbps=fair,
        path_mean_mbps=path_mean,
        attack_path_ids=list(scenario.attack_path_ids),
        path_series=path_series,
    )
