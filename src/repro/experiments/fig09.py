"""FIG-9: legitimate-path aggregation.

Paper Section VI-C, Fig. 9: three of the 21 uncontaminated domains host
only 15 legitimate sources while the rest host 30.  With strictly
per-path allocation, flows of the under-populated (small) domains receive
up to twice the bandwidth of flows in populated (big) domains;
legitimate-path aggregation merges the paths so allocation becomes
proportional to flow counts and the per-flow distribution evens out.

In this reproduction the *size* of the without-aggregation gap depends on
how much time the router spends in flooding mode (only there do the
per-path buckets bind strictly; the congested-mode random drop is
deliberately neutral, Section V-A), so the reproduction target is the
*direction*: small-domain flows beat big-domain flows without
aggregation, and aggregation closes that gap.  Legitimate flows of
aggregated *attack* paths keep link access but at reduced rates — the
expected differential-guarantee outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.cdf import percentile
from ..core.config import FLocConfig
from ..traffic.scenarios import build_tree_scenario
from .common import FunctionalSettings, mean, run_breakdown


def _coefficient_of_variation(values: List[float]) -> float:
    m = mean(values)
    if m <= 0.0 or len(values) < 2:
        return 0.0
    var = sum((v - m) ** 2 for v in values) / (len(values) - 1)
    return (var ** 0.5) / m


@dataclass
class Fig09Variant:
    """Per-flow bandwidth samples of one run, split by domain size."""

    all_rates: List[float]
    small_domain_rates: List[float]
    big_domain_rates: List[float]
    attack_path_rates: List[float]

    @property
    def small_big_ratio(self) -> float:
        """Mean small-domain flow rate over mean big-domain flow rate."""
        big = mean(self.big_domain_rates)
        return mean(self.small_domain_rates) / big if big > 0 else float("inf")

    @property
    def cv(self) -> float:
        """Coefficient of variation of legit-path per-flow bandwidth."""
        return _coefficient_of_variation(self.all_rates)

    def spread_ratio(self) -> float:
        """p90/p10 of per-flow bandwidth — 1.0 is perfectly even."""
        p10 = percentile(self.all_rates, 0.10)
        p90 = percentile(self.all_rates, 0.90)
        return p90 / p10 if p10 > 0 else float("inf")


@dataclass
class Fig09Result:
    """With/without legitimate-path aggregation."""

    with_agg: Fig09Variant
    without_agg: Fig09Variant


def run_fig09(
    settings: FunctionalSettings = FunctionalSettings(),
    small_domain_sources: int = 15,
    s_max: int = 25,
    buffer_fraction: float = 0.3,
) -> Fig09Result:
    """Run the uneven-population scenario with aggregation on and off.

    ``buffer_fraction`` shrinks the target-link buffer so the flood keeps
    the router in flooding mode part of the time, where the per-path
    buckets bind (see module docstring).
    """
    probe = build_tree_scenario(scale_factor=settings.scale, attack_kind="cbr")
    attack_leaf_pids = set(probe.attack_path_ids)
    legit_leaf_indices = [
        i for i, pid in enumerate(probe.path_ids) if pid not in attack_leaf_pids
    ]
    overrides: Dict[int, int] = {
        i: small_domain_sources for i in legit_leaf_indices[::3]
    }
    small_pids = {probe.path_ids[i] for i in overrides}

    variants = {}
    for label, legit_agg in (("with", True), ("without", False)):
        scenario = build_tree_scenario(
            scale_factor=settings.scale,
            attack_kind="cbr",
            attack_rate_mbps=2.0,
            seed=settings.seed,
            start_spread_seconds=1.0,
            legit_count_overrides=overrides,
        )
        link = scenario.topology.link(*scenario.target)
        link.buffer = max(30, int(link.buffer * buffer_fraction))
        cfg = FLocConfig(s_max=s_max, legitimate_aggregation=legit_agg)
        run = run_breakdown(scenario, "floc", settings, floc_config=cfg)
        legit_leaf_flows = [
            f
            for f in scenario.legit_flows
            if f.path_id not in attack_leaf_pids
        ]
        small, big = [], []
        for flow, rate in zip(legit_leaf_flows, run.legit_in_legit_rates):
            (small if flow.path_id in small_pids else big).append(rate)
        variants[label] = Fig09Variant(
            all_rates=run.legit_in_legit_rates,
            small_domain_rates=small,
            big_domain_rates=big,
            attack_path_rates=run.legit_in_attack_rates,
        )
    return Fig09Result(with_agg=variants["with"], without_agg=variants["without"])
