"""FIG-10: covert attacks.

Paper Section VI-D, Fig. 10: each of the 360 bots opens 1..20 concurrent
low-rate (0.2 Mbps — exactly the fair per-flow rate) connections to
*different destinations* across the target link.  At 7 connections/bot the
offered attack load already exceeds the 500 Mbps link.

* FLoc with ``n_max = 2``: a bot's flows collapse into at most two
  accounting units, which look like high-rate flows and are
  preferentially dropped — attack bandwidth is capped near
  ``n_max * fair share`` per bot (28.8 % of the link in the paper's
  setting) regardless of fanout.
* Pushback reacts only once aggregate drop rates are extreme (~12
  connections/bot) and sacrifices legitimate flows of attack paths.
* RED-PD's per-flow fairness hands the attacker bandwidth proportional
  to its flow count — at fanout 20 the 7200 attack flows vs 810
  legitimate flows get ~90 % of the link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..analysis.accounting import BandwidthBreakdown
from ..core.config import FLocConfig
from ..traffic.scenarios import build_tree_scenario
from .common import FunctionalSettings, run_breakdown


@dataclass
class Fig10Result:
    """(scheme, fanout) -> category bandwidth breakdown."""

    n_max: int
    per_flow_rate_mbps: float
    breakdowns: Dict[Tuple[str, int], BandwidthBreakdown] = field(
        default_factory=dict
    )

    def rows(self) -> List[Tuple[str, int, float, float, float]]:
        """Rows (scheme, fanout, legit total, attack, utilization)."""
        return [
            (scheme, fanout, b.legit_total, b.attack, b.utilization)
            for (scheme, fanout), b in sorted(self.breakdowns.items())
        ]


def run_fig10(
    settings: FunctionalSettings = FunctionalSettings(),
    schemes: Tuple[str, ...] = ("floc", "pushback", "redpd"),
    fanouts: Tuple[int, ...] = (1, 2, 5, 10, 20),
    per_flow_rate_mbps: float = 0.2,
    n_max: int = 2,
) -> Fig10Result:
    """Sweep schemes x covert fanout."""
    result = Fig10Result(n_max=n_max, per_flow_rate_mbps=per_flow_rate_mbps)
    for scheme in schemes:
        for fanout in fanouts:
            scenario = build_tree_scenario(
                scale_factor=settings.scale,
                attack_kind="covert",
                attack_rate_mbps=per_flow_rate_mbps,
                covert_fanout=fanout,
                n_servers=max(fanout, 1),
                seed=settings.seed,
                start_spread_seconds=1.0,
            )
            cfg = (
                FLocConfig(n_max=n_max) if scheme.startswith("floc") else None
            )
            run = run_breakdown(scenario, scheme, settings, floc_config=cfg)
            result.breakdowns[(scheme, fanout)] = run.breakdown
    return result
