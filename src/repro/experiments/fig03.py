"""FIG-3: packet-size distribution of Internet traffic.

The paper argues (Section III-D) it is sufficient to reason about
full-sized packets: measured traffic is bimodal at 40 B (control) and
1500 B (full-sized data), with a secondary ~1300 B mode attributed to VPN
tunnelling.  Real traces are not redistributable; we reproduce the shape
with the documented synthetic generator (see DESIGN.md substitutions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..traffic.trace import PacketSizeDistribution


@dataclass
class Fig03Result:
    """Sampled sizes, CDF points and per-mode mass."""

    cdf: List[Tuple[int, float]]
    mode_fractions: Dict[int, float]
    n_samples: int


def run_fig03(n_samples: int = 50_000, seed: int = 1) -> Fig03Result:
    """Sample the packet-size mixture and summarise its distribution."""
    dist = PacketSizeDistribution()
    rng = random.Random(seed)
    sizes = dist.sample(n_samples, rng)
    return Fig03Result(
        cdf=dist.cdf(sizes),
        mode_fractions=dist.mode_fractions(sizes),
        n_samples=n_samples,
    )
