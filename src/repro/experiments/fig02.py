"""FIG-2: packet service rate vs drop rate at a congested link.

Paper Section III-D, Fig. 2: even when TCP flows' bandwidth is controlled
by a router's packet drops, the service rate exceeds the drop rate by
orders of magnitude — the observation that makes drop-side state (the
drop-record filter) cheap enough for backbone routers.

We reproduce the figure's content by congesting a drop-tail link with
persistent TCP flows and recording per-second service and drop rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..net.engine import LinkMonitor
from ..sanitize import install_sanitizer
from ..traffic.scenarios import build_tree_scenario
from .common import FunctionalSettings, make_policy


@dataclass
class Fig02Result:
    """Per-second service/drop rates and their overall ratio."""

    rows: List[Tuple[float, float, float]]  # (second, service pkt/s, drop pkt/s)
    service_total: int
    drop_total: int

    @property
    def service_to_drop_ratio(self) -> float:
        return self.service_total / max(1, self.drop_total)


def run_fig02(settings: FunctionalSettings = FunctionalSettings()) -> Fig02Result:
    """Run the normal-operation (no attack) congestion measurement."""
    scenario = build_tree_scenario(
        scale_factor=settings.scale,
        attack_kind="none",
        seed=settings.seed,
        start_spread_seconds=1.0,
    )
    scenario.attach_policy(make_policy("droptail", settings))
    install_sanitizer(scenario.engine, settings.sanitize)
    units = scenario.units
    start = units.seconds_to_ticks(settings.warmup_seconds)
    stop = units.seconds_to_ticks(settings.total_seconds)
    per_second = units.seconds_to_ticks(1.0)

    class _PerSecond(LinkMonitor):
        def __init__(self) -> None:
            super().__init__(start_tick=start, stop_tick=stop)
            self.service_bins = {}
            self.drop_bins = {}

        def on_service(self, pkt, tick):
            super().on_service(pkt, tick)
            if self._in_window(tick):
                b = (tick - start) // per_second
                self.service_bins[b] = self.service_bins.get(b, 0) + 1

        def on_drop(self, pkt, tick):
            super().on_drop(pkt, tick)
            if self._in_window(tick):
                b = (tick - start) // per_second
                self.drop_bins[b] = self.drop_bins.get(b, 0) + 1

    monitor = _PerSecond()
    scenario.engine.add_monitor(*scenario.target, monitor)
    scenario.run_seconds(settings.total_seconds)

    n_bins = int(settings.measure_seconds)
    rows = [
        (
            settings.warmup_seconds + b,
            float(monitor.service_bins.get(b, 0)),
            float(monitor.drop_bins.get(b, 0)),
        )
        for b in range(n_bins)
    ]
    return Fig02Result(
        rows=rows,
        service_total=monitor.total_serviced,
        drop_total=monitor.total_dropped,
    )
