"""Worker liveness: heartbeat files and the supervisor-side reader.

The cooperative :class:`~repro.runner.supervisor.Watchdog` cannot see a
worker hung inside a C call, frozen by the OS, or killed outright — the
poll point never runs.  The fleet closes that gap with a *heartbeat
file* per worker:

* the worker side (:class:`Heartbeat`) rewrites its file — atomically,
  via temp + ``os.replace``, so the supervisor never reads a torn JSON —
  from two places: a daemon *pulse thread* beating every
  ``interval_seconds`` (proves the process is alive and scheduled: a
  SIGSTOP, an OOM freeze, or a GIL-holding hang in C all silence it),
  and the job path itself at start/finish and at cooperative poll
  points (carries *progress*: which job, how many beats into it);
* the supervisor side (:class:`HeartbeatMonitor`) remembers, per
  worker, when the file content last *changed* on its own monotonic
  clock.  ``stale()`` after ``timeout_seconds`` of no change convicts
  the worker, and the pool SIGKILLs it and reassigns its job.

The pulse thread deliberately checks a ``suppressed`` flag before every
write: the ``stall_worker`` process fault flips it to simulate a frozen
process end-to-end (beats stop, the monitor convicts, the pool kills),
without needing to actually wedge the interpreter.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, Optional


def heartbeat_path(directory: str, worker_id: int) -> str:
    return os.path.join(directory, f"worker-{worker_id:03d}.hb.json")


def _atomic_write_text(path: str, text: str) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=".hb-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class Heartbeat:
    """Worker-side heartbeat writer with a background pulse thread."""

    def __init__(
        self,
        directory: str,
        worker_id: int,
        interval_seconds: float = 0.1,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.path = heartbeat_path(directory, worker_id)
        self.worker_id = worker_id
        self.interval_seconds = interval_seconds
        self.suppressed = False
        self._beats = 0
        self._state = "starting"
        self._job: Optional[str] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        self.beat("idle")
        self._thread = threading.Thread(
            target=self._pulse, name="heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)

    def _pulse(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.beat()

    # -- beats ----------------------------------------------------------
    def beat(self, state: Optional[str] = None, job: Optional[str] = None) -> None:
        """Rewrite the heartbeat file (no-op while ``suppressed``)."""
        if self.suppressed:
            return
        with self._lock:
            self._beats += 1
            if state is not None:
                self._state = state
                if state != "run":
                    self._job = None
            if job is not None:
                self._job = job
            payload = {
                "pid": os.getpid(),
                "worker": self.worker_id,
                "beats": self._beats,
                "state": self._state,
                "job": self._job,
            }
            try:
                _atomic_write_text(self.path, json.dumps(payload))
            except OSError:
                pass  # a beat lost to disk pressure is not worth dying for


class HeartbeatMonitor:
    """Supervisor-side staleness tracking over all workers' files.

    Staleness is judged on the *supervisor's* monotonic clock from the
    moment the content last changed — never from timestamps inside the
    file, which a frozen worker could have written arbitrarily long ago.
    """

    def __init__(
        self,
        directory: str,
        timeout_seconds: float = 30.0,
    ) -> None:
        self.directory = directory
        self.timeout_seconds = timeout_seconds
        # worker_id -> (last content, monotonic time it changed)
        self._seen: Dict[int, Any] = {}

    def observe(self, worker_id: int) -> None:
        """Record the current content of one worker's heartbeat file."""
        try:
            with open(heartbeat_path(self.directory, worker_id), "rb") as fh:
                content = fh.read()
        except OSError:
            content = b""
        now = time.monotonic()
        known = self._seen.get(worker_id)
        if known is None or known[0] != content:
            self._seen[worker_id] = (content, now)

    def stale(self, worker_id: int) -> bool:
        """Whether the worker's heartbeat has not changed for too long."""
        self.observe(worker_id)
        known = self._seen.get(worker_id)
        if known is None:  # pragma: no cover - observe always records
            return False
        return time.monotonic() - known[1] > self.timeout_seconds

    def forget(self, worker_id: int) -> None:
        """Drop a dead worker's tracking state and heartbeat file."""
        self._seen.pop(worker_id, None)
        try:
            os.unlink(heartbeat_path(self.directory, worker_id))
        except OSError:
            pass

    def snapshot(self, worker_id: int) -> Optional[Dict[str, Any]]:
        """Parsed content of one heartbeat file (None if unreadable)."""
        try:
            with open(
                heartbeat_path(self.directory, worker_id), "r", encoding="utf-8"
            ) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None
