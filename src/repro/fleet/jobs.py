"""Picklable task descriptors: what crosses the spawn boundary.

A spawn-started worker shares nothing with the supervisor, so tasks must
pickle — but the unit callables in :mod:`repro.runner.figures` are
closures over settings and sweep cells, which do not.  The fix is to
ship the *recipe* instead of the closure: a frozen dataclass carrying
only primitives (figure name, unit name, settings fields, campaign spec
dict).  The worker rebuilds the closure table from the recipe — unit
construction is cheap; the expensive part is running the simulation —
and selects its unit by name.  Determinism is free: the rebuilt unit is
the same pure function of the same settings/seed the serial runner would
have called.

Task ``name``s double as checkpoint keys in the shared
:class:`~repro.runner.checkpoint.CheckpointStore`, so the serial and
fleet paths salvage each other's progress.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..chaos.engine import CampaignJob, ChaosOptions, build_chaos_units
from ..chaos.spec import CampaignSpec
from ..errors import ConfigError
from ..experiments.common import FunctionalSettings
from ..runner.figures import build_figure_job
from ..runner.supervisor import UnitContext

__all__ = [
    "ChaosCampaignTask",
    "FigureUnitTask",
    "FleetTask",
    "ShardUnitTask",
    "chaos_tasks",
    "figure_tasks",
    "shard_figure_tasks",
]

#: figure -> bot placement for the internet-scale figures (the only
#: figures the fluid simulator — and therefore sharding — applies to)
INTERNET_PLACEMENTS = {
    "fig13": "localized",
    "fig14": "dispersed",
    "fig15": "separated",
}


@dataclass(frozen=True)
class FigureUnitTask:
    """One cell of a figure sweep, by recipe."""

    figure: str
    unit: str
    settings: Dict[str, Any]
    variants: Tuple[str, ...] = ("f-root",)

    @property
    def name(self) -> str:
        return self.unit

    def run(self, ctx: UnitContext) -> Any:
        job = build_figure_job(
            self.figure,
            FunctionalSettings(**self.settings),
            variants=self.variants,
        )
        for name, fn in job.units:
            if name == self.unit:
                return fn(ctx)
        raise ConfigError(
            f"figure {self.figure!r} has no unit {self.unit!r}"
        )


@dataclass(frozen=True)
class ChaosCampaignTask:
    """One chaos campaign, by spec dict."""

    campaign: str
    spec: Dict[str, Any]
    shrink: bool = True
    max_shrink_trials: int = 64
    artifact_dir: Optional[str] = None

    @property
    def name(self) -> str:
        return self.campaign

    def run(self, ctx: UnitContext) -> Any:
        job = CampaignJob(
            CampaignSpec.from_dict(self.spec),
            shrink=self.shrink,
            max_shrink_trials=self.max_shrink_trials,
            artifact_dir=self.artifact_dir,
        )
        return job(ctx)


@dataclass(frozen=True)
class ShardUnitTask:
    """One shard of one internet-figure unit, by recipe.

    All shards of a unit form a *gang* (``gang`` = the unit name): the
    pool launches them together — they advance lock-step through the
    barrier exchange and none can finish without the others — and the
    unit's merged result is assembled by the caller from the per-shard
    pieces via :func:`repro.inet.shard.merge_shard_results`.
    """

    figure: str
    unit: str  # e.g. "fig13:f-root:ND" — matches the serial unit name
    variant: str
    placement: str
    label: str
    strategy: str
    s_max: Optional[int]
    shard: int
    n_shards: int
    epoch_ticks: int
    barrier_timeout_seconds: float
    settings: Dict[str, Any]  # InternetRunSettings scalar fields

    @property
    def name(self) -> str:
        return f"{self.unit}#s{self.shard}of{self.n_shards}"

    @property
    def gang(self) -> Optional[str]:
        return self.unit if self.n_shards > 1 else None

    def run(self, ctx: UnitContext) -> Any:
        from ..inet.shard import BarrierExchange, ShardSpec, partition_scenario
        from ..runner.resumable import FluidRun, run_checkpointed

        task = self

        def build() -> FluidRun:
            from ..inet.simulator import FluidSimulator
            from ..sanitize import install_sanitizer

            scenario = _build_internet_scenario_for(task)
            spec = ShardSpec(
                shard=task.shard,
                n_shards=task.n_shards,
                shard_of_as=partition_scenario(
                    scenario, task.n_shards, int(task.settings["seed"])
                ),
            )
            sim = FluidSimulator(
                scenario,
                strategy=task.strategy,
                s_max=task.s_max,
                seed=int(task.settings["seed"]),
                shard=spec,
            )
            install_sanitizer(sim, ctx.sanitize)
            return FluidRun(
                sim,
                ticks=int(task.settings["ticks"]),
                warmup=int(task.settings["warmup"]),
                payload=task.unit,
            )

        def prepare(run: FluidRun) -> None:
            # fresh exchange on every (re)start: checkpoints deliberately
            # drop it, and the poll hook (heartbeat pulse) is live state
            exchange = BarrierExchange(
                ctx.store.exchange_dir(task.unit),
                run.sim._shard,
                epoch_ticks=task.epoch_ticks,
                timeout_seconds=task.barrier_timeout_seconds,
            )
            if ctx.watchdog is not None:
                exchange.poll_hook = ctx.watchdog.check
            run.sim.attach_exchange(exchange)

        if ctx.store is None:
            raise ConfigError(
                f"shard task {self.name} needs a checkpoint store: the "
                "barrier exchange and salvage protocol live in it"
            )
        # checkpoint every barrier epoch (not ctx.checkpoint_interval):
        # the salvage guarantee is "a dead shard resumes from the last
        # barrier", so snapshot cadence and epoch cadence must agree
        return run_checkpointed(
            ctx.store,
            self.name,
            build,
            _finish_shard_run,
            checkpoint_interval=self.epoch_ticks,
            shutdown=ctx.shutdown,
            watchdog=ctx.watchdog,
            prepare=prepare,
        )


def _build_internet_scenario_for(task: ShardUnitTask) -> Any:
    from ..inet.scenarios import build_internet_scenario

    s = task.settings
    return build_internet_scenario(
        variant=task.variant,
        placement=task.placement,
        n_as=int(s["n_as"]),
        n_legit_sources=int(s["n_legit_sources"]),
        n_legit_ases=int(s["n_legit_ases"]),
        n_bots=int(s["n_bots"]),
        target_capacity=float(s["target_capacity"]),
        seed=int(s["seed"]),
        # the fluid simulator never reads per-flow link chains; 10^6-flow
        # benches skip building them (see build_internet_scenario)
        build_flow_links=bool(s.get("build_flow_links", True)),
    )


def _finish_shard_run(run: Any) -> Any:
    from ..inet.shard import shard_result

    return shard_result(run.sim, run.payload)


# Any task descriptor; all expose `.name` and `.run(ctx)`.
FleetTask = Any


def figure_tasks(
    figure: str,
    settings: FunctionalSettings,
    variants: Tuple[str, ...] = ("f-root",),
) -> List[FigureUnitTask]:
    """Tasks for one figure, in the serial runner's canonical order."""
    job = build_figure_job(figure, settings, variants=variants)
    recipe = asdict(settings)
    return [
        FigureUnitTask(
            figure=figure,
            unit=name,
            settings=recipe,
            variants=tuple(variants),
        )
        for name, _ in job.units
    ]


def shard_figure_tasks(
    figure: str,
    n_shards: int,
    variants: Tuple[str, ...] = ("f-root",),
    epoch_ticks: int = 50,
    barrier_timeout_seconds: float = 120.0,
) -> List[ShardUnitTask]:
    """Shard tasks for one internet figure, unit-major in the serial
    runner's canonical order (all shards of a unit adjacent)."""
    if figure not in INTERNET_PLACEMENTS:
        raise ConfigError(
            f"--shards applies only to the internet-scale figures "
            f"{tuple(sorted(INTERNET_PLACEMENTS))}, not {figure!r}"
        )
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    from ..experiments.fig13 import InternetRunSettings

    iset = InternetRunSettings()
    settings = {
        "n_as": iset.n_as,
        "n_legit_sources": iset.n_legit_sources,
        "n_legit_ases": iset.n_legit_ases,
        "n_bots": iset.n_bots,
        "target_capacity": iset.target_capacity,
        "ticks": iset.ticks,
        "warmup": iset.warmup,
        "seed": iset.seed,
    }
    placement = INTERNET_PLACEMENTS[figure]
    return [
        ShardUnitTask(
            figure=figure,
            unit=f"{figure}:{variant}:{label}",
            variant=variant,
            placement=placement,
            label=label,
            strategy=strategy,
            s_max=s_max,
            shard=shard,
            n_shards=n_shards,
            epoch_ticks=epoch_ticks,
            barrier_timeout_seconds=barrier_timeout_seconds,
            settings=settings,
        )
        for variant in variants
        for label, strategy, s_max in iset.strategies
        for shard in range(n_shards)
    ]


def chaos_tasks(options: ChaosOptions) -> List[ChaosCampaignTask]:
    """Tasks for one chaos sweep, in sweep (canonical) order."""
    options.validate()
    return [
        ChaosCampaignTask(
            campaign=name,
            spec=unit.spec.to_dict(),
            shrink=unit.shrink,
            max_shrink_trials=unit.max_shrink_trials,
            artifact_dir=unit.artifact_dir,
        )
        for name, unit in build_chaos_units(options)
    ]
