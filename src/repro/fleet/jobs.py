"""Picklable task descriptors: what crosses the spawn boundary.

A spawn-started worker shares nothing with the supervisor, so tasks must
pickle — but the unit callables in :mod:`repro.runner.figures` are
closures over settings and sweep cells, which do not.  The fix is to
ship the *recipe* instead of the closure: a frozen dataclass carrying
only primitives (figure name, unit name, settings fields, campaign spec
dict).  The worker rebuilds the closure table from the recipe — unit
construction is cheap; the expensive part is running the simulation —
and selects its unit by name.  Determinism is free: the rebuilt unit is
the same pure function of the same settings/seed the serial runner would
have called.

Task ``name``s double as checkpoint keys in the shared
:class:`~repro.runner.checkpoint.CheckpointStore`, so the serial and
fleet paths salvage each other's progress.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..chaos.engine import CampaignJob, ChaosOptions, build_chaos_units
from ..chaos.spec import CampaignSpec
from ..errors import ConfigError
from ..experiments.common import FunctionalSettings
from ..runner.figures import build_figure_job
from ..runner.supervisor import UnitContext

__all__ = [
    "ChaosCampaignTask",
    "FigureUnitTask",
    "FleetTask",
    "chaos_tasks",
    "figure_tasks",
]


@dataclass(frozen=True)
class FigureUnitTask:
    """One cell of a figure sweep, by recipe."""

    figure: str
    unit: str
    settings: Dict[str, Any]
    variants: Tuple[str, ...] = ("f-root",)

    @property
    def name(self) -> str:
        return self.unit

    def run(self, ctx: UnitContext) -> Any:
        job = build_figure_job(
            self.figure,
            FunctionalSettings(**self.settings),
            variants=self.variants,
        )
        for name, fn in job.units:
            if name == self.unit:
                return fn(ctx)
        raise ConfigError(
            f"figure {self.figure!r} has no unit {self.unit!r}"
        )


@dataclass(frozen=True)
class ChaosCampaignTask:
    """One chaos campaign, by spec dict."""

    campaign: str
    spec: Dict[str, Any]
    shrink: bool = True
    max_shrink_trials: int = 64
    artifact_dir: Optional[str] = None

    @property
    def name(self) -> str:
        return self.campaign

    def run(self, ctx: UnitContext) -> Any:
        job = CampaignJob(
            CampaignSpec.from_dict(self.spec),
            shrink=self.shrink,
            max_shrink_trials=self.max_shrink_trials,
            artifact_dir=self.artifact_dir,
        )
        return job(ctx)


# Either descriptor; both expose `.name` and `.run(ctx)`.
FleetTask = Any


def figure_tasks(
    figure: str,
    settings: FunctionalSettings,
    variants: Tuple[str, ...] = ("f-root",),
) -> List[FigureUnitTask]:
    """Tasks for one figure, in the serial runner's canonical order."""
    job = build_figure_job(figure, settings, variants=variants)
    recipe = asdict(settings)
    return [
        FigureUnitTask(
            figure=figure,
            unit=name,
            settings=recipe,
            variants=tuple(variants),
        )
        for name, _ in job.units
    ]


def chaos_tasks(options: ChaosOptions) -> List[ChaosCampaignTask]:
    """Tasks for one chaos sweep, in sweep (canonical) order."""
    options.validate()
    return [
        ChaosCampaignTask(
            campaign=name,
            spec=unit.spec.to_dict(),
            shrink=unit.shrink,
            max_shrink_trials=unit.max_shrink_trials,
            artifact_dir=unit.artifact_dir,
        )
        for name, unit in build_chaos_units(options)
    ]
