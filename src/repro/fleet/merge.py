"""Deterministic reduction of per-task telemetry into one registry.

Parallel determinism rests on two pillars.  First, every unit job and
chaos campaign is a pure function of its spec and seed (seed-per-shard:
seeds derive from names/indices, never from which worker ran what), so
*results* are trivially order-independent.  Second, telemetry: a serial
run threads one shared :class:`~repro.telemetry.Telemetry` through all
units, so its registry reflects units folded in canonical order.  The
fleet instead gives every task a fresh telemetry of the same mode and
ships it back with the result; this module folds those per-task pieces
together **in canonical task order** (the serial unit order, regardless
of completion order or worker assignment), reproducing the serial
registry kind by kind:

* ``Counter`` — piece values sum.
* ``Gauge`` — last writer wins; a piece that never touched the gauge
  leaves the running value alone, exactly like a unit that never set it.
* ``LabeledCounter`` / ``BinnedCounter`` — per-label/bin sums, label
  insertion order = first-seen in canonical order (serial insertion
  order), which matters because ``metrics.json`` preserves it.
* ``LabeledGauge`` — per-label last-write-wins: these hold absolute
  engine scrapes, so the later shard replaces, never sums.
* ``TickSeries`` — pieces concatenate group-by-group with the serial
  pending-point protocol: a piece whose first group continues the
  running pending tick accumulates into it rather than opening a new
  group, and the merged series ends with the last piece's pending state
  unflushed — byte-for-byte what one shared series would hold.
* ``RingSeries`` — replay pieces' surviving samples in order into a
  fresh ring of the same capacity.  Each piece survives at least the
  suffix the final ring needs, so the result equals the serial ring.
* ``Histogram`` — counts/total/sum add; bounds must agree.
* ``TraceLog`` — events concatenate under one ``maxlen`` window while
  ``emitted_total``/``counts_by_kind`` sum, so eviction accounting
  matches a single shared log.

The one caveat is float addition: counters that accumulate fractional
volumes (the fluid model's ``*_pkts`` counters) are summed per piece
first and may differ from serial in the last ulp.  Integer-valued
metrics — everything the packet engine emits — merge exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..telemetry import NullTelemetry, Telemetry
from ..telemetry.events import TraceLog
from ..telemetry.registry import (
    BinnedCounter,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    LabeledGauge,
    Metric,
    MetricsRegistry,
    RingSeries,
    TickSeries,
)

__all__ = ["merge_telemetry", "merge_registries"]


def _merge_tick_series(out: TickSeries, piece: TickSeries) -> None:
    groups: List[Tuple[int, int]] = list(piece)
    pending = piece.pending_tick >= 0
    if pending:
        groups.append((piece.pending_tick, piece.pending_value))
    if not groups:
        return  # the task created but never observed the series
    for tick, value in groups:
        out.observe(tick, value)
    if not pending:
        # the task flushed its series (end-of-run finalisation); a
        # shared serial series would have been flushed at that point.
        out.flush()


def _merge_ring_series(out: RingSeries, piece: RingSeries) -> None:
    # ring capacity is an integral buffer size, not a link rate
    if piece.capacity != out.capacity:  # flocheck: disable=FLC003 -- ring capacity is an integral buffer size, not a link rate; exact mismatch is the error being raised
        raise ConfigError(
            f"cannot merge ring series of capacity {piece.capacity} "
            f"into capacity {out.capacity}"
        )
    for tick, value in piece.points():
        out.sample(tick, value)


def _merge_histogram(out: Histogram, piece: Histogram) -> None:
    if list(out.bounds) != list(piece.bounds):
        raise ConfigError("cannot merge histograms with different bounds")
    out.counts += piece.counts
    out.total += piece.total
    out.sum += piece.sum


def _merge_metric(out: Metric, piece: Metric) -> None:
    if isinstance(piece, Counter) and isinstance(out, Counter):
        out.value += piece.value
    elif isinstance(piece, Gauge) and isinstance(out, Gauge):
        out.value = piece.value
    elif isinstance(piece, BinnedCounter) and isinstance(out, BinnedCounter):
        for category, bins in piece.items():
            merged = out.setdefault(category, {})
            for bin_index, count in bins.items():
                merged[bin_index] = merged.get(bin_index, 0) + count
    elif isinstance(piece, LabeledGauge) and isinstance(out, LabeledGauge):
        # absolute per-label scrape: later shard's value replaces,
        # first-seen label order still matches serial insertion order
        for label, value in piece.items():
            out[label] = value
    elif isinstance(piece, LabeledCounter) and isinstance(out, LabeledCounter):
        for label, value in piece.items():
            # fluid volume counters hold floats; mirror the raw-sum
            # convention from Telemetry.record_fluid_drop_volumes.
            out[label] = out.get(label, 0) + value
    elif isinstance(piece, TickSeries) and isinstance(out, TickSeries):
        _merge_tick_series(out, piece)
    elif isinstance(piece, RingSeries) and isinstance(out, RingSeries):
        _merge_ring_series(out, piece)
    elif isinstance(piece, Histogram) and isinstance(out, Histogram):
        _merge_histogram(out, piece)
    else:
        raise ConfigError(
            f"cannot merge metric kinds {piece.kind!r} into {out.kind!r}"
        )


def _fresh_like(piece: Metric) -> Metric:
    if isinstance(piece, RingSeries):
        return RingSeries(piece.capacity)
    if isinstance(piece, Histogram):
        return Histogram([float(b) for b in piece.bounds])
    return type(piece)()


def merge_registries(
    out: MetricsRegistry, pieces: Sequence[MetricsRegistry]
) -> MetricsRegistry:
    """Fold ``pieces`` (canonical task order) into ``out``."""
    for piece in pieces:
        # iterate in the piece's insertion order, not sorted order, so
        # first-seen label/metric creation order matches serial.
        for name in piece._metrics:  # noqa: SLF001 - same-package reduction
            metric = piece.get(name)
            assert metric is not None
            existing = out.get(name)
            if existing is None:
                existing = out.adopt(name, _fresh_like(metric))
            _merge_metric(existing, metric)
    return out


def _merge_traces(out: TraceLog, pieces: Sequence[Optional[TraceLog]]) -> TraceLog:
    for piece in pieces:
        if piece is None:
            continue
        for event in piece:
            out._events.append(event)  # noqa: SLF001 - deque handles maxlen
        out.emitted_total += piece.emitted_total
        for kind, count in piece.counts_by_kind.items():
            out.counts_by_kind[kind] = out.counts_by_kind.get(kind, 0) + count
    return out


def merge_telemetry(pieces: Sequence[NullTelemetry]) -> NullTelemetry:
    """Reduce per-task telemetry objects (canonical order) into one.

    All enabled pieces must share a mode; the merged telemetry has that
    mode (``NULL_TELEMETRY``-style disabled output when no piece was
    enabled) and a registry/trace equal to what a single telemetry
    threaded serially through the same tasks would hold.
    """
    enabled = [p for p in pieces if p.enabled]
    if not enabled:
        return NullTelemetry()
    modes = {p.mode for p in enabled}
    if len(modes) > 1:
        raise ConfigError(f"cannot merge telemetry across modes {sorted(modes)}")
    first = enabled[0]
    max_events = max(
        (p.trace.max_events for p in enabled if p.trace is not None),
        default=100_000,
    )
    merged = Telemetry(
        mode=first.mode,
        profile=any(p.profile_enabled for p in enabled),
        max_events=max_events,
        sample_interval_ticks=first.sample_interval_ticks,
    )
    merge_registries(merged.registry, [p.registry for p in enabled])
    if merged.trace is not None:
        _merge_traces(merged.trace, [p.trace for p in enabled])
    return merged
