"""The spawn-side of the fabric: one worker process, one task at a time.

Protocol (all messages are picklable tuples):

* supervisor -> worker, per-worker task queue:
  ``("task", seq, task, parent_span)`` or ``("stop",)`` —
  ``parent_span`` is the supervisor-side task span id (or ``None``), so
  the worker's spans join the cross-process trace DAG under it;
* worker -> supervisor, shared result queue:
  ``("done", worker_id, seq, name, result, telemetry, resumed)`` or
  ``("fail", worker_id, seq, name, error, retryable)``.

Crash-safety ordering: before reporting ``done`` the worker persists the
task's telemetry piece and then its result into the shared
:class:`~repro.runner.checkpoint.CheckpointStore` (telemetry first, so a
stored result implies a stored telemetry piece).  A worker SIGKILLed in
the send window therefore loses nothing — the supervisor salvages the
completed task straight from the store.  A worker killed mid-task left a
``state`` snapshot behind (tick-level checkpointing inside the task), so
the replacement worker resumes instead of restarting.

Each task runs under a **fresh** telemetry of the configured mode; the
piece ships back with the result and the supervisor folds the pieces in
canonical task order (:mod:`repro.fleet.merge`), which is what makes
``--workers N`` telemetry equal to serial regardless of scheduling.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Any, Optional

from ..runner.checkpoint import CheckpointStore
from ..runner.supervisor import NON_RETRYABLE, UnitContext
from ..telemetry import NullTelemetry, Telemetry, use
from ..trace import (
    NULL_TRACER,
    SpanHandle,
    TraceContext,
    Tracer,
    current_tracer,
    phase_delta,
    use_tracer,
)
from .faults import FaultInjector, ProcessFaultPlan
from .heartbeat import Heartbeat

__all__ = ["WorkerConfig", "worker_main", "telemetry_key"]


def telemetry_key(name: str) -> str:
    """Store key for one task's telemetry piece."""
    return f"task-{name}"


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs, shipped once at spawn."""

    fleet_dir: str
    store_root: str
    telemetry_mode: str = "off"  # "off" | "metrics" | "trace"
    sanitize: Optional[str] = None
    checkpoint_interval: int = 200
    heartbeat_interval_seconds: float = 0.1
    fault_plan: Optional[ProcessFaultPlan] = None
    #: run tracing context (trace id, span dir, epoch); None = no tracing
    trace: Optional[TraceContext] = None


class HeartbeatPulse:
    """Duck-typed stand-in for the cooperative ``Watchdog``.

    Installed as ``UnitContext.watchdog`` so resumable tick loops beat
    the heartbeat at every segment boundary — turning tick progress into
    liveness evidence.  Never raises: deadlines are the supervisor's
    job in the fleet.
    """

    def __init__(self, heartbeat: Heartbeat, job: str) -> None:
        self._heartbeat = heartbeat
        self._job = job

    def check(self) -> None:
        self._heartbeat.beat("run", job=self._job)


def _fresh_telemetry(mode: str, profile: bool = False) -> NullTelemetry:
    """One task's telemetry recorder.

    When tracing is on (``profile=True``) the recorder always carries a
    profiler so the tracer can synthesize per-tick phase spans; for
    ``mode == "off"`` that means a *shadow* telemetry the caller must
    discard after the profiler is read — it exists only to feed the
    trace, never the store or the supervisor's merge.
    """
    if mode == "off":
        return (
            Telemetry(mode="metrics", profile=True)
            if profile
            else NullTelemetry()
        )
    return Telemetry(mode=mode, profile=profile)


def _run_task(
    task: Any,
    store: CheckpointStore,
    config: WorkerConfig,
    heartbeat: Heartbeat,
    task_span: SpanHandle,
) -> tuple:
    """Execute (or salvage) one task; returns (result, telemetry, resumed)."""
    name = task.name
    store.refresh()
    if store.has("unit", name):
        # completed by a worker that died before reporting, or by an
        # earlier (serial or fleet) run sharing this store
        task_span.event("task.salvaged")
        result = store.load("unit", name)
        telemetry = (
            store.load("telemetry", telemetry_key(name))
            if store.has("telemetry", telemetry_key(name))
            else NullTelemetry()
        )
        return result, telemetry, True
    tracer = current_tracer()
    telemetry = _fresh_telemetry(config.telemetry_mode, profile=tracer.enabled)
    shadow = config.telemetry_mode == "off" and telemetry.enabled
    ctx = UnitContext(
        name=name,
        store=store,
        shutdown=None,
        watchdog=HeartbeatPulse(heartbeat, name),  # type: ignore[arg-type]
        sanitize=config.sanitize,
        checkpoint_interval=config.checkpoint_interval,
        trace_parent=task_span.span_id,
    )
    profile_before = (
        dict(telemetry.profiler.totals_seconds)
        if telemetry.profiler is not None
        else {}
    )
    with use(telemetry):
        result = task.run(ctx)
    if telemetry.profiler is not None:
        tracer.emit_phases(
            task_span,
            phase_delta(
                profile_before, dict(telemetry.profiler.totals_seconds)
            ),
        )
    if shadow:
        # the shadow recorder existed only for the profiler above; the
        # supervisor asked for telemetry off, so ship (and store) none
        telemetry = NullTelemetry()
    if telemetry.enabled:
        store.save("telemetry", telemetry_key(name), telemetry)
    store.save("unit", name, result)
    return result, telemetry, False


def worker_main(
    worker_id: int,
    config: WorkerConfig,
    task_queue: Any,
    result_queue: Any,
) -> None:
    """Worker process body: drain tasks until ``("stop",)``."""
    # Ctrl-C lands on the whole process group; the supervisor owns
    # worker lifecycle, so workers must not die to a stray SIGINT.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    heartbeat = Heartbeat(
        os.path.join(config.fleet_dir, "hb"),
        worker_id,
        interval_seconds=config.heartbeat_interval_seconds,
    )
    heartbeat.start()
    injector = FaultInjector(
        config.fault_plan, os.path.join(config.fleet_dir, "faults")
    )
    store = CheckpointStore(config.store_root)
    tracer = (
        Tracer.from_context(config.trace, proc=f"w{worker_id}")
        if config.trace is not None
        else NULL_TRACER
    )
    with use_tracer(tracer):
        while True:
            message = task_queue.get()
            if message[0] == "stop":
                break
            _, seq, task, parent_span = message
            name = task.name
            heartbeat.beat("run", job=name)
            injector.apply(name, heartbeat)
            with tracer.span(
                f"task:{name}", cat="task",
                parent=parent_span, worker=worker_id,
            ) as span:
                try:
                    result, telemetry, resumed = _run_task(
                        task, store, config, heartbeat, span
                    )
                except Exception as exc:  # noqa: BLE001 - reported to supervisor
                    retryable = not isinstance(exc, NON_RETRYABLE)
                    span.end(status="fail", error=type(exc).__name__)
                    result_queue.put(
                        (
                            "fail",
                            worker_id,
                            seq,
                            name,
                            f"{type(exc).__name__}: {exc}",
                            retryable,
                        )
                    )
                else:
                    span.end(status="resumed" if resumed else "done")
                    result_queue.put(
                        (
                            "done",
                            worker_id, seq, name, result, telemetry, resumed,
                        )
                    )
            heartbeat.beat("idle")
    tracer.close()
    heartbeat.beat("stopped")
    heartbeat.stop()
