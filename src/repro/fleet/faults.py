"""Process-level chaos faults: kill or stall a worker mid-campaign.

The chaos engine's existing fault space perturbs the *simulated*
network; these faults perturb the *fabric itself*, so every chaos sweep
with ``--process-faults N`` doubles as an integration test of worker
supervision:

* ``kill_worker`` — a timer thread SIGKILLs the worker's own process
  partway through the victim task.  The supervisor must notice the
  death, respawn, and salvage the task from its last checkpoint.
* ``stall_worker`` — the worker suppresses its heartbeat and blocks
  instead of running the victim task, simulating a hang the cooperative
  watchdog can never see.  The supervisor's liveness monitor must
  convict and SIGKILL it.

Faults are sampled deterministically from the sweep seed via
:func:`repro.chaos.spec.chaos_rng` and fire **once** per plan: the
worker claims an ``O_EXCL`` marker file in the shared fleet directory
before applying a fault, so the task's retry on the replacement worker
runs clean.  Because recovery is checkpoint-resume (or a from-scratch
rerun of a pure unit), a faulted sweep's digests and results stay
byte-identical to an unfaulted one — which is precisely the property
the CI lane asserts.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..chaos.spec import chaos_rng
from ..errors import ConfigError

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "ProcessFault",
    "ProcessFaultPlan",
    "sample_process_faults",
]

FAULT_KINDS: Tuple[str, ...] = ("kill_worker", "stall_worker")


@dataclass(frozen=True)
class ProcessFault:
    """One planned fault against whichever worker draws ``task``."""

    task: str
    kind: str
    delay_seconds: float

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.delay_seconds < 0:
            raise ConfigError(
                f"fault delay must be >= 0, got {self.delay_seconds}"
            )


@dataclass(frozen=True)
class ProcessFaultPlan:
    """A picklable set of planned faults, keyed by task name."""

    faults: Tuple[ProcessFault, ...] = ()

    def get(self, task: str) -> Optional[ProcessFault]:
        for fault in self.faults:
            if fault.task == task:
                return fault
        return None


def sample_process_faults(
    seed: int,
    task_names: Sequence[str],
    count: int,
    prefer: Optional[str] = None,
) -> ProcessFaultPlan:
    """Deterministically plan ``count`` faults over ``task_names``.

    With ``prefer``, names containing that substring are sampled first
    (falling back to the rest once exhausted) — sharded runs pass
    ``prefer="#s"`` so faults land on shard workers, exercising the
    barrier-salvage path rather than a plain unit rerun.
    """
    if count < 0:
        raise ConfigError(f"fault count must be >= 0, got {count}")
    names = sorted(set(task_names))
    count = min(count, len(names))
    if count == 0:
        return ProcessFaultPlan()
    rng = chaos_rng(seed, "process-faults")
    if prefer is not None:
        preferred = [name for name in names if prefer in name]
        rest = [name for name in names if prefer not in name]
        victims = rng.sample(preferred, min(count, len(preferred)))
        if len(victims) < count:
            victims.extend(rng.sample(rest, count - len(victims)))
        victims = sorted(victims)
    else:
        victims = sorted(rng.sample(names, count))
    faults: List[ProcessFault] = []
    for victim in victims:
        kind = FAULT_KINDS[rng.randrange(len(FAULT_KINDS))]
        delay = round(0.05 + 0.45 * rng.random(), 3)
        faults.append(ProcessFault(task=victim, kind=kind, delay_seconds=delay))
    return ProcessFaultPlan(faults=tuple(faults))


class FaultInjector:
    """Worker-side fault application with shared fire-once markers."""

    def __init__(
        self,
        plan: Optional[ProcessFaultPlan],
        marker_dir: str,
    ) -> None:
        self.plan = plan
        self.marker_dir = marker_dir
        if plan is not None and plan.faults:
            os.makedirs(marker_dir, exist_ok=True)

    def _claim(self, task: str) -> bool:
        """Atomically claim the one firing of ``task``'s fault."""
        path = os.path.join(self.marker_dir, f"fired-{task}.marker")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(str(os.getpid()))
        return True

    def apply(self, task: str, heartbeat: "object") -> None:
        """Apply the planned fault for ``task``, if any and unfired.

        Called by the worker immediately before running the task.
        ``kill_worker`` arms a SIGKILL timer and returns (the task runs
        and dies mid-flight); ``stall_worker`` suppresses the heartbeat
        and blocks here forever — only the supervisor's SIGKILL ends it.
        """
        if self.plan is None:
            return
        fault = self.plan.get(task)
        if fault is None or not self._claim(task):
            return
        if fault.kind == "kill_worker":
            timer = threading.Timer(
                fault.delay_seconds,
                os.kill,
                args=(os.getpid(), signal.SIGKILL),
            )
            timer.daemon = True
            timer.start()
        else:  # stall_worker
            time.sleep(fault.delay_seconds)
            setattr(heartbeat, "suppressed", True)
            while True:  # simulated hang; ends only via supervisor SIGKILL
                time.sleep(3600.0)
