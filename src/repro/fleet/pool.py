"""The fleet supervisor: spawn pool, liveness watchdog, salvage, merge.

The pool owns a set of spawn-started workers, each with a private task
queue, all reporting into one result queue.  The supervision loop:

1. drain worker reports (``done``/``fail``);
2. convict dead or hung workers — a worker is *dead* when its process
   has an exit code, *hung* when its heartbeat file has not changed for
   ``heartbeat_timeout_seconds`` or its task has overrun
   ``task_timeout_seconds`` (hung workers are SIGKILLed, which turns
   them into dead ones);
3. for each dead worker: salvage its task (if the shared store already
   holds the completed unit, the worker died in the report window — the
   result is loaded, nothing re-runs), otherwise count the death
   against the task and either re-enqueue it (a replacement worker
   resumes from the last tick-level checkpoint) or quarantine it once
   it has killed ``max_worker_deaths`` distinct workers;
4. replace dead workers with fresh processes (worker ids are never
   reused, so "distinct workers killed" is well-defined);
5. assign ready tasks — including ``RetryPolicy``-delayed retries of
   transient failures — to idle workers.  Tasks exposing a non-``None``
   ``gang`` attribute (e.g. shard tasks of one simulation unit) launch
   atomically: every unfinished member must be ready and seated at once,
   because gang members advance lock-step through a barrier exchange and
   a partial launch would deadlock.  After the initial launch, members
   re-enter the queue individually (a salvaged member rejoins its
   still-running peers), and the telemetry fold keeps one piece per gang
   — members record identical global telemetry by construction.

Determinism: results are keyed by task name and every task is a pure
function of its recipe, so scheduling cannot change them; telemetry
pieces are folded in canonical task order by :mod:`repro.fleet.merge`.
A ``FleetReport`` therefore matches its serial counterpart byte for
byte, whatever the worker count, scheduling interleaving, or mid-run
worker deaths.
"""

from __future__ import annotations

import heapq
import json
import os
import tempfile
import time
from queue import Empty
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigError
from ..runner.checkpoint import CheckpointStore
from ..runner.supervisor import GracefulShutdown, RetryPolicy, Watchdog
from ..telemetry import NullTelemetry
from ..trace import SpanHandle, current_tracer
from .faults import ProcessFaultPlan
from .heartbeat import HeartbeatMonitor
from .merge import merge_telemetry
from .worker import WorkerConfig, telemetry_key, worker_main

__all__ = [
    "FLEET_STATUSES",
    "FleetOptions",
    "FleetReport",
    "TaskOutcome",
    "run_fleet",
]

#: Fleet statuses from best to worst; extends the runner's job statuses
#: with ``quarantined`` (a poison job was isolated).
FLEET_STATUSES = (
    "ok", "partial", "failed", "quarantined", "deadline", "interrupted",
)


def _slug(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_" else "_" for c in name)


def _null_log(message: str) -> None:
    """Default no-op log sink (module-level for picklability parity)."""


@dataclass
class FleetOptions:
    """Supervision knobs for one fleet run."""

    workers: int = 2
    telemetry_mode: str = "off"
    sanitize: Optional[str] = None
    checkpoint_interval: int = 200
    retry: Optional[RetryPolicy] = None
    deadline_seconds: Optional[float] = None
    heartbeat_interval_seconds: float = 0.1
    heartbeat_timeout_seconds: float = 30.0
    task_timeout_seconds: Optional[float] = None
    max_worker_deaths: int = 2
    poll_interval_seconds: float = 0.05
    fault_plan: Optional[ProcessFaultPlan] = None

    def validate(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_worker_deaths < 1:
            raise ConfigError(
                f"max_worker_deaths must be >= 1, got {self.max_worker_deaths}"
            )
        if self.heartbeat_timeout_seconds <= self.heartbeat_interval_seconds:
            raise ConfigError(
                "heartbeat_timeout_seconds must exceed the beat interval"
            )


@dataclass
class TaskOutcome:
    """What happened to one task, fleet-wide."""

    name: str
    status: str  # "done" | "resumed" | "failed" | "quarantined"
    attempts: int = 0
    error: Optional[str] = None
    seconds: float = 0.0
    worker_deaths: int = 0


@dataclass
class FleetReport:
    """Outcome of one fleet run; shaped like a ``JobReport`` plus
    supervision facts."""

    status: str
    outcomes: List[TaskOutcome] = field(default_factory=list)
    results: Dict[str, Any] = field(default_factory=dict)
    telemetry: NullTelemetry = field(default_factory=NullTelemetry)
    quarantined: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers_spawned: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def completed(self) -> List[str]:
        return [o.name for o in self.outcomes if o.status in ("done", "resumed")]

    def failed(self) -> List[str]:
        return [
            o.name for o in self.outcomes
            if o.status in ("failed", "quarantined")
        ]

    def summary_rows(self) -> List[Tuple[str, str, int, str]]:
        return [
            (o.name, o.status, o.attempts, o.error or "")
            for o in self.outcomes
        ]


class _Worker:
    """Supervisor-side handle for one worker process."""

    def __init__(self, worker_id: int, process: Any, queue: Any) -> None:
        self.id = worker_id
        self.process = process
        self.queue = queue
        self.assigned: Optional[Tuple[int, Any, int, float]] = None
        # (seq, task, attempt, assigned_at)

    @property
    def idle(self) -> bool:
        return self.assigned is None


class _FleetRun:
    """One run's mutable supervision state (no module globals: spawn
    workers share nothing, and FLC007 enforces that stays true)."""

    def __init__(
        self,
        tasks: Sequence[Any],
        store: CheckpointStore,
        options: FleetOptions,
        log: Callable[[str], None],
    ) -> None:
        options.validate()
        self.tasks = list(tasks)
        self.order = {task.name: i for i, task in enumerate(self.tasks)}
        if len(self.order) != len(self.tasks):
            raise ConfigError("fleet task names must be unique")
        self.store = store
        self.options = options
        self.log = log
        self.retry = options.retry if options.retry is not None else RetryPolicy()
        self.fleet_dir = os.path.join(store.root, "fleet")
        os.makedirs(os.path.join(self.fleet_dir, "hb"), exist_ok=True)
        self.monitor = HeartbeatMonitor(
            os.path.join(self.fleet_dir, "hb"),
            timeout_seconds=options.heartbeat_timeout_seconds,
        )
        self.ctx = get_context("spawn")
        self.result_queue = self.ctx.Queue()
        self.workers: Dict[int, _Worker] = {}
        self.next_worker_id = 0
        self.next_seq = 0
        self.inflight: Dict[int, Tuple[Any, int]] = {}  # seq -> (task, attempt)
        self.ready: List[Tuple[float, int, Any, int]] = []  # heap
        self.outcomes: Dict[str, TaskOutcome] = {}
        self.results: Dict[str, Any] = {}
        self.pieces: Dict[str, NullTelemetry] = {}
        self.deaths: Dict[str, Set[int]] = {}
        self.started: Dict[str, float] = {}
        self.workers_spawned = 0
        # supervisor-side spans: one per task, opened at first assignment
        # and closed when the task reaches an outcome; stored here (not
        # in a `with` block) because open and close live in different
        # supervision sweeps
        self.tracer = current_tracer()
        self.fleet_span: Optional[SpanHandle] = None
        self.task_spans: Dict[str, SpanHandle] = {}
        self.gang_members: Dict[str, List[str]] = {}
        for task in self.tasks:
            gang = getattr(task, "gang", None)
            if gang is not None:
                self.gang_members.setdefault(gang, []).append(task.name)
        self.gangs_launched: Set[str] = set()
        for gang, members in self.gang_members.items():
            if len(members) > options.workers:
                raise ConfigError(
                    f"gang {gang!r} needs {len(members)} workers but the "
                    f"pool has {options.workers}; gangs launch atomically, "
                    "so workers must cover the largest gang"
                )

    # -- worker lifecycle ----------------------------------------------
    def _config(self) -> WorkerConfig:
        return WorkerConfig(
            fleet_dir=self.fleet_dir,
            store_root=self.store.root,
            telemetry_mode=self.options.telemetry_mode,
            sanitize=self.options.sanitize,
            checkpoint_interval=self.options.checkpoint_interval,
            heartbeat_interval_seconds=self.options.heartbeat_interval_seconds,
            fault_plan=self.options.fault_plan,
            trace=self.tracer.context() if self.tracer.enabled else None,
        )

    def _fleet_span_id(self) -> Optional[str]:
        return self.fleet_span.span_id if self.fleet_span is not None else None

    def spawn_worker(self) -> _Worker:
        worker_id = self.next_worker_id
        self.next_worker_id += 1
        queue = self.ctx.Queue()
        process = self.ctx.Process(
            target=worker_main,
            args=(worker_id, self._config(), queue, self.result_queue),
            name=f"fleet-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        self.tracer.event(
            "spawn-worker", cat="fleet",
            parent=self._fleet_span_id(), worker=worker_id,
        )
        self.workers_spawned += 1
        worker = _Worker(worker_id, process, queue)
        self.workers[worker_id] = worker
        self.monitor.observe(worker_id)
        return worker

    def start_workers(self) -> None:
        for _ in range(min(self.options.workers, len(self.tasks)) or 1):
            self.spawn_worker()

    def stop_workers(self, force: bool = False) -> None:
        for worker in self.workers.values():
            if force:
                # mid-task workers won't drain their queue; SIGTERM them
                # (tick-level state snapshots make this resumable)
                worker.process.terminate()
            else:
                try:
                    worker.queue.put(("stop",))
                except (OSError, ValueError):
                    pass
        for worker in self.workers.values():
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
            self.monitor.forget(worker.id)

    # -- task flow ------------------------------------------------------
    def enqueue(self, task: Any, attempt: int, at: float) -> None:
        self.next_seq += 1
        heapq.heappush(self.ready, (at, self.next_seq, task, attempt))

    def _assign(self, worker: _Worker, task: Any, attempt: int) -> None:
        now = time.monotonic()
        self.next_seq += 1
        seq = self.next_seq
        worker.assigned = (seq, task, attempt, now)
        self.inflight[seq] = (task, attempt)
        self.started.setdefault(task.name, now)
        span = self.task_spans.get(task.name)
        if span is None:
            # the task span survives worker deaths and reassignments: it
            # covers first assignment to final outcome, with the worker-
            # side execution spans parented under it
            span = self.tracer.span(
                f"task:{task.name}", cat="task", parent=self._fleet_span_id()
            )
            self.task_spans[task.name] = span
        span.event("assign", worker=worker.id, attempt=attempt)
        try:
            worker.queue.put(("task", seq, task, span.span_id))
        except (OSError, ValueError):
            # queue to a dying worker; liveness sweep will reassign
            pass

    def _end_task_span(self, name: str, status: str) -> None:
        span = self.task_spans.pop(name, None)
        if span is not None:
            span.end(status=status)

    def assign_ready(self) -> None:
        now = time.monotonic()
        idle = [w for w in self.workers.values() if w.idle]
        if not idle or not self.ready or self.ready[0][0] > now:
            return
        due: List[Tuple[float, int, Any, int]] = []
        while self.ready and self.ready[0][0] <= now:
            due.append(heapq.heappop(self.ready))
        due_by_name = {entry[2].name: entry for entry in due}
        taken: Set[str] = set()
        for entry in due:
            task, attempt = entry[2], entry[3]
            if task.name in taken:
                continue
            if not idle:
                break
            gang = getattr(task, "gang", None)
            if gang is None or gang in self.gangs_launched:
                # non-gang tasks, and gang members requeued after a
                # worker death, assign individually: the surviving
                # members are still parked in the barrier exchange
                self._assign(idle.pop(), task, attempt)
                taken.add(task.name)
                continue
            # initial gang launch is all-or-nothing: every member not
            # already finished must be due *and* seatable right now,
            # else a partial gang deadlocks at the first barrier
            pending = [
                member for member in self.gang_members[gang]
                if member not in self.outcomes
            ]
            if any(member not in due_by_name for member in pending):
                continue
            if len(pending) > len(idle):
                continue
            for member in pending:
                m_entry = due_by_name[member]
                self._assign(idle.pop(), m_entry[2], m_entry[3])
                taken.add(member)
            self.gangs_launched.add(gang)
        for entry in due:
            if entry[2].name not in taken:
                # push back under the original (at, seq) key so relative
                # order is stable across supervision sweeps
                heapq.heappush(self.ready, entry)

    def _finish(self, outcome: TaskOutcome) -> None:
        outcome.worker_deaths = len(self.deaths.get(outcome.name, ()))
        started = self.started.get(outcome.name)
        if started is not None and outcome.seconds <= 0.0:
            outcome.seconds = time.monotonic() - started
        self.outcomes[outcome.name] = outcome

    def record_done(
        self, name: str, result: Any, telemetry: NullTelemetry,
        resumed: bool, attempts: int,
    ) -> None:
        if name in self.outcomes:
            return  # duplicate report (salvaged before the message landed)
        self.results[name] = result
        self.pieces[name] = telemetry
        self._finish(
            TaskOutcome(
                name=name,
                status="resumed" if resumed else "done",
                attempts=attempts,
            )
        )
        self._end_task_span(name, "resumed" if resumed else "done")
        self.log(f"{name}: {'resumed' if resumed else 'done'}")

    def record_failed(self, name: str, attempts: int, error: str) -> None:
        if name in self.outcomes:
            return
        self._finish(
            TaskOutcome(
                name=name, status="failed", attempts=attempts, error=error
            )
        )
        self._end_task_span(name, "failed")
        self.log(f"{name}: failed after {attempts} attempt(s): {error}")

    def quarantine(self, task: Any, attempts: int) -> None:
        name = task.name
        if name in self.outcomes:
            return
        directory = os.path.join(self.fleet_dir, "quarantine")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"quarantine-{_slug(name)}.json")
        payload: Dict[str, Any] = {
            "task": name,
            "type": type(task).__name__,
            "attempts": attempts,
            "worker_deaths": sorted(self.deaths.get(name, ())),
            "recipe": _recipe_of(task),
        }
        # reproducers are read by humans and re-run tooling while the
        # supervisor may still be crashing; never expose a torn file
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        os.replace(tmp, path)
        self._finish(
            TaskOutcome(
                name=name,
                status="quarantined",
                attempts=attempts,
                error=(
                    f"poison job: killed {len(self.deaths.get(name, ()))} "
                    f"workers; reproducer at {path}"
                ),
            )
        )
        self._end_task_span(name, "quarantined")
        self.log(f"{name}: quarantined (reproducer: {path})")

    def salvage_or_requeue(self, worker: _Worker) -> None:
        """A worker died holding a task: salvage, requeue, or quarantine."""
        assert worker.assigned is not None
        seq, task, attempt, _ = worker.assigned
        self.inflight.pop(seq, None)
        name = task.name
        self.store.refresh()
        if self.store.has("unit", name):
            # died after persisting the result but before reporting it
            telemetry: NullTelemetry = NullTelemetry()
            if self.store.has("telemetry", telemetry_key(name)):
                telemetry = self.store.load("telemetry", telemetry_key(name))
            self.record_done(
                name, self.store.load("unit", name), telemetry,
                resumed=False, attempts=attempt,
            )
            return
        dead = self.deaths.setdefault(name, set())
        dead.add(worker.id)
        span = self.task_spans.get(name)
        if span is not None:
            span.event("worker-died", worker=worker.id, deaths=len(dead))
        if len(dead) >= self.options.max_worker_deaths:
            self.quarantine(task, attempts=attempt)
            return
        self.log(
            f"{name}: worker {worker.id} died mid-task; requeueing "
            f"(death {len(dead)}/{self.options.max_worker_deaths})"
        )
        self.enqueue(task, attempt, at=time.monotonic())

    # -- supervision sweeps --------------------------------------------
    def drain_results(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    message = self.result_queue.get(timeout=remaining)
                else:
                    message = self.result_queue.get_nowait()
            except (Empty, OSError, ValueError):
                return
            kind = message[0]
            if kind == "done":
                _, worker_id, seq, name, result, telemetry, resumed = message
                self._release(worker_id, seq)
                task_attempt = self.inflight.pop(seq, None)
                attempts = task_attempt[1] if task_attempt else 1
                self.record_done(name, result, telemetry, resumed, attempts)
            elif kind == "fail":
                _, worker_id, seq, name, error, retryable = message
                self._release(worker_id, seq)
                task_attempt = self.inflight.pop(seq, None)
                if task_attempt is None:
                    continue
                task, attempt = task_attempt
                if retryable and attempt <= self.retry.max_retries:
                    delay = self.retry.backoff(name, attempt)
                    self.log(
                        f"{name}: attempt {attempt} failed ({error}); "
                        f"retrying in {delay:.2f}s"
                    )
                    self.enqueue(task, attempt + 1, time.monotonic() + delay)
                else:
                    self.record_failed(name, attempt, error)
            if remaining <= 0:
                return

    def _release(self, worker_id: int, seq: int) -> None:
        worker = self.workers.get(worker_id)
        if worker is not None and worker.assigned is not None:
            if worker.assigned[0] == seq:
                worker.assigned = None

    def sweep_liveness(self) -> None:
        now = time.monotonic()
        for worker in list(self.workers.values()):
            hung = False
            if worker.process.exitcode is None:
                stale = self.monitor.stale(worker.id)
                overrun = (
                    self.options.task_timeout_seconds is not None
                    and worker.assigned is not None
                    and now - worker.assigned[3]
                    > self.options.task_timeout_seconds
                )
                if not stale and not overrun:
                    continue
                hung = True
                why = "heartbeat stale" if stale else "task timeout"
                self.log(
                    f"worker {worker.id}: {why}; sending SIGKILL"
                )
                worker.process.kill()
                worker.process.join(timeout=5.0)
            # dead (either found dead, or just killed for hanging)
            exitcode = worker.process.exitcode
            self.log(
                f"worker {worker.id}: dead (exitcode {exitcode}"
                + (", hung" if hung else "")
                + ")"
            )
            if worker.assigned is not None:
                self.salvage_or_requeue(worker)
            del self.workers[worker.id]
            self.monitor.forget(worker.id)
            if self.unfinished():
                self.spawn_worker()

    def unfinished(self) -> bool:
        return len(self.outcomes) < len(self.tasks)

    # -- final assembly -------------------------------------------------
    def report(self, status_override: Optional[str], wall: float) -> FleetReport:
        ordered = [
            self.outcomes[task.name]
            for task in self.tasks
            if task.name in self.outcomes
        ]
        quarantined = [o.name for o in ordered if o.status == "quarantined"]
        if status_override is not None:
            status = status_override
        elif quarantined:
            status = "quarantined"
        else:
            done = [o for o in ordered if o.status in ("done", "resumed")]
            bad = [o for o in ordered if o.status == "failed"]
            if not bad:
                status = "ok"
            elif done:
                status = "partial"
            else:
                status = "failed"
        # tasks the run abandoned (deadline/interrupt) still hold open
        # supervisor-side spans; close them so the merged timeline is
        # truncation-free even on unclean exits
        for name in sorted(self.task_spans):
            self._end_task_span(name, status_override or "abandoned")
        # one telemetry piece per gang: every member of a gang records
        # the same global stream (shard sims replicate global reductions),
        # so folding all of them would multiply every counter by the
        # gang size; the first present member in task order contributes
        fold: List[NullTelemetry] = []
        seen_gangs: Set[str] = set()
        for task in self.tasks:
            if task.name not in self.pieces:
                continue
            gang = getattr(task, "gang", None)
            if gang is not None:
                if gang in seen_gangs:
                    continue
                seen_gangs.add(gang)
            fold.append(self.pieces[task.name])
        with self.tracer.span(
            "merge.telemetry", cat="run", parent=self._fleet_span_id(),
            pieces=len(fold),
        ):
            telemetry = merge_telemetry(fold)
        if self.fleet_span is not None:
            self.fleet_span.end(status=status, workers=self.workers_spawned)
        return FleetReport(
            status=status,
            outcomes=ordered,
            results=dict(self.results),
            telemetry=telemetry,
            quarantined=quarantined,
            wall_seconds=wall,
            workers_spawned=self.workers_spawned,
        )


def _recipe_of(task: Any) -> Dict[str, Any]:
    import dataclasses

    if dataclasses.is_dataclass(task):
        return dataclasses.asdict(task)
    return {"repr": repr(task)}


def run_fleet(
    tasks: Sequence[Any],
    store: CheckpointStore,
    options: Optional[FleetOptions] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FleetReport:
    """Run ``tasks`` on a supervised spawn pool; returns a
    :class:`FleetReport` equal to the serial run's, whatever happens to
    the workers along the way."""
    options = options if options is not None else FleetOptions()
    run = _FleetRun(tasks, store, options, log if log is not None else _null_log)
    run.fleet_span = run.tracer.span(
        "fleet", cat="job", workers=options.workers, tasks=len(run.tasks)
    )
    watchdog = (
        Watchdog(options.deadline_seconds)
        if options.deadline_seconds is not None
        else None
    )
    started = time.monotonic()
    status_override: Optional[str] = None
    try:
        # pre-salvage: anything this store already completed never hits a
        # queue
        run.store.refresh()
        for task in run.tasks:
            if run.store.has("unit", task.name):
                telemetry: NullTelemetry = NullTelemetry()
                if run.store.has("telemetry", telemetry_key(task.name)):
                    telemetry = run.store.load(
                        "telemetry", telemetry_key(task.name)
                    )
                run.record_done(
                    task.name, run.store.load("unit", task.name), telemetry,
                    resumed=True, attempts=0,
                )
            else:
                run.enqueue(task, attempt=1, at=started)
        with GracefulShutdown() as shutdown:
            force = False
            try:
                if run.unfinished():
                    run.start_workers()
                while run.unfinished():
                    if shutdown.requested:
                        status_override = "interrupted"
                        run.log("shutdown requested; stopping fleet")
                        break
                    if watchdog is not None and watchdog.expired:
                        status_override = "deadline"
                        run.log("fleet deadline exceeded; stopping")
                        break
                    run.assign_ready()
                    run.drain_results(options.poll_interval_seconds)
                    run.sweep_liveness()
                if status_override is not None:
                    force = True
            finally:
                run.stop_workers(force=force)
        return run.report(status_override, time.monotonic() - started)
    finally:
        run.fleet_span.end()
