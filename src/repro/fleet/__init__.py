"""Crash-isolated multiprocess execution fabric.

``repro.fleet`` runs the repo's two unit-job families — figure sweep
cells (:mod:`repro.runner.figures`) and chaos campaigns
(:mod:`repro.chaos.engine`) — on a spawn-based worker pool with real
fault tolerance:

* hung workers are convicted by a heartbeat liveness watchdog and
  SIGKILLed (:mod:`repro.fleet.heartbeat`);
* dead workers are replaced and their tasks salvaged from the shared
  :class:`~repro.runner.checkpoint.CheckpointStore` — finished results
  load instead of re-running, interrupted simulations resume tick-level
  on another worker (:mod:`repro.fleet.pool`);
* tasks that keep killing workers are quarantined with a reproducer
  artifact instead of retried forever;
* per-task telemetry merges deterministically in canonical task order
  (:mod:`repro.fleet.merge`), so ``--workers N`` output is byte-
  identical to serial for every N;
* the chaos fault space extends to the fabric itself — planned
  worker kills and stalls (:mod:`repro.fleet.faults`) make every
  ``repro chaos --process-faults`` sweep a supervision integration
  test.
"""

from .faults import (
    FAULT_KINDS,
    ProcessFault,
    ProcessFaultPlan,
    sample_process_faults,
)
from .heartbeat import Heartbeat, HeartbeatMonitor
from .jobs import (
    ChaosCampaignTask,
    FigureUnitTask,
    ShardUnitTask,
    chaos_tasks,
    figure_tasks,
    shard_figure_tasks,
)
from .merge import merge_registries, merge_telemetry
from .pool import (
    FLEET_STATUSES,
    FleetOptions,
    FleetReport,
    TaskOutcome,
    run_fleet,
)
from .worker import WorkerConfig, worker_main

__all__ = [
    "FAULT_KINDS",
    "FLEET_STATUSES",
    "ChaosCampaignTask",
    "FigureUnitTask",
    "FleetOptions",
    "FleetReport",
    "Heartbeat",
    "HeartbeatMonitor",
    "ProcessFault",
    "ProcessFaultPlan",
    "ShardUnitTask",
    "TaskOutcome",
    "WorkerConfig",
    "chaos_tasks",
    "figure_tasks",
    "shard_figure_tasks",
    "merge_registries",
    "merge_telemetry",
    "run_fleet",
    "sample_process_faults",
    "worker_main",
]
