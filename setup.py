"""Setup shim: enables legacy editable installs where the environment has
no `wheel` package (offline); configuration lives in pyproject.toml."""
from setuptools import setup

setup()
