#!/usr/bin/env python
"""flocheck demo: catch an unseeded-RNG bug in a toy drop policy.

A reproduction lives and dies by determinism: the same seed must produce
the same figure.  The toy `JitterDropPolicy` below sneaks two classic
determinism bugs into an otherwise plausible link policy:

  * it jitters its drop decisions with the process-global `random.random()`
    (unseeded, shared across the whole interpreter), and
  * it timestamps admissions with `time.time()` (wall clock), so two runs
    of the same scenario can never be bit-identical.

The demo materialises the buggy module as if it lived under `repro.net`,
runs the flocheck engine over it, and prints the diagnostics -- the same
output `python -m repro check` would give, including the fix hints.

Run:  python examples/check_demo.py
"""

import tempfile
import textwrap
from pathlib import Path

from repro.check import Baseline, Checker

BUGGY_POLICY = textwrap.dedent('''\
    """A toy link policy with determinism bugs flocheck should catch."""

    import random
    import time


    class JitterDropPolicy:
        """Drops a fraction of arrivals, jittered to avoid phase effects."""

        def __init__(self, drop_fraction=0.1):
            self.drop_fraction = drop_fraction
            self.admitted_at = []

        def admit(self, packet):
            # BUG: process-global RNG -- unseeded, shared, irreproducible.
            if random.random() < self.drop_fraction:
                return False
            # BUG: wall-clock read inside the simulation.
            self.admitted_at.append(time.time())
            return True
''')


def main():
    with tempfile.TemporaryDirectory() as tmp:
        # Lay the buggy module out as repro/net/jitter_policy.py so the
        # determinism rule (scoped to the simulation layers) applies.
        root = Path(tmp) / "repro"
        (root / "net").mkdir(parents=True)
        (root / "__init__.py").write_text("")
        (root / "net" / "__init__.py").write_text("")
        (root / "net" / "jitter_policy.py").write_text(BUGGY_POLICY)

        report = Checker(root, baseline=Baseline()).run()

        print(f"modules checked: {report.modules_checked}")
        print(f"findings: {len(report.new_findings)}\n")
        for diag in report.new_findings:
            print(diag.format())
            print()

        if report.ok:
            print("clean tree -- the demo should have found bugs!")
        else:
            print("flocheck caught the determinism bugs; seed an explicit")
            print("random.Random(seed) and read time from the engine clock.")
    return 0 if not report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
