#!/usr/bin/env python
"""Telemetry demo: metrics, decision traces, and a wall-time profile.

The telemetry layer (:mod:`repro.telemetry`) observes a run without
changing it: a metrics registry (counters, gauges, histograms, tick
series), a tick-keyed decision-trace log, and a per-subsystem wall-time
profiler.  This demo walks the whole surface by hand:

1. run the Section VI tree scenario under a CBR flood twice — once with
   telemetry off, once with full tracing — and show the monitor output
   is bit-identical (telemetry is observation-only);
2. read the registry: FLoc decision counters, the queue-depth
   histogram, and the engine's delivered-packet tick series;
3. read the drop provenance — every engine drop carries exactly one
   cause from the Section V pipeline order — and the raw trace events
   behind it;
4. print the profiler's per-subsystem wall-time breakdown;
5. export everything (metrics.json, metrics.prom, series.csv,
   events.jsonl) the way ``repro run --telemetry trace`` does, then
   render the export back with the ``repro metrics`` loader.

Run:  python examples/telemetry_demo.py
"""

import tempfile
from pathlib import Path

from repro.core.config import FLocConfig
from repro.core.router import FLocPolicy
from repro.telemetry import DROP_CAUSES, NULL_TELEMETRY, Telemetry, use
from repro.telemetry.exporters import export_all, load_metrics_json
from repro.traffic.scenarios import build_tree_scenario


def run_flood(tel):
    """One seeded CBR flood against FLoc, observed by ``tel``."""
    with use(tel):
        scenario = build_tree_scenario(
            scale_factor=0.05,
            attack_kind="cbr",
            attack_rate_mbps=2.0,
            seed=3,
            start_spread_seconds=0.5,
        )
        scenario.attach_policy(FLocPolicy(FLocConfig(s_max=25)))
        monitor = scenario.add_target_monitor(start_seconds=1.0)
        scenario.run_seconds(5.0)
    return monitor


# -- 1. observation-only: identical results with telemetry on or off ----
baseline = run_flood(NULL_TELEMETRY)
tel = Telemetry(mode="trace", profile=True)
traced = run_flood(tel)

assert traced.service_counts == baseline.service_counts
assert traced.drop_counts == baseline.drop_counts
assert list(traced.series) == list(baseline.series)
print("monitor output bit-identical with tracing on:",
      f"{traced.total_serviced} serviced / {traced.total_dropped} dropped")

# -- 2. the metrics registry --------------------------------------------
reg = tel.registry
print("\nFLoc decision counters:")
for name in ("token_grants_count", "mtd_transitions_count",
             "mtd_blocks_count", "conformance_flips_count",
             "aggregation_moves_count"):
    print(f"  {name:28s} {reg.counter(name).value}")

depth = reg.get("floc_queue_depth_packets")
print(f"queue-depth histogram: {depth.total} observations, "
      f"counts per bound {[int(c) for c in depth.counts]}")

delivered = reg.series("engine_delivered_packets").points()
print(f"delivered-packet series: {len(delivered)} points, "
      f"last = {delivered[-1]}")

# -- 3. drop provenance: one cause per drop, Section V ordering ---------
print("\ndrop provenance (cause -> packets):")
for cause in DROP_CAUSES:
    n = tel.drop_provenance().get(cause)
    if n:
        print(f"  {cause:14s} {n:g}")

first = tel.trace.events("drop")[0]
print(f"first drop event: tick={first.tick} data={first.to_dict()}")
print(f"trace totals: {tel.trace.emitted_total} events emitted, "
      f"by kind {dict(sorted(tel.trace.counts_by_kind.items()))}")

# -- 4. where the wall time went ----------------------------------------
print("\nper-subsystem wall-time fractions:")
for name, frac in sorted(tel.profiler.breakdown().items()):
    print(f"  {name:10s} {frac:6.1%}")

# -- 5. export and reload, the CLI round trip ---------------------------
with tempfile.TemporaryDirectory() as tmp:
    paths = export_all(tel, tmp)
    for kind, path in sorted(paths.items()):
        size = Path(path).stat().st_size
        print(f"exported {kind:10s} {Path(path).name} ({size} bytes)")
    payload = load_metrics_json(paths["metrics"])
    print(f"reloaded export: mode={payload['mode']}, "
          f"{len(payload['metrics'])} metrics")
